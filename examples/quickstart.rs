//! Quickstart: run a small FAIR-BFL deployment end to end and inspect the
//! results — accuracy trajectory, per-procedure delays, the ledger, and the
//! rewards the incentive mechanism paid out.
//!
//! Run with: `cargo run --release --example quickstart`

use fair_bfl::core::{BflConfig, BflSimulation, LowContributionStrategy};
use fair_bfl::data::{SynthMnist, SynthMnistConfig};
use fair_bfl::fl::config::PartitionKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate the synthetic MNIST surrogate (see DESIGN.md for why this
    //    stands in for MNIST in an offline reproduction).
    let mut rng = StdRng::seed_from_u64(2022);
    let dataset = SynthMnist::new(SynthMnistConfig {
        train_samples: 1500,
        test_samples: 300,
        ..SynthMnistConfig::default()
    });
    let (train, test) = dataset.generate(&mut rng);
    println!(
        "dataset: {} train / {} test samples, {} features",
        train.len(),
        test.len(),
        train.feature_count()
    );

    // 2. Configure FAIR-BFL: 20 clients, 2 miners, non-IID shards, the
    //    contribution-weighted (Equation 1) aggregation, and DBSCAN-based
    //    contribution identification with the keep strategy.
    let mut config = BflConfig::default();
    config.fl.clients = 20;
    config.fl.rounds = 15;
    config.fl.participation_ratio = 0.5;
    config.fl.partition = PartitionKind::ShardNonIid {
        shards_per_client: 2,
    };
    config.fl.local.epochs = 2;
    config.strategy = LowContributionStrategy::Keep;

    // 3. Run the simulation.
    let result = BflSimulation::new(config)
        .run(&train, &test)
        .expect("simulation should complete");

    // 4. Inspect what happened.
    println!("\nround  accuracy  delay(s)   T_local  T_up   T_gl   T_bl");
    for outcome in &result.outcomes {
        println!(
            "{:>5}  {:>8.3}  {:>8.2}   {:>6.2}  {:>5.2}  {:>5.2}  {:>5.2}",
            outcome.round,
            outcome.accuracy,
            outcome.breakdown.total(),
            outcome.breakdown.t_local,
            outcome.breakdown.t_up,
            outcome.breakdown.t_gl,
            outcome.breakdown.t_bl
        );
    }

    println!("\nfinal accuracy     : {:.3}", result.final_accuracy());
    println!("mean round delay   : {:.2} s", result.mean_delay());
    if let Some(round) = result.history.convergence_round() {
        println!("converged at round : {round}");
    }

    let chain = result.chain.as_ref().expect("full BFL mines a ledger");
    println!("\nledger height      : {}", chain.height());
    println!("empty blocks       : {}", chain.empty_block_count());
    println!("tip hash           : {}", chain.tip().hash_hex());

    println!("\ntop rewarded clients (milli-units of the base):");
    let mut rewards: Vec<(u64, u64)> = result.reward_totals.iter().map(|(k, v)| (*k, *v)).collect();
    rewards.sort_by_key(|(_, amount)| std::cmp::Reverse(*amount));
    for (client, amount) in rewards.iter().take(5) {
        println!("  client {client:>3}: {amount}");
    }
}
