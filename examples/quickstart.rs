//! Quickstart: compose a small FAIR-BFL scenario with the builder API,
//! stream every round through an observer while it runs, and inspect the
//! results — accuracy trajectory, per-procedure delays, the ledger, and
//! the rewards the incentive mechanism paid out.
//!
//! Run with: `cargo run --release --example quickstart`

use fair_bfl::core::{LowContributionStrategy, RoundEvent, Scenario};
use fair_bfl::data::{SynthMnist, SynthMnistConfig};
use fair_bfl::fl::config::PartitionKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Generate the synthetic MNIST surrogate (see DESIGN.md for why this
    //    stands in for MNIST in an offline reproduction).
    let mut rng = StdRng::seed_from_u64(2022);
    let dataset = SynthMnist::new(SynthMnistConfig {
        train_samples: 1500,
        test_samples: 300,
        ..SynthMnistConfig::default()
    });
    let (train, test) = dataset.generate(&mut rng);
    println!(
        "dataset: {} train / {} test samples, {} features",
        train.len(),
        test.len(),
        train.feature_count()
    );

    // 2. Compose the scenario: 20 clients, 2 miners, non-IID shards, the
    //    contribution-weighted (Equation 1) aggregation, and DBSCAN-based
    //    contribution identification with the keep strategy. `build()`
    //    validates the composition and returns a typed error instead of
    //    panicking on an inconsistent one.
    let scenario = Scenario::builder()
        .clients(20)
        .rounds(15)
        .participation_ratio(0.5)
        .partition(PartitionKind::ShardNonIid {
            shards_per_client: 2,
        })
        .local_epochs(2)
        .strategy(LowContributionStrategy::Keep)
        .build()
        .expect("scenario is consistent");

    // 3. Run it, watching every round as it completes. The observer sees
    //    the round outcome (and, in mining modes, the sealed block) the
    //    moment the round finishes — no waiting for the whole run.
    println!("\nround  accuracy  delay(s)   T_local  T_up   T_gl   T_bl   block");
    let mut watch = |event: &RoundEvent<'_>| {
        let o = event.outcome;
        println!(
            "{:>5}  {:>8.3}  {:>8.2}   {:>6.2}  {:>5.2}  {:>5.2}  {:>5.2}   {}",
            o.round,
            o.accuracy,
            o.breakdown.total(),
            o.breakdown.t_local,
            o.breakdown.t_up,
            o.breakdown.t_gl,
            o.breakdown.t_bl,
            event
                .block
                .map(|b| b.hash_hex()[..10].to_string())
                .unwrap_or_default()
        );
    };
    let result = scenario
        .run_observed(&train, &test, &mut watch)
        .expect("simulation should complete");

    // 4. Inspect what happened.
    println!(
        "\nfinal accuracy     : {:.3}",
        result.final_accuracy().unwrap_or(0.0)
    );
    println!("mean round delay   : {:.2} s", result.mean_delay());
    if let Some(round) = result.history.convergence_round() {
        println!("converged at round : {round}");
    }

    let chain = result.chain.as_ref().expect("full BFL mines a ledger");
    println!("\nledger height      : {}", chain.height());
    println!("empty blocks       : {}", chain.empty_block_count());
    println!("tip hash           : {}", chain.tip().hash_hex());

    println!("\ntop rewarded clients (milli-units of the base):");
    let mut rewards: Vec<(u64, u64)> = result.reward_totals.iter().map(|(k, v)| (*k, *v)).collect();
    rewards.sort_by_key(|(_, amount)| std::cmp::Reverse(*amount));
    for (client, amount) in rewards.iter().take(5) {
        println!("  client {client:>3}: {amount}");
    }

    // 5. The same scenario can also be driven round by round: `start()`
    //    returns a stepwise run whose `step()` yields one outcome per
    //    round — handy for early stopping or interleaved bookkeeping.
    let mut run = scenario.start(&train, &test).expect("run provisions");
    while let Some(outcome) = run.step().expect("round completes") {
        if outcome.accuracy > 0.8 {
            break; // good enough — stop paying for more rounds
        }
    }
    let early = run.into_result();
    println!(
        "\nstep-driven rerun stopped after {} rounds at accuracy {:.3}",
        early.history.len(),
        early.final_accuracy().unwrap_or(0.0)
    );
}
