//! Theorem 3.1's convergence bound next to a measured run.
//!
//! The theorem predicts E[F(w_r)] − F* ≤ O(1/r). This example runs
//! FAIR-BFL, records the training-loss trajectory, and prints it alongside
//! the theoretical bound for a set of plausible problem constants so the
//! O(1/r) decay can be compared by eye (the bound is not tight — it is an
//! upper envelope, as in the paper).
//!
//! Run with: `cargo run --release --example convergence_bound`

use fair_bfl::core::{BflConfig, BflSimulation, TheoremParams};
use fair_bfl::data::{SynthMnist, SynthMnistConfig};
use fair_bfl::fl::config::PartitionKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(17);
    let (train, test) = SynthMnist::new(SynthMnistConfig {
        train_samples: 1000,
        test_samples: 200,
        ..SynthMnistConfig::default()
    })
    .generate(&mut rng);

    let mut config = BflConfig::default();
    config.fl.clients = 10;
    config.fl.rounds = 20;
    config.fl.participation_ratio = 1.0;
    config.fl.local.epochs = 2;
    config.fl.partition = PartitionKind::Iid;

    let result = BflSimulation::new(config)
        .run(&train, &test)
        .expect("simulation should complete");

    let params = TheoremParams {
        smoothness: 1.0,
        strong_convexity: 0.05,
        variance_bound: 0.5,
        gradient_bound: 1.0,
        local_epochs: config.fl.local.epochs,
        clients_per_round: config.fl.selected_per_round(),
        initial_distance_sq: 5.0,
    };
    params.validate();
    let bound = params.bound_series(config.fl.rounds);

    println!(
        "{:<6} {:>14} {:>18} {:>10}",
        "round", "train loss", "theorem bound", "accuracy"
    );
    for (outcome, bound_value) in result.outcomes.iter().zip(bound.iter()) {
        println!(
            "{:<6} {:>14.4} {:>18.4} {:>10.3}",
            outcome.round, outcome.train_loss, bound_value, outcome.accuracy
        );
    }

    let measured_ratio = result.outcomes.last().unwrap().train_loss
        / result.outcomes.first().unwrap().train_loss.max(1e-9);
    let bound_ratio = bound.last().unwrap() / bound.first().unwrap();
    println!(
        "\nloss shrank to {:.1}% of round 1; the bound shrinks to {:.1}% — both decay with r,",
        measured_ratio * 100.0,
        bound_ratio * 100.0
    );
    println!(
        "and the measured trajectory stays below the (loose) theoretical envelope as expected."
    );
}
