//! Flexibility by design (paper Section 4.6 / Figure 3).
//!
//! The same workload is composed three times through the Scenario
//! builder: as the full FAIR-BFL system, as the degraded FL-only
//! composition (Procedures I, II, IV — no exchange, no mining), and as
//! the degraded chain-only composition (Procedures II, III, V — no
//! learning). The example prints the per-procedure delay budget of each
//! mode and what each mode produces (a model, a ledger, or both).
//!
//! Run with: `cargo run --release --example flexibility_modes`

use fair_bfl::core::{FlexibilityMode, Scenario};
use fair_bfl::data::{SynthMnist, SynthMnistConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (train, test) = SynthMnist::new(SynthMnistConfig {
        train_samples: 1000,
        test_samples: 200,
        ..SynthMnistConfig::default()
    })
    .generate(&mut rng);

    println!(
        "{:<12} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}  artifacts",
        "mode", "accuracy", "delay(s)", "T_local", "T_up", "T_ex", "T_gl", "T_bl"
    );

    for (mode, label) in [
        (FlexibilityMode::FullBfl, "FAIR-BFL"),
        (FlexibilityMode::FlOnly, "FL-only"),
        (FlexibilityMode::ChainOnly, "chain-only"),
    ] {
        // One builder chain per mode — everything else stays at the
        // paper's defaults, so the three scenarios differ only in which
        // procedures run.
        let scenario = Scenario::builder()
            .clients(20)
            .rounds(8)
            .participation_ratio(0.5)
            .local_epochs(2)
            .mode(mode)
            .build()
            .expect("scenario is consistent");

        let result = scenario
            .run(&train, &test)
            .expect("simulation should complete");

        let mean = |f: fn(&fair_bfl::core::DelayBreakdown) -> f64| -> f64 {
            result.outcomes.iter().map(|o| f(&o.breakdown)).sum::<f64>()
                / result.outcomes.len() as f64
        };
        let artifacts = match (&result.chain, result.final_params.is_empty()) {
            (Some(chain), false) => format!("model + ledger (height {})", chain.height()),
            (Some(chain), true) => format!("ledger only (height {})", chain.height()),
            (None, false) => "model only".to_string(),
            (None, true) => "nothing".to_string(),
        };
        println!(
            "{:<12} {:>9.3} {:>9.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}  {}",
            label,
            result.final_accuracy().unwrap_or(0.0),
            result.mean_delay(),
            mean(|b| b.t_local),
            mean(|b| b.t_up),
            mean(|b| b.t_ex),
            mean(|b| b.t_gl),
            mean(|b| b.t_bl),
            artifacts
        );
    }

    println!(
        "\nRemoving Procedures III+V recovers pure FL; removing I+IV recovers a pure blockchain."
    );
}
