//! The contribution-based incentive mechanism in action.
//!
//! Clients hold shards of very different sizes and quality (one client's
//! data is mostly mislabelled). The example shows how Algorithm 2's θ
//! scores translate into on-chain rewards without any client self-reporting
//! — the mislabelled client earns its share purely from how its gradients
//! relate to the global update, and the ledger records every payout.
//!
//! Run with: `cargo run --release --example incentive_rewards`

use fair_bfl::core::{BflConfig, BflSimulation};
use fair_bfl::data::{Dataset, SynthMnist, SynthMnistConfig};
use fair_bfl::fl::config::PartitionKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let (train, test) = SynthMnist::new(SynthMnistConfig {
        train_samples: 1200,
        test_samples: 200,
        ..SynthMnistConfig::default()
    })
    .generate(&mut rng);

    // Corrupt a slice of the training labels to create a low-quality data
    // region; whichever clients end up holding it will contribute noisier
    // gradients.
    let mut corrupted = train.clone();
    for label in corrupted.labels.iter_mut().take(200) {
        *label = (*label + 5) % 10;
    }
    let corrupted = Dataset::new(corrupted.features, corrupted.labels, corrupted.classes);

    let mut config = BflConfig::default();
    config.fl.clients = 12;
    config.fl.rounds = 12;
    config.fl.participation_ratio = 1.0;
    config.fl.local.epochs = 2;
    config.fl.partition = PartitionKind::Iid;
    config.reward_base = 100.0;

    let result = BflSimulation::new(config)
        .run(&corrupted, &test)
        .expect("simulation should complete");

    println!(
        "per-client cumulative rewards after {} rounds:",
        config.fl.rounds
    );
    println!("{:<8} {:>16} {:>12}", "client", "reward (milli)", "share");
    let total: u64 = result.reward_totals.values().sum();
    let mut rows: Vec<(u64, u64)> = result.reward_totals.iter().map(|(k, v)| (*k, *v)).collect();
    rows.sort_by_key(|(_, amount)| std::cmp::Reverse(*amount));
    for (client, amount) in &rows {
        println!(
            "{:<8} {:>16} {:>11.1}%",
            client,
            amount,
            100.0 * *amount as f64 / total.max(1) as f64
        );
    }

    // Cross-check against the ledger: the chain's reward bookkeeping must
    // match the simulation's.
    let chain = result.chain.as_ref().expect("FAIR-BFL mines a ledger");
    assert_eq!(chain.reward_totals(), result.reward_totals);
    println!("\nledger audit: on-chain reward totals match the simulation ✓");
    println!(
        "total paid out: {} milli-units over {} blocks",
        total,
        chain.height()
    );
    println!(
        "final accuracy: {:.3}",
        result.final_accuracy().unwrap_or(0.0)
    );
}
