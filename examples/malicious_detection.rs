//! Malicious-client detection (the Table 2 scenario).
//!
//! Ten clients, one to three of which forge their gradients each round;
//! the winning miner runs Algorithm 2 with DBSCAN and the discard strategy,
//! and we report which attackers were caught, round by round, for both the
//! non-IID and IID partitions.
//!
//! Run with: `cargo run --release --example malicious_detection`

use fair_bfl::core::{AttackConfig, BflConfig, BflSimulation, LowContributionStrategy};
use fair_bfl::data::{SynthMnist, SynthMnistConfig};
use fair_bfl::fl::config::PartitionKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(partition: PartitionKind, label: &str) {
    let mut rng = StdRng::seed_from_u64(99);
    let (train, test) = SynthMnist::new(SynthMnistConfig {
        train_samples: 1200,
        test_samples: 200,
        ..SynthMnistConfig::default()
    })
    .generate(&mut rng);

    let mut config = BflConfig::default();
    config.fl.clients = 10;
    config.fl.participation_ratio = 1.0;
    config.fl.rounds = 10;
    config.fl.local.epochs = 2;
    config.fl.partition = partition;
    config.strategy = LowContributionStrategy::Discard;
    config.attack = AttackConfig::table2();

    let result = BflSimulation::new(config)
        .run(&train, &test)
        .expect("simulation should complete");

    println!("\n=== {label} ===");
    println!(
        "{:<6} {:<18} {:<18} {:>14}",
        "Round", "Attacker Index", "Drop Index", "Detection Rate"
    );
    for row in &result.detection.rows {
        let rate = row
            .detection_rate
            .map(|r| format!("{:.2}%", r * 100.0))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<6} {:<18} {:<18} {:>14}",
            row.round,
            format!("{:?}", row.attacker_ids),
            format!("{:?}", row.dropped_ids),
            rate
        );
    }
    println!(
        "Average Detection Rate: {:.2}%",
        result.detection.average_detection_rate() * 100.0
    );
    println!(
        "Mean false positives per round: {:.2}",
        result.detection.mean_false_positives()
    );
    println!(
        "Final accuracy despite the attacks: {:.3}",
        result.final_accuracy().unwrap_or(0.0)
    );
}

fn main() {
    run(
        PartitionKind::ShardNonIid {
            shards_per_client: 2,
        },
        "Non-IID partition",
    );
    run(PartitionKind::Iid, "IID partition");
}
