//! Straggler quota: FAIR-BFL's flexible block size on the event-driven
//! engine.
//!
//! The paper's flexibility redesign lets a block aggregate a *flexible
//! number* of local updates, so miners seal blocks without waiting for
//! the slowest client. This example builds a heterogeneous population —
//! a slow straggler tail, a jittery uplink, and a churn schedule under
//! which some clients periodically leave and rejoin (the dynamic-join
//! property) — and runs the same scenario twice: once waiting for every
//! participant (the synchronous behaviour) and once with a flexible
//! block quota plus decayed staleness carry-over, comparing the
//! simulated makespans.
//!
//! Run with: `cargo run --release --example straggler_quota`

use fair_bfl::core::events::EventKind;
use fair_bfl::core::{ProfileConfig, Scenario, ScenarioBuilder, StalenessPolicy};
use fair_bfl::data::{SynthMnist, SynthMnistConfig};
use fair_bfl::fl::config::PartitionKind;
use fair_bfl::net::DelayDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);
    let dataset = SynthMnist::new(SynthMnistConfig {
        train_samples: 1000,
        test_samples: 200,
        ..SynthMnistConfig::default()
    });
    let (train, test) = dataset.generate(&mut rng);

    // A heterogeneous population of 10 clients: the slowest 30% train up
    // to 8x slower than the rest, every uplink is jittery, and 20% of
    // the clients churn — they drop out mid-run and rejoin later.
    let profiles = ProfileConfig {
        straggler_slowdown: 8.0,
        straggler_fraction: 0.3,
        uplink: DelayDistribution::Normal {
            mean: 0.08,
            std: 0.03,
        },
        churn_fraction: 0.2,
        churn_online_s: 8.0,
        churn_offline_s: 6.0,
    };
    let base = || -> ScenarioBuilder {
        Scenario::builder()
            .clients(10)
            .rounds(8)
            .participation_ratio(1.0)
            .partition(PartitionKind::Iid)
            .local_epochs(1)
            .verify_signatures(false)
            .profiles(profiles)
            .seed(7)
    };

    // Waiting for everyone: the block quota equals the population, so
    // every round is gated by the 8x straggler.
    let waiting = base()
        .flexible_quota(10)
        .build()
        .expect("scenario is consistent")
        .run(&train, &test)
        .expect("run completes");

    // The flexible block size: each block seals after 6 uploads; late
    // uploads are carried into the next block, decayed toward the
    // current global model by 0.5 per round of staleness.
    let scenario = base()
        .flexible_quota(6)
        .staleness(StalenessPolicy::DecayedInclude { decay: 0.5 })
        .build()
        .expect("scenario is consistent");
    let mut run = scenario.start(&train, &test).expect("run provisions");

    println!("round  accuracy  participants  stale  round-delay(s)  elapsed(s)");
    while let Some(outcome) = run.step().expect("round completes") {
        println!(
            "{:>5}  {:>8.3}  {:>12}  {:>5}  {:>14.2}  {:>10.2}",
            outcome.round,
            outcome.accuracy,
            outcome.participants,
            outcome.stale_included,
            outcome.breakdown.total(),
            run.history().rounds.last().unwrap().elapsed_s,
        );
    }

    // The deterministic event trace shows the churn schedule at work:
    // lost uploads, stale carry-overs, and the quota firing per round.
    let mut lost = 0usize;
    let mut stale = 0usize;
    for event in run.event_trace() {
        match event.kind {
            EventKind::UploadLost => lost += 1,
            EventKind::StaleIncluded => stale += 1,
            _ => {}
        }
    }
    let flexible = run.into_result();

    let makespan = |history: &fair_bfl::fl::history::RunHistory| {
        history.rounds.last().map(|r| r.elapsed_s).unwrap_or(0.0)
    };
    println!("\nuploads lost to churn       : {lost}");
    println!("stale uploads carried over  : {stale}");
    println!(
        "final accuracy              : {:.3}",
        flexible.final_accuracy().unwrap_or(0.0)
    );
    println!(
        "simulated makespan          : {:.2}s (flexible quota) vs {:.2}s (wait for everyone)",
        makespan(&flexible.history),
        makespan(&waiting.history),
    );
    println!(
        "the flexible block size cut the straggler-gated makespan by {:.2}x",
        makespan(&waiting.history) / makespan(&flexible.history)
    );
}
