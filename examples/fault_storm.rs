//! Fault storm: FAIR-BFL riding out packet loss and a network partition.
//!
//! The deterministic fault-injection subsystem drives the event engine
//! through a hostile network: every fifth upload is dropped on the
//! uplink (and retransmitted under exponential backoff), and midway
//! through the run a partition splits the three-miner mesh so each side
//! mines its own branch. When the partition heals, the longest chain
//! wins, the losing branch's blocks are orphaned, and their uploads are
//! salvaged through the staleness policy — the fork's resolution time is
//! charged to the healing round as `T_fork`. The whole storm replays
//! bit-identically from the same seed.
//!
//! Run with: `cargo run --release --example fault_storm`

use fair_bfl::core::events::EventKind;
use fair_bfl::core::{ProfileConfig, ReorgPolicy, RetryPolicy, Scenario, StalenessPolicy};
use fair_bfl::data::{SynthMnist, SynthMnistConfig};
use fair_bfl::fl::config::PartitionKind;
use fair_bfl::net::{DelayDistribution, FaultPlan, LinkFaults, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2022);
    let dataset = SynthMnist::new(SynthMnistConfig {
        train_samples: 1000,
        test_samples: 200,
        ..SynthMnistConfig::default()
    });
    let (train, test) = dataset.generate(&mut rng);

    // The storm: 20% uplink loss for the whole run, and a partition that
    // cleaves miner 2 away from miners {0, 1} across the middle rounds.
    let storm = FaultPlan {
        uplink: LinkFaults {
            drop_rate: 0.2,
            ..LinkFaults::default()
        },
        partition: Some(Partition {
            start_s: 2.0,
            duration_s: 4.0,
            boundary: 2,
        }),
        ..FaultPlan::default()
    };

    let scenario = Scenario::builder()
        .clients(10)
        .miners(3)
        .rounds(8)
        .participation_ratio(1.0)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .verify_signatures(false)
        .profiles(ProfileConfig {
            uplink: DelayDistribution::Constant(0.05),
            ..ProfileConfig::default()
        })
        .seed(7)
        .flexible_quota(7)
        .staleness(StalenessPolicy::DecayedInclude { decay: 0.5 })
        .fault(storm)
        .retry(RetryPolicy::Backoff {
            max_attempts: 3,
            timeout_s: 0.5,
            base_s: 0.5,
            factor: 2.0,
            jitter_s: 0.1,
        })
        .reorg(ReorgPolicy::Salvage)
        .build()
        .expect("scenario is consistent");

    let mut run = scenario.start(&train, &test).expect("run provisions");
    println!("round  accuracy  participants  stale  t_fork(s)  elapsed(s)");
    while let Some(outcome) = run.step().expect("round completes") {
        println!(
            "{:>5}  {:>8.3}  {:>12}  {:>5}  {:>9.2}  {:>10.2}",
            outcome.round,
            outcome.accuracy,
            outcome.participants,
            outcome.stale_included,
            outcome.breakdown.t_fork,
            run.history().rounds.last().unwrap().elapsed_s,
        );
    }

    // The event trace is the storm's flight recorder.
    let mut dropped = 0usize;
    let mut retried = 0usize;
    let mut stranded = 0usize;
    let mut healed = 0usize;
    for event in run.event_trace() {
        match event.kind {
            EventKind::UploadDropped => dropped += 1,
            EventKind::UploadRetried => retried += 1,
            EventKind::UploadStranded => stranded += 1,
            EventKind::ForkHealed => healed += 1,
            _ => {}
        }
    }
    let result = run.into_result();
    let chain = result.chain.as_ref().expect("mining is on");
    chain.validate_all().expect("the healed chain verifies");

    println!("\nuploads dropped on the uplink : {dropped}");
    println!("retransmissions               : {retried}");
    println!("uploads stranded by the split : {stranded}");
    println!("forks healed                  : {healed}");
    println!(
        "canonical chain               : {} blocks, one tip",
        chain.height()
    );
    println!(
        "final accuracy                : {:.3}",
        result.final_accuracy().unwrap_or(0.0)
    );
}
