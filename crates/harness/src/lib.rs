//! # bfl-harness
//!
//! Manifest-driven experiment fleets for the FAIR-BFL reproduction.
//!
//! A JSON [`manifest`](manifest::Manifest) names a base scenario, a grid
//! of override axes (cross-producting into labelled cells), and a seed
//! fleet. The [`runner`] expands cells × seeds into a canonical job
//! list, fans it across cores with the same order-stable schedule the
//! core `SweepRunner` uses, and streams per-round KPI rows through the
//! [`bfl_core::RoundObserver`] seam into per-seed CSV/JSON series plus a
//! cross-seed `summary.json` ([`stats::Stats`] per KPI per cell).
//!
//! Fleets also shard across *processes* with zero coordination: shard
//! `i` of `N` owns every job whose global index is `≡ i (mod N)`, and
//! [`merge`] folds the shard outputs into a summary byte-identical to
//! the one an unsharded run writes — the statistics are computed by one
//! shared function over values that round-trip through JSON bit-exactly,
//! in an order fixed by the manifest rather than by execution.
//!
//! The `bflharness` binary is the CLI: `bflharness run --manifest m.json
//! --out dir/ [--shard i/N] [--threads T]` and `bflharness merge
//! <dirs...> --out dir/`. Exemplar manifests live in `scenarios/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod manifest;
pub mod merge;
pub mod runner;
pub mod stats;

pub use manifest::{CellSpec, DatasetSpec, Manifest, ManifestError};
pub use merge::merge_shards;
pub use runner::{
    run_fleet, summarize, write_outputs, FinalMetrics, FleetFile, HarnessError, RoundRow,
    RunRecord, RunSidecar, Shard, Summary,
};
pub use stats::Stats;
