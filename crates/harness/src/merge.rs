//! Folding shard outputs back into one fleet summary.
//!
//! `bflharness merge shard0/ shard1/ --out merged/` proves the inputs
//! are shards of the *same* fleet (their `fleet.json` files must be
//! byte-identical — the runner writes that file shard-free for exactly
//! this purpose), checks the union of their per-run sidecars covers
//! every cell × seed exactly once, and recomputes `summary.json` with
//! the same statistics code the unsharded runner uses. Because the
//! final metrics round-trip through JSON bit-exactly and the summary
//! consumes them in canonical order, the merged summary is
//! byte-identical to the one an unsharded run would have written.

use crate::runner::{
    cell_dir, summarize, to_pretty_json, write_text, FleetFile, HarnessError, RunSidecar, Summary,
};
use serde::Deserialize;
use std::collections::BTreeMap;
use std::path::Path;

fn read_text(path: &Path) -> Result<String, HarnessError> {
    std::fs::read_to_string(path).map_err(|e| HarnessError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

fn parse_json<T: Deserialize>(text: &str, path: &Path) -> Result<T, HarnessError> {
    serde_json::from_str(text)
        .map_err(|e| HarnessError::Merge(format!("`{}`: {e}", path.display())))
}

/// Sidecars of a collected shard set, keyed by `(cell_index, seed)`.
pub type SidecarMap = BTreeMap<(usize, u64), RunSidecar>;

/// Reads every shard directory, verifies fleet identity and coverage,
/// and returns the fleet file (typed and as its raw bytes) plus the
/// sidecars keyed by `(cell_index, seed)`.
pub fn collect_shards(inputs: &[&Path]) -> Result<(FleetFile, String, SidecarMap), HarnessError> {
    if inputs.is_empty() {
        return Err(HarnessError::Merge("no input directories".to_string()));
    }

    let first_fleet_path = inputs[0].join("fleet.json");
    let fleet_text = read_text(&first_fleet_path)?;
    let fleet: FleetFile = parse_json(&fleet_text, &first_fleet_path)?;
    for input in &inputs[1..] {
        let path = input.join("fleet.json");
        let text = read_text(&path)?;
        if text != fleet_text {
            return Err(HarnessError::Merge(format!(
                "`{}` describes a different fleet than `{}`",
                path.display(),
                first_fleet_path.display()
            )));
        }
    }

    let mut sidecars: SidecarMap = BTreeMap::new();
    for input in inputs {
        for (cell_index, label) in fleet.cells.iter().enumerate() {
            let dir = cell_dir(input, cell_index, label);
            for &seed in &fleet.seeds {
                let path = dir.join(format!("seed_{seed}.json"));
                if !path.exists() {
                    continue;
                }
                let sidecar: RunSidecar = parse_json(&read_text(&path)?, &path)?;
                if sidecar.cell_index != cell_index || sidecar.seed != seed {
                    return Err(HarnessError::Merge(format!(
                        "`{}` claims cell {} seed {} but sits at cell {} seed {}",
                        path.display(),
                        sidecar.cell_index,
                        sidecar.seed,
                        cell_index,
                        seed
                    )));
                }
                if sidecars.insert((cell_index, seed), sidecar).is_some() {
                    return Err(HarnessError::Merge(format!(
                        "cell {cell_index} seed {seed} appears in more than one input"
                    )));
                }
            }
        }
    }

    for (cell_index, _) in fleet.cells.iter().enumerate() {
        for &seed in &fleet.seeds {
            if !sidecars.contains_key(&(cell_index, seed)) {
                return Err(HarnessError::Merge(format!(
                    "cell {cell_index} seed {seed} is missing from every input \
                     (incomplete shard set?)"
                )));
            }
        }
    }

    Ok((fleet, fleet_text, sidecars))
}

/// Merges shard directories into `out`: writes the shared `fleet.json`
/// and the recomputed `summary.json`.
pub fn merge_shards(inputs: &[&Path], out: &Path) -> Result<Summary, HarnessError> {
    let (fleet, fleet_text, sidecars) = collect_shards(inputs)?;

    let summary = summarize(&fleet, &|cell_index, seed| {
        sidecars[&(cell_index, seed)].finals
    });

    write_text(&out.join("fleet.json"), &fleet_text)?;
    write_text(&out.join("summary.json"), &to_pretty_json(&summary))?;
    Ok(summary)
}
