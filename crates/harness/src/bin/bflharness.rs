//! `bflharness` — run and merge manifest-driven experiment fleets.
//!
//! ```text
//! bflharness run --manifest m.json --out dir/ [--shard i/N] [--threads T]
//! bflharness merge <shard-dir>... --out dir/
//! ```
//!
//! `run` expands the manifest's cells × seeds, executes the jobs this
//! process's shard owns, and writes per-seed KPI series plus (when
//! unsharded) the cross-seed `summary.json` and a `timing.json` wall
//! -clock report. `merge` folds shard directories into a summary
//! byte-identical to the unsharded run's.

use bfl_harness::{merge_shards, run_fleet, write_outputs, Manifest, Shard};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  bflharness run --manifest <m.json> --out <dir> \
         [--shard i/N] [--threads T]\n  bflharness merge <dir>... --out <dir>"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("bflharness: {message}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_command(&args[1..]),
        Some("merge") => merge_command(&args[1..]),
        _ => usage(),
    }
}

fn run_command(args: &[String]) {
    let mut manifest_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut shard = Shard::default();
    let mut threads = 0usize;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("bflharness: {name} needs a value");
                    usage();
                }
            }
        };
        match arg.as_str() {
            "--manifest" => manifest_path = Some(PathBuf::from(value("--manifest"))),
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--shard" => {
                let text = value("--shard");
                shard = Shard::parse(&text).unwrap_or_else(|e| fail(e));
            }
            "--threads" => {
                let text = value("--threads");
                threads = text
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--threads `{text}` is not an integer")));
            }
            other => {
                eprintln!("bflharness: unknown flag `{other}`");
                usage();
            }
        }
    }
    let (Some(manifest_path), Some(out)) = (manifest_path, out) else {
        usage();
    };

    let text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| fail(format!("cannot read `{}`: {e}", manifest_path.display())));
    let manifest = Manifest::from_json(&text).unwrap_or_else(|e| fail(e));
    eprintln!(
        "fleet `{}`: {} cells x {} seeds = {} runs (shard {}/{})",
        manifest.name,
        manifest.cells.len(),
        manifest.seeds.len(),
        manifest.total_runs(),
        shard.index,
        shard.count,
    );

    let started = Instant::now();
    let records = run_fleet(&manifest, shard, threads).unwrap_or_else(|e| fail(e));
    let elapsed = started.elapsed().as_secs_f64();
    write_outputs(&manifest, shard, &records, &out).unwrap_or_else(|e| fail(e));

    // Wall-clock timing through the shared bench report writer. Sharded
    // processes suffix the file so two shards writing into sibling dirs
    // under one parent never race on a name.
    let timing = TimingReport {
        fleet: manifest.name.clone(),
        runs: records.len(),
        shard: format!("{}/{}", shard.index, shard.count),
        threads: if threads == 0 {
            bfl_ml::par::max_threads()
        } else {
            threads
        },
        wall_s: elapsed,
        runs_per_s: if elapsed > 0.0 {
            records.len() as f64 / elapsed
        } else {
            0.0
        },
    };
    let timing_path = out.join("timing.json");
    bfl_bench::write_report(&timing_path.display().to_string(), &timing);

    eprintln!(
        "wrote {} runs to `{}` in {elapsed:.2}s",
        records.len(),
        out.display()
    );
}

struct TimingReport {
    fleet: String,
    runs: usize,
    shard: String,
    threads: usize,
    wall_s: f64,
    runs_per_s: f64,
}

impl serde::Serialize for TimingReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("fleet".to_string(), serde::Value::Str(self.fleet.clone())),
            ("runs".to_string(), serde::Value::UInt(self.runs as u64)),
            ("shard".to_string(), serde::Value::Str(self.shard.clone())),
            (
                "threads".to_string(),
                serde::Value::UInt(self.threads as u64),
            ),
            ("wall_s".to_string(), serde::Value::Float(self.wall_s)),
            (
                "runs_per_s".to_string(),
                serde::Value::Float(self.runs_per_s),
            ),
        ])
    }
}

fn merge_command(args: &[String]) {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut out: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => usage(),
            },
            flag if flag.starts_with("--") => {
                eprintln!("bflharness: unknown flag `{flag}`");
                usage();
            }
            dir => inputs.push(PathBuf::from(dir)),
        }
    }
    let Some(out) = out else { usage() };
    if inputs.is_empty() {
        usage();
    }

    let input_refs: Vec<&Path> = inputs.iter().map(PathBuf::as_path).collect();
    let summary = merge_shards(&input_refs, &out).unwrap_or_else(|e| fail(e));
    eprintln!(
        "merged {} inputs into `{}` ({} cells x {} seeds)",
        inputs.len(),
        out.display(),
        summary.cells.len(),
        summary.seeds.len(),
    );
}
