//! Fleet execution: cells × seeds fanned across cores and processes.
//!
//! The runner expands a [`Manifest`] into the canonical job list
//! (cell-major, seeds in manifest order), filters it by the process
//! [`Shard`], and executes the surviving jobs with the same balanced
//! contiguous-chunk schedule the core `SweepRunner` uses — so results
//! are order-stable and bit-identical at every thread count. All file
//! writes happen serially after the parallel phase, in canonical order.

use crate::manifest::{DatasetSpec, Manifest};
use crate::stats::Stats;
use bfl_core::{gini, CoreError, RoundEvent, Scenario};
use bfl_data::{Dataset, SynthMnist, SynthMnistConfig};
use bfl_ml::par;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::{Path, PathBuf};

/// Which slice of the fleet this process owns.
///
/// Job `g` (global index in the canonical cell-major order) belongs to
/// shard `i` of `n` iff `g % n == i` — a pure function of the manifest,
/// so cooperating processes need no coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This process's shard index, `0 <= index < count`.
    pub index: usize,
    /// Total number of cooperating shards.
    pub count: usize,
}

impl Default for Shard {
    /// The whole fleet in one process.
    fn default() -> Self {
        Shard { index: 0, count: 1 }
    }
}

impl Shard {
    /// Parses `i/N` (e.g. `0/2`).
    pub fn parse(text: &str) -> Result<Shard, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("expected i/N, got `{text}`"))?;
        let index: usize = index
            .parse()
            .map_err(|_| format!("shard index `{index}` is not an integer"))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("shard count `{count}` is not an integer"))?;
        if count == 0 {
            return Err("shard count must be >= 1".to_string());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for /{count}"));
        }
        Ok(Shard { index, count })
    }

    /// Does this shard own global job `g`?
    pub fn owns(&self, g: usize) -> bool {
        g % self.count == self.index
    }
}

/// A harness failure: manifest, I/O, simulation, or merge.
#[derive(Debug)]
pub enum HarnessError {
    /// The manifest failed to parse or validate.
    Manifest(crate::manifest::ManifestError),
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error message.
        message: String,
    },
    /// A simulation failed.
    Core(CoreError),
    /// Shard outputs could not be merged.
    Merge(String),
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Manifest(e) => write!(f, "{e}"),
            HarnessError::Io { path, message } => write!(f, "io error at `{path}`: {message}"),
            HarnessError::Core(e) => write!(f, "simulation failed: {e}"),
            HarnessError::Merge(message) => write!(f, "merge failed: {message}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<crate::manifest::ManifestError> for HarnessError {
    fn from(e: crate::manifest::ManifestError) -> Self {
        HarnessError::Manifest(e)
    }
}

impl From<CoreError> for HarnessError {
    fn from(e: CoreError) -> Self {
        HarnessError::Core(e)
    }
}

fn io_err(path: &Path, e: std::io::Error) -> HarnessError {
    HarnessError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// One per-round KPI record, streamed out of the [`RoundEvent`] seam.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRow {
    /// Communication round (1-based).
    pub round: usize,
    /// Test accuracy after the round.
    pub accuracy: f64,
    /// Mean final-epoch training loss across participants.
    pub train_loss: f64,
    /// Uploads that entered the aggregation.
    pub participants: usize,
    /// Attacker-detection rate this round (absent without attackers).
    pub detection_rate: Option<f64>,
    /// Wall-clock makespan of the round in simulated seconds.
    pub makespan_s: f64,
    /// Mempool depth at the instant the block sealed.
    pub mempool_depth_at_seal: usize,
    /// Stale uploads the staleness policy included.
    pub stale_included: usize,
    /// Stale uploads the staleness policy discarded.
    pub stale_discarded: usize,
    /// Uploads lost or dropped by link faults.
    pub dropped_uploads: usize,
    /// Uploads the retry policy re-sent.
    pub retried_uploads: usize,
    /// Reward paid this round, in milli-units.
    pub rewards_paid_milli: u64,
    /// Gini coefficient of the cumulative reward ledger through this round.
    pub reward_gini: f64,
}

/// Final (end-of-run) metrics of one cell × seed run — the values the
/// cross-seed summary aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinalMetrics {
    /// Test accuracy after the last round (0.0 for chain-only runs).
    pub final_accuracy: f64,
    /// Run-average attacker-detection rate.
    pub detection_rate: f64,
    /// Total simulated makespan across all rounds, in seconds.
    pub makespan_s: f64,
    /// Gini coefficient of the final cumulative reward ledger.
    pub reward_gini: f64,
}

/// The in-memory result of one cell × seed run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Index of the cell in the manifest's expansion order.
    pub cell_index: usize,
    /// The cell's label.
    pub cell_label: String,
    /// The scenario seed.
    pub seed: u64,
    /// Per-round KPI rows.
    pub rows: Vec<RoundRow>,
    /// End-of-run metrics.
    pub finals: FinalMetrics,
}

/// The per-run sidecar JSON (`seed_<N>.json`) — everything `merge`
/// needs to rebuild the summary without re-running anything.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSidecar {
    /// Manifest name.
    pub name: String,
    /// Cell index in expansion order.
    pub cell_index: usize,
    /// Cell label.
    pub cell_label: String,
    /// Scenario seed.
    pub seed: u64,
    /// Rounds completed.
    pub rounds: usize,
    /// End-of-run metrics.
    pub finals: FinalMetrics,
}

/// Cross-seed statistics of one cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellSummary {
    /// The cell's label.
    pub label: String,
    /// Final test accuracy across seeds.
    pub final_accuracy: Stats,
    /// Average detection rate across seeds.
    pub detection_rate: Stats,
    /// Total makespan across seeds.
    pub makespan_s: Stats,
    /// Final reward Gini across seeds.
    pub reward_gini: Stats,
}

/// The fleet summary (`summary.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Manifest name.
    pub name: String,
    /// The seed fleet, in manifest order.
    pub seeds: Vec<u64>,
    /// One entry per cell, in expansion order.
    pub cells: Vec<CellSummary>,
}

/// The fleet identity file (`fleet.json`). Deliberately shard-free so
/// every shard of the same manifest writes byte-identical bytes — merge
/// uses that to prove the shards came from one fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetFile {
    /// Manifest name.
    pub name: String,
    /// Cell labels, in expansion order.
    pub cells: Vec<String>,
    /// The seed fleet, in manifest order.
    pub seeds: Vec<u64>,
}

impl FleetFile {
    /// Builds the identity record of a manifest.
    pub fn of(manifest: &Manifest) -> FleetFile {
        FleetFile {
            name: manifest.name.clone(),
            cells: manifest.cells.iter().map(|c| c.label.clone()).collect(),
            seeds: manifest.seeds.clone(),
        }
    }
}

/// Generates the fleet's shared dataset.
pub fn generate_dataset(spec: &DatasetSpec) -> (Dataset, Dataset) {
    let generator = SynthMnist::new(SynthMnistConfig {
        train_samples: spec.train_samples,
        test_samples: spec.test_samples,
        ..SynthMnistConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(spec.data_seed);
    generator.generate(&mut rng)
}

/// Runs every job of `manifest` owned by `shard` and returns the records
/// in canonical (cell-major) order.
///
/// `threads` caps the worker count (0 = all available). Scheduling
/// mirrors the core `SweepRunner`: balanced contiguous chunks over the
/// job list, mapped with `par::par_map`, flattened — so the output is
/// independent of the thread count and of which shard ran which job.
pub fn run_fleet(
    manifest: &Manifest,
    shard: Shard,
    threads: usize,
) -> Result<Vec<RunRecord>, HarnessError> {
    let (train, test) = generate_dataset(&manifest.dataset);
    let jobs: Vec<(usize, u64)> = (0..manifest.cells.len())
        .flat_map(|cell| manifest.seeds.iter().map(move |&seed| (cell, seed)))
        .enumerate()
        .filter(|(g, _)| shard.owns(*g))
        .map(|(_, job)| job)
        .collect();
    if jobs.is_empty() {
        return Ok(Vec::new());
    }

    let workers = if threads == 0 {
        par::max_threads()
    } else {
        threads
    }
    .min(jobs.len())
    .max(1);
    let mut chunks: Vec<&[(usize, u64)]> = Vec::with_capacity(workers);
    let per = jobs.len() / workers;
    let extra = jobs.len() % workers;
    let mut start = 0;
    for w in 0..workers {
        let len = per + usize::from(w < extra);
        chunks.push(&jobs[start..start + len]);
        start += len;
    }

    let results: Vec<Vec<Result<RunRecord, HarnessError>>> =
        par::par_map(&chunks, 1, |_, chunk| {
            chunk
                .iter()
                .map(|&(cell, seed)| run_one(manifest, cell, seed, &train, &test))
                .collect()
        });
    results.into_iter().flatten().collect()
}

/// Runs one cell × seed job.
fn run_one(
    manifest: &Manifest,
    cell_index: usize,
    seed: u64,
    train: &Dataset,
    test: &Dataset,
) -> Result<RunRecord, HarnessError> {
    let cell = &manifest.cells[cell_index];
    let mut config = cell.config;
    config.fl.seed = seed;
    let scenario = Scenario::from_config(config)?;

    let mut rows: Vec<RoundRow> = Vec::new();
    let observer = |event: &RoundEvent<'_>| {
        let ledger: Vec<u64> = event.reward_totals.values().copied().collect();
        rows.push(RoundRow {
            round: event.outcome.round,
            accuracy: event.outcome.accuracy,
            train_loss: event.outcome.train_loss,
            participants: event.outcome.participants,
            detection_rate: event.detection.and_then(|d| d.detection_rate),
            makespan_s: event.kpi.makespan_s,
            mempool_depth_at_seal: event.kpi.mempool_depth_at_seal,
            stale_included: event.kpi.stale_included,
            stale_discarded: event.kpi.stale_discarded,
            dropped_uploads: event.kpi.dropped_uploads,
            retried_uploads: event.kpi.retried_uploads,
            rewards_paid_milli: event.outcome.rewards_paid_milli,
            reward_gini: gini(&ledger),
        });
    };
    let mut observer = observer;
    let result = scenario.run_observed(train, test, &mut observer)?;

    let makespan_s = rows.iter().map(|r| r.makespan_s).sum();
    let ledger: Vec<u64> = result.reward_totals.values().copied().collect();
    let finals = FinalMetrics {
        final_accuracy: result.final_accuracy().unwrap_or(0.0),
        detection_rate: result.detection.average_detection_rate(),
        makespan_s,
        reward_gini: gini(&ledger),
    };
    Ok(RunRecord {
        cell_index,
        cell_label: cell.label.clone(),
        seed,
        rows,
        finals,
    })
}

/// Builds the cross-seed summary from final metrics keyed by
/// `(cell_index, seed)`. `finals` must cover the full fleet and is
/// consumed in canonical order (cells in expansion order, seeds in
/// manifest order), so the float accumulation order — and therefore the
/// serialized bytes — are independent of how the values were produced.
/// Both the unsharded runner and `merge` call this one function; the
/// byte-identity guarantee depends on them never diverging.
pub fn summarize(fleet: &FleetFile, finals: &dyn Fn(usize, u64) -> FinalMetrics) -> Summary {
    let cells = fleet
        .cells
        .iter()
        .enumerate()
        .map(|(cell_index, label)| {
            let metrics: Vec<FinalMetrics> = fleet
                .seeds
                .iter()
                .map(|&seed| finals(cell_index, seed))
                .collect();
            let column = |f: &dyn Fn(&FinalMetrics) -> f64| {
                Stats::from_sample(&metrics.iter().map(f).collect::<Vec<f64>>())
            };
            CellSummary {
                label: label.clone(),
                final_accuracy: column(&|m| m.final_accuracy),
                detection_rate: column(&|m| m.detection_rate),
                makespan_s: column(&|m| m.makespan_s),
                reward_gini: column(&|m| m.reward_gini),
            }
        })
        .collect();
    Summary {
        name: fleet.name.clone(),
        seeds: fleet.seeds.clone(),
        cells,
    }
}

/// The CSV header of a per-seed KPI series.
pub const CSV_HEADER: &str = "round,accuracy,train_loss,participants,detection_rate,\
makespan_s,mempool_depth_at_seal,stale_included,stale_discarded,dropped_uploads,\
retried_uploads,rewards_paid_milli,reward_gini";

/// Renders one run's KPI series as CSV (floats in shortest round-trip
/// form; an absent detection rate is an empty cell).
pub fn render_csv(rows: &[RoundRow]) -> String {
    let mut out = String::with_capacity(64 * (rows.len() + 1));
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in rows {
        let detection = r
            .detection_rate
            .map(|d| format!("{d:?}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "{},{:?},{:?},{},{},{:?},{},{},{},{},{},{},{:?}\n",
            r.round,
            r.accuracy,
            r.train_loss,
            r.participants,
            detection,
            r.makespan_s,
            r.mempool_depth_at_seal,
            r.stale_included,
            r.stale_discarded,
            r.dropped_uploads,
            r.retried_uploads,
            r.rewards_paid_milli,
            r.reward_gini,
        ));
    }
    out
}

/// Directory of a cell's outputs under `out/`.
pub fn cell_dir(out: &Path, cell_index: usize, label: &str) -> PathBuf {
    let sanitized: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    out.join("cells")
        .join(format!("cell_{cell_index}_{sanitized}"))
}

/// Writes `text` to `path`, creating parent directories.
pub fn write_text(path: &Path, text: &str) -> Result<(), HarnessError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
    }
    std::fs::write(path, text).map_err(|e| io_err(path, e))
}

/// Serializes `value` as pretty JSON with a trailing newline.
pub fn to_pretty_json<T: Serialize>(value: &T) -> String {
    let mut text =
        serde_json::to_string_pretty(value).expect("harness reports contain only finite floats");
    text.push('\n');
    text
}

/// Writes the outputs of a (possibly sharded) fleet run: `fleet.json`,
/// per-run CSV/JSON series, and — only for the unsharded case — the
/// cross-seed `summary.json` (a shard cannot summarize seeds it does
/// not own; `merge` produces the summary instead).
pub fn write_outputs(
    manifest: &Manifest,
    shard: Shard,
    records: &[RunRecord],
    out: &Path,
) -> Result<(), HarnessError> {
    let fleet = FleetFile::of(manifest);
    write_text(&out.join("fleet.json"), &to_pretty_json(&fleet))?;

    for record in records {
        let dir = cell_dir(out, record.cell_index, &record.cell_label);
        let csv_path = dir.join(format!("seed_{}.csv", record.seed));
        write_text(&csv_path, &render_csv(&record.rows))?;
        let sidecar = RunSidecar {
            name: manifest.name.clone(),
            cell_index: record.cell_index,
            cell_label: record.cell_label.clone(),
            seed: record.seed,
            rounds: record.rows.len(),
            finals: record.finals,
        };
        let json_path = dir.join(format!("seed_{}.json", record.seed));
        write_text(&json_path, &to_pretty_json(&sidecar))?;
    }

    if shard.count == 1 {
        let summary = summarize(&fleet, &|cell, seed| {
            records
                .iter()
                .find(|r| r.cell_index == cell && r.seed == seed)
                .expect("unsharded run covers every job")
                .finals
        });
        write_text(&out.join("summary.json"), &to_pretty_json(&summary))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_parse_accepts_i_slash_n_only() {
        assert_eq!(Shard::parse("0/2").unwrap(), Shard { index: 0, count: 2 });
        assert_eq!(Shard::parse("3/4").unwrap(), Shard { index: 3, count: 4 });
        assert!(Shard::parse("2/2").is_err());
        assert!(Shard::parse("1").is_err());
        assert!(Shard::parse("a/2").is_err());
        assert!(Shard::parse("0/0").is_err());
    }

    #[test]
    fn shards_partition_the_job_space() {
        let shards: Vec<Shard> = (0..3).map(|i| Shard { index: i, count: 3 }).collect();
        for g in 0..20 {
            let owners = shards.iter().filter(|s| s.owns(g)).count();
            assert_eq!(owners, 1, "job {g} must have exactly one owner");
        }
    }

    #[test]
    fn csv_rendering_is_stable_and_header_matches() {
        let rows = vec![RoundRow {
            round: 1,
            accuracy: 0.5,
            train_loss: 1.25,
            participants: 7,
            detection_rate: None,
            makespan_s: 2.5,
            mempool_depth_at_seal: 7,
            stale_included: 0,
            stale_discarded: 1,
            dropped_uploads: 2,
            retried_uploads: 3,
            rewards_paid_milli: 9000,
            reward_gini: 0.125,
        }];
        let csv = render_csv(&rows);
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap().split(',').count(), 13);
        assert_eq!(
            lines.next().unwrap(),
            "1,0.5,1.25,7,,2.5,7,0,1,2,3,9000,0.125"
        );
    }

    #[test]
    fn cell_dir_sanitizes_labels() {
        let dir = cell_dir(Path::new("out"), 3, "quota=7/churn on");
        assert_eq!(
            dir,
            Path::new("out")
                .join("cells")
                .join("cell_3_quota-7-churn-on")
        );
    }
}
