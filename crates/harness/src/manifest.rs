//! The experiment manifest: a JSON description of a scenario fleet.
//!
//! A manifest names a base scenario, a grid of override axes whose cells
//! cross-product into labelled configurations, and a seed fleet. Parsing
//! is **strict**: unknown keys and out-of-range values are hard errors
//! carrying the JSON path of the offending element (`grid[1].cells[0]
//! .set.quota`), because a typo that silently falls back to a default
//! would corrupt a fleet's results without a trace. The vendored serde
//! shim has no `deny_unknown_fields`, so the decoder is hand-rolled over
//! [`serde::Value`]: every object walks through a strict walker that
//! tracks which keys were consumed and rejects the leftovers.
//!
//! ## Schema
//!
//! ```json
//! {
//!   "name": "table2_attack",
//!   "description": "optional free text",
//!   "dataset": {"train_samples": 300, "test_samples": 100, "data_seed": 55930},
//!   "base": { <settings> },
//!   "grid": [
//!     {"axis": "strategy", "cells": [
//!       {"label": "keep", "set": { <settings> }},
//!       {"label": "discard", "set": { <settings> }}
//!     ]}
//!   ],
//!   "seeds": [1, 2, 3]        // or {"range": [0, 5]} = seeds 0..5
//! }
//! ```
//!
//! `dataset`, `base` and `grid` are optional (defaults: a smoke-scale
//! synthetic MNIST, the paper's Section 5.1 configuration, a single
//! unlabelled cell). The recognised settings keys are listed in
//! [`apply_settings`].

use bfl_core::{
    AggregationAnchor, AttackConfig, BflConfig, FlexibilityMode, LowContributionStrategy,
    ReorgPolicy, RetryPolicy, StalenessPolicy, SyncMode,
};
use bfl_fl::config::PartitionKind;
use bfl_net::{DelayDistribution, Partition};
use serde::Value;
use std::fmt;

/// Transparent wrapper so a raw [`Value`] tree can pass through the
/// shim's `from_str`/`to_string_pretty`, which are generic over the
/// `Deserialize`/`Serialize` traits that `Value` itself does not
/// implement.
pub(crate) struct RawJson(pub(crate) Value);

impl serde::Deserialize for RawJson {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(RawJson(value.clone()))
    }
}

impl serde::Serialize for RawJson {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// A manifest parse/validation failure, pinned to a JSON path.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestError {
    /// JSON path of the offending element (e.g. `grid[0].cells[1].set.quota`).
    pub path: String,
    /// What is wrong with it.
    pub message: String,
}

impl ManifestError {
    fn new(path: impl Into<String>, message: impl Into<String>) -> Self {
        ManifestError {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "manifest: {}", self.message)
        } else {
            write!(f, "manifest at `{}`: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

/// The synthetic dataset a fleet trains on, shared by every cell and seed
/// (the seed axis varies *scenario* randomness, not the data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Training samples generated.
    pub train_samples: usize,
    /// Held-out test samples generated.
    pub test_samples: usize,
    /// Generator seed for the synthetic data.
    pub data_seed: u64,
}

impl Default for DatasetSpec {
    /// Smoke scale: the same shape the bench suite's `Scale::Smoke` uses.
    fn default() -> Self {
        DatasetSpec {
            train_samples: 300,
            test_samples: 100,
            data_seed: 0xDA7A,
        }
    }
}

/// One expanded grid cell: a label and its fully resolved configuration
/// (before the per-run seed override).
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Cell label, axis labels joined with `/` (or `base` for an empty grid).
    pub label: String,
    /// The resolved, validated configuration.
    pub config: BflConfig,
}

/// A parsed, expanded, validated experiment manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Manifest name (used in output files).
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// The dataset every run trains on.
    pub dataset: DatasetSpec,
    /// Expanded grid cells, in axis-declaration order (last axis fastest).
    pub cells: Vec<CellSpec>,
    /// The seed fleet, in manifest order.
    pub seeds: Vec<u64>,
}

impl Manifest {
    /// Parses and validates a manifest from JSON text.
    pub fn from_json(text: &str) -> Result<Manifest, ManifestError> {
        let raw: RawJson = serde_json::from_str(text)
            .map_err(|e| ManifestError::new("", format!("not valid JSON: {e}")))?;
        Self::from_value(&raw.0)
    }

    /// Parses and validates a manifest from a decoded JSON tree.
    pub fn from_value(value: &Value) -> Result<Manifest, ManifestError> {
        let mut root = ObjWalker::new(value, "")?;

        let name = take_string(&mut root, "name")?
            .ok_or_else(|| ManifestError::new("name", "required key is missing"))?;
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(ManifestError::new(
                "name",
                format!("must be non-empty ASCII [a-zA-Z0-9_], got `{name}`"),
            ));
        }
        let description = take_string(&mut root, "description")?.unwrap_or_default();

        let dataset = match root.take("dataset") {
            Some(value) => parse_dataset(value, "dataset")?,
            None => DatasetSpec::default(),
        };

        let mut base = BflConfig::default();
        if let Some(value) = root.take("base") {
            apply_settings(&mut base, value, "base")?;
        }

        let axes = match root.take("grid") {
            Some(value) => parse_grid(value, "grid")?,
            None => Vec::new(),
        };
        let cells = expand_cells(&base, &axes)?;

        let seeds = match root.take("seeds") {
            Some(value) => parse_seeds(value, "seeds")?,
            None => return Err(ManifestError::new("seeds", "required key is missing")),
        };

        root.finish()?;
        Ok(Manifest {
            name,
            description,
            dataset,
            cells,
            seeds,
        })
    }

    /// Total number of runs (cells × seeds).
    pub fn total_runs(&self) -> usize {
        self.cells.len() * self.seeds.len()
    }
}

/// One grid axis before expansion.
struct Axis {
    cells: Vec<(String, BflConfigPatch)>,
}

/// A cell's raw `set` object, kept unparsed so it can be re-applied on
/// top of every combination of the other axes (the same JSON may be valid
/// against one combination and out-of-range against another — for
/// example a quota exceeding a reduced client count).
struct BflConfigPatch {
    value: Value,
    path: String,
}

fn parse_dataset(value: &Value, path: &str) -> Result<DatasetSpec, ManifestError> {
    let mut walker = ObjWalker::new(value, path)?;
    let mut spec = DatasetSpec::default();
    if let Some(n) = take_usize(&mut walker, "train_samples")? {
        require(n >= 1, walker.key_path("train_samples"), "must be >= 1")?;
        spec.train_samples = n;
    }
    if let Some(n) = take_usize(&mut walker, "test_samples")? {
        require(n >= 1, walker.key_path("test_samples"), "must be >= 1")?;
        spec.test_samples = n;
    }
    if let Some(seed) = take_u64(&mut walker, "data_seed")? {
        spec.data_seed = seed;
    }
    walker.finish()?;
    Ok(spec)
}

fn parse_grid(value: &Value, path: &str) -> Result<Vec<Axis>, ManifestError> {
    let axes_json = as_array(value, path)?;
    let mut axes = Vec::with_capacity(axes_json.len());
    for (i, axis_json) in axes_json.iter().enumerate() {
        let axis_path = format!("{path}[{i}]");
        let mut walker = ObjWalker::new(axis_json, &axis_path)?;
        // The axis name is descriptive only; labels carry the identity.
        let _axis_name = take_string(&mut walker, "axis")?.ok_or_else(|| {
            ManifestError::new(walker.key_path("axis"), "required key is missing")
        })?;
        let cells_value = walker.take("cells").ok_or_else(|| {
            ManifestError::new(walker.key_path("cells"), "required key is missing")
        })?;
        let cells_path = walker.key_path("cells");
        let cells_json = as_array(cells_value, &cells_path)?;
        if cells_json.is_empty() {
            return Err(ManifestError::new(cells_path, "axis has no cells"));
        }
        let mut cells = Vec::with_capacity(cells_json.len());
        for (j, cell_json) in cells_json.iter().enumerate() {
            let cell_path = format!("{cells_path}[{j}]");
            let mut cell_walker = ObjWalker::new(cell_json, &cell_path)?;
            let label = take_string(&mut cell_walker, "label")?.ok_or_else(|| {
                ManifestError::new(cell_walker.key_path("label"), "required key is missing")
            })?;
            if label.is_empty() || label.contains('/') {
                return Err(ManifestError::new(
                    cell_walker.key_path("label"),
                    format!("must be non-empty and `/`-free, got `{label}`"),
                ));
            }
            if cells.iter().any(|(existing, _)| *existing == label) {
                return Err(ManifestError::new(
                    cell_walker.key_path("label"),
                    format!("duplicate label `{label}` on this axis"),
                ));
            }
            let set_value = cell_walker.take("set").ok_or_else(|| {
                ManifestError::new(cell_walker.key_path("set"), "required key is missing")
            })?;
            let set_path = cell_walker.key_path("set");
            cells.push((
                label,
                BflConfigPatch {
                    value: set_value.clone(),
                    path: set_path,
                },
            ));
            cell_walker.finish()?;
        }
        axes.push(Axis { cells });
        walker.finish()?;
    }
    Ok(axes)
}

/// Cross-products the axes (declaration order, last axis fastest) into
/// labelled cells, applying each combination's patches on top of the base
/// configuration and validating the result.
fn expand_cells(base: &BflConfig, axes: &[Axis]) -> Result<Vec<CellSpec>, ManifestError> {
    if axes.is_empty() {
        validate_config(base, "base")?;
        return Ok(vec![CellSpec {
            label: "base".to_string(),
            config: *base,
        }]);
    }
    let total: usize = axes.iter().map(|a| a.cells.len()).product();
    let mut cells = Vec::with_capacity(total);
    let mut indices = vec![0usize; axes.len()];
    loop {
        let mut config = *base;
        let mut labels = Vec::with_capacity(axes.len());
        for (axis, &pick) in axes.iter().zip(indices.iter()) {
            let (label, patch) = &axis.cells[pick];
            labels.push(label.as_str());
            apply_settings(&mut config, &patch.value, &patch.path)?;
        }
        let label = labels.join("/");
        validate_config(&config, &format!("cell `{label}`"))?;
        cells.push(CellSpec { label, config });

        // Odometer step: last axis fastest.
        let mut axis = axes.len();
        loop {
            if axis == 0 {
                return Ok(cells);
            }
            axis -= 1;
            indices[axis] += 1;
            if indices[axis] < axes[axis].cells.len() {
                break;
            }
            indices[axis] = 0;
        }
    }
}

fn validate_config(config: &BflConfig, what: &str) -> Result<(), ManifestError> {
    config
        .validate()
        .map_err(|e| ManifestError::new("", format!("{what} resolves to an invalid scenario: {e}")))
}

fn parse_seeds(value: &Value, path: &str) -> Result<Vec<u64>, ManifestError> {
    let seeds = match value {
        Value::Arr(items) => {
            let mut seeds = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                seeds.push(as_u64(item, &format!("{path}[{i}]"))?);
            }
            seeds
        }
        Value::Obj(_) => {
            let mut walker = ObjWalker::new(value, path)?;
            let range_value = walker.take("range").ok_or_else(|| {
                ManifestError::new(walker.key_path("range"), "required key is missing")
            })?;
            let range_path = walker.key_path("range");
            let bounds = as_array(range_value, &range_path)?;
            if bounds.len() != 2 {
                return Err(ManifestError::new(
                    range_path,
                    format!("must be a [lo, hi) pair, got {} elements", bounds.len()),
                ));
            }
            let lo = as_u64(&bounds[0], &format!("{range_path}[0]"))?;
            let hi = as_u64(&bounds[1], &format!("{range_path}[1]"))?;
            require(lo < hi, &range_path, "must satisfy lo < hi")?;
            walker.finish()?;
            (lo..hi).collect()
        }
        other => {
            return Err(ManifestError::new(
                path,
                format!(
                    "expected a seed array or {{\"range\": [lo, hi]}}, found {}",
                    other.kind()
                ),
            ));
        }
    };
    if seeds.is_empty() {
        return Err(ManifestError::new(path, "at least one seed is required"));
    }
    let mut sorted = seeds.clone();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return Err(ManifestError::new(path, "seeds must be distinct"));
    }
    Ok(seeds)
}

/// Applies one `settings` object onto `config`. Recognised keys:
///
/// | key | value | target |
/// |---|---|---|
/// | `clients` | uint ≥ 1 | `fl.clients` |
/// | `rounds` | uint ≥ 1 | `fl.rounds` |
/// | `participation_ratio` | float in (0, 1] | `fl.participation_ratio` |
/// | `local_epochs` | uint ≥ 1 | `fl.local.epochs` |
/// | `learning_rate` | float > 0 | `fl.local.learning_rate` |
/// | `batch_size` | uint ≥ 1 | `fl.local.batch_size` |
/// | `drop_percent` | float in [0, 100) | `fl.drop_percent` |
/// | `partition` | `"iid"` \| `{"shards_per_client": n}` \| `{"dirichlet_alpha": a}` | `fl.partition` |
/// | `miners` | uint ≥ 1 | `miners` |
/// | `mode` | `"full"` \| `"fl-only"` \| `"chain-only"` | `mode` |
/// | `strategy` | `"keep"` \| `"discard"` | `strategy` |
/// | `anchor` | `"mean"` \| `"median"` \| `{"trimmed_mean": r}` | `anchor` |
/// | `fair_aggregation` | bool | `fair_aggregation` |
/// | `reward_base` | float ≥ 0 | `reward_base` |
/// | `verify_signatures` | bool | `verify_signatures` |
/// | `rsa_modulus_bits` | uint | `rsa_modulus_bits` |
/// | `discard_cooldown_rounds` | uint | `discard_cooldown_rounds` |
/// | `quota` | uint (0 = synchronous, n ≥ 1 = flexible quota) | `sync` |
/// | `staleness` | `"discard"` \| `{"decay": d}` with d in (0, 1] | `staleness` |
/// | `straggler_slowdown` | float ≥ 1 | `profiles.straggler_slowdown` |
/// | `straggler_fraction` | float in [0, 1] | `profiles.straggler_fraction` |
/// | `churn_fraction` | float in [0, 1] | `profiles.churn_fraction` |
/// | `churn_online_s` | float > 0 | `profiles.churn_online_s` |
/// | `churn_offline_s` | float > 0 | `profiles.churn_offline_s` |
/// | `uplink` | `{"constant": s}` \| `{"uniform": [min, max]}` \| `{"normal": [mean, std]}` \| `{"exponential": mean}` | `profiles.uplink` |
/// | `drop_rate` | float in [0, 1] | `fault.uplink.drop_rate` |
/// | `partition_fault` | `"none"` \| `{"start_s": f, "duration_s": f, "boundary": n}` | `fault.partition` |
/// | `retry` | `"none"` \| `{"max_attempts": n, "timeout_s": f, "base_s": f, "factor": f, "jitter_s": f}` | `retry` |
/// | `reorg` | `"discard"` \| `"salvage"` | `reorg` |
/// | `attack` | `"off"` \| `{"min": a, "max": b}` | `attack` |
///
/// Any other key is a hard error naming the full JSON path. Range checks
/// beyond the table are enforced by [`BflConfig::validate`] once the cell
/// is fully resolved.
pub fn apply_settings(
    config: &mut BflConfig,
    value: &Value,
    path: &str,
) -> Result<(), ManifestError> {
    let mut walker = ObjWalker::new(value, path)?;

    if let Some(n) = take_usize(&mut walker, "clients")? {
        config.fl.clients = n;
    }
    if let Some(n) = take_usize(&mut walker, "rounds")? {
        config.fl.rounds = n;
    }
    if let Some(r) = take_f64(&mut walker, "participation_ratio")? {
        config.fl.participation_ratio = r;
    }
    if let Some(n) = take_usize(&mut walker, "local_epochs")? {
        config.fl.local.epochs = n;
    }
    if let Some(lr) = take_f64(&mut walker, "learning_rate")? {
        config.fl.local.learning_rate = lr;
    }
    if let Some(n) = take_usize(&mut walker, "batch_size")? {
        config.fl.local.batch_size = n;
    }
    if let Some(p) = take_f64(&mut walker, "drop_percent")? {
        config.fl.drop_percent = p;
    }
    if let Some(value) = walker.take("partition") {
        let key_path = walker.key_path("partition");
        config.fl.partition = parse_partition_kind(value, &key_path)?;
    }
    if let Some(n) = take_usize(&mut walker, "miners")? {
        config.miners = n;
    }
    if let Some(mode) = take_string(&mut walker, "mode")? {
        config.mode = match mode.as_str() {
            "full" => FlexibilityMode::FullBfl,
            "fl-only" => FlexibilityMode::FlOnly,
            "chain-only" => FlexibilityMode::ChainOnly,
            other => {
                return Err(ManifestError::new(
                    walker.key_path("mode"),
                    format!("expected full | fl-only | chain-only, got `{other}`"),
                ));
            }
        };
    }
    if let Some(strategy) = take_string(&mut walker, "strategy")? {
        config.strategy = match strategy.as_str() {
            "keep" => LowContributionStrategy::Keep,
            "discard" => LowContributionStrategy::Discard,
            other => {
                return Err(ManifestError::new(
                    walker.key_path("strategy"),
                    format!("expected keep | discard, got `{other}`"),
                ));
            }
        };
    }
    if let Some(value) = walker.take("anchor") {
        let key_path = walker.key_path("anchor");
        config.anchor = parse_anchor(value, &key_path)?;
    }
    if let Some(fair) = take_bool(&mut walker, "fair_aggregation")? {
        config.fair_aggregation = fair;
    }
    if let Some(base) = take_f64(&mut walker, "reward_base")? {
        require(base >= 0.0, walker.key_path("reward_base"), "must be >= 0")?;
        config.reward_base = base;
    }
    if let Some(verify) = take_bool(&mut walker, "verify_signatures")? {
        config.verify_signatures = verify;
    }
    if let Some(bits) = take_usize(&mut walker, "rsa_modulus_bits")? {
        config.rsa_modulus_bits = bits;
    }
    if let Some(rounds) = take_usize(&mut walker, "discard_cooldown_rounds")? {
        config.discard_cooldown_rounds = rounds;
    }
    if let Some(quota) = take_usize(&mut walker, "quota")? {
        config.sync = if quota == 0 {
            SyncMode::Synchronous
        } else {
            SyncMode::FlexibleQuota { quota }
        };
    }
    if let Some(value) = walker.take("staleness") {
        let key_path = walker.key_path("staleness");
        config.staleness = parse_staleness(value, &key_path)?;
    }
    if let Some(s) = take_f64(&mut walker, "straggler_slowdown")? {
        config.profiles.straggler_slowdown = s;
    }
    if let Some(f) = take_f64(&mut walker, "straggler_fraction")? {
        config.profiles.straggler_fraction = f;
    }
    if let Some(f) = take_f64(&mut walker, "churn_fraction")? {
        config.profiles.churn_fraction = f;
    }
    if let Some(s) = take_f64(&mut walker, "churn_online_s")? {
        config.profiles.churn_online_s = s;
    }
    if let Some(s) = take_f64(&mut walker, "churn_offline_s")? {
        config.profiles.churn_offline_s = s;
    }
    if let Some(value) = walker.take("uplink") {
        let key_path = walker.key_path("uplink");
        config.profiles.uplink = parse_uplink(value, &key_path)?;
    }
    if let Some(rate) = take_f64(&mut walker, "drop_rate")? {
        config.fault.uplink.drop_rate = rate;
    }
    if let Some(value) = walker.take("partition_fault") {
        let key_path = walker.key_path("partition_fault");
        config.fault.partition = parse_partition_fault(value, &key_path)?;
    }
    if let Some(value) = walker.take("retry") {
        let key_path = walker.key_path("retry");
        config.retry = parse_retry(value, &key_path)?;
    }
    if let Some(reorg) = take_string(&mut walker, "reorg")? {
        config.reorg = match reorg.as_str() {
            "discard" => ReorgPolicy::Discard,
            "salvage" => ReorgPolicy::Salvage,
            other => {
                return Err(ManifestError::new(
                    walker.key_path("reorg"),
                    format!("expected discard | salvage, got `{other}`"),
                ));
            }
        };
    }
    if let Some(value) = walker.take("attack") {
        let key_path = walker.key_path("attack");
        config.attack = parse_attack(value, &key_path)?;
    }

    walker.finish()
}

fn parse_partition_kind(value: &Value, path: &str) -> Result<PartitionKind, ManifestError> {
    match value {
        Value::Str(s) if s == "iid" => Ok(PartitionKind::Iid),
        Value::Str(other) => Err(ManifestError::new(
            path,
            format!("expected `iid` or an object, got `{other}`"),
        )),
        Value::Obj(_) => {
            let mut walker = ObjWalker::new(value, path)?;
            let kind = if let Some(n) = take_usize(&mut walker, "shards_per_client")? {
                PartitionKind::ShardNonIid {
                    shards_per_client: n,
                }
            } else if let Some(alpha) = take_f64(&mut walker, "dirichlet_alpha")? {
                PartitionKind::Dirichlet { alpha }
            } else {
                return Err(ManifestError::new(
                    path,
                    "expected one of shards_per_client | dirichlet_alpha",
                ));
            };
            walker.finish()?;
            Ok(kind)
        }
        other => Err(ManifestError::new(
            path,
            format!("expected a partition kind, found {}", other.kind()),
        )),
    }
}

fn parse_anchor(value: &Value, path: &str) -> Result<AggregationAnchor, ManifestError> {
    match value {
        Value::Str(s) if s == "mean" => Ok(AggregationAnchor::Mean),
        Value::Str(s) if s == "median" => Ok(AggregationAnchor::Median),
        Value::Str(other) => Err(ManifestError::new(
            path,
            format!("expected mean | median | {{\"trimmed_mean\": r}}, got `{other}`"),
        )),
        Value::Obj(_) => {
            let mut walker = ObjWalker::new(value, path)?;
            let ratio = take_f64(&mut walker, "trimmed_mean")?
                .ok_or_else(|| ManifestError::new(path, "expected a trimmed_mean ratio"))?;
            walker.finish()?;
            Ok(AggregationAnchor::TrimmedMean { trim_ratio: ratio })
        }
        other => Err(ManifestError::new(
            path,
            format!("expected an anchor, found {}", other.kind()),
        )),
    }
}

fn parse_staleness(value: &Value, path: &str) -> Result<StalenessPolicy, ManifestError> {
    match value {
        Value::Str(s) if s == "discard" => Ok(StalenessPolicy::Discard),
        Value::Str(other) => Err(ManifestError::new(
            path,
            format!("expected discard | {{\"decay\": d}}, got `{other}`"),
        )),
        Value::Obj(_) => {
            let mut walker = ObjWalker::new(value, path)?;
            let decay = take_f64(&mut walker, "decay")?
                .ok_or_else(|| ManifestError::new(path, "expected a decay factor"))?;
            walker.finish()?;
            Ok(StalenessPolicy::DecayedInclude { decay })
        }
        other => Err(ManifestError::new(
            path,
            format!("expected a staleness policy, found {}", other.kind()),
        )),
    }
}

fn parse_uplink(value: &Value, path: &str) -> Result<DelayDistribution, ManifestError> {
    let mut walker = ObjWalker::new(value, path)?;
    let distribution = if let Some(s) = take_f64(&mut walker, "constant")? {
        DelayDistribution::Constant(s)
    } else if let Some(value) = walker.take("uniform") {
        let pair_path = walker.key_path("uniform");
        let (min, max) = as_f64_pair(value, &pair_path)?;
        DelayDistribution::Uniform { min, max }
    } else if let Some(value) = walker.take("normal") {
        let pair_path = walker.key_path("normal");
        let (mean, std) = as_f64_pair(value, &pair_path)?;
        DelayDistribution::Normal { mean, std }
    } else if let Some(mean) = take_f64(&mut walker, "exponential")? {
        DelayDistribution::Exponential { mean }
    } else {
        return Err(ManifestError::new(
            path,
            "expected one of constant | uniform | normal | exponential",
        ));
    };
    walker.finish()?;
    Ok(distribution)
}

fn parse_partition_fault(value: &Value, path: &str) -> Result<Option<Partition>, ManifestError> {
    match value {
        Value::Str(s) if s == "none" => Ok(None),
        Value::Obj(_) => {
            let mut walker = ObjWalker::new(value, path)?;
            let start_s = take_f64(&mut walker, "start_s")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("start_s"), "required key is missing")
            })?;
            let duration_s = take_f64(&mut walker, "duration_s")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("duration_s"), "required key is missing")
            })?;
            let boundary = take_usize(&mut walker, "boundary")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("boundary"), "required key is missing")
            })?;
            walker.finish()?;
            Ok(Some(Partition {
                start_s,
                duration_s,
                boundary,
            }))
        }
        other => Err(ManifestError::new(
            path,
            format!(
                "expected `none` or a partition object, found {}",
                other.kind()
            ),
        )),
    }
}

fn parse_retry(value: &Value, path: &str) -> Result<RetryPolicy, ManifestError> {
    match value {
        Value::Str(s) if s == "none" => Ok(RetryPolicy::None),
        Value::Obj(_) => {
            let mut walker = ObjWalker::new(value, path)?;
            let max_attempts = take_u64(&mut walker, "max_attempts")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("max_attempts"), "required key is missing")
            })?;
            let max_attempts = u32::try_from(max_attempts).map_err(|_| {
                ManifestError::new(walker.key_path("max_attempts"), "does not fit in u32")
            })?;
            let timeout_s = take_f64(&mut walker, "timeout_s")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("timeout_s"), "required key is missing")
            })?;
            let base_s = take_f64(&mut walker, "base_s")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("base_s"), "required key is missing")
            })?;
            let factor = take_f64(&mut walker, "factor")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("factor"), "required key is missing")
            })?;
            let jitter_s = take_f64(&mut walker, "jitter_s")?.unwrap_or(0.0);
            walker.finish()?;
            Ok(RetryPolicy::Backoff {
                max_attempts,
                timeout_s,
                base_s,
                factor,
                jitter_s,
            })
        }
        other => Err(ManifestError::new(
            path,
            format!(
                "expected `none` or a backoff object, found {}",
                other.kind()
            ),
        )),
    }
}

fn parse_attack(value: &Value, path: &str) -> Result<AttackConfig, ManifestError> {
    match value {
        Value::Str(s) if s == "off" => Ok(AttackConfig {
            enabled: false,
            ..AttackConfig::default()
        }),
        Value::Obj(_) => {
            let mut walker = ObjWalker::new(value, path)?;
            let min = take_usize(&mut walker, "min")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("min"), "required key is missing")
            })?;
            let max = take_usize(&mut walker, "max")?.ok_or_else(|| {
                ManifestError::new(walker.key_path("max"), "required key is missing")
            })?;
            walker.finish()?;
            Ok(AttackConfig {
                enabled: true,
                min_attackers: min,
                max_attackers: max,
                ..AttackConfig::default()
            })
        }
        other => Err(ManifestError::new(
            path,
            format!(
                "expected `off` or {{\"min\": a, \"max\": b}}, found {}",
                other.kind()
            ),
        )),
    }
}

// ---------------------------------------------------------------------------
// The strict object walker and typed extractors.
// ---------------------------------------------------------------------------

/// Walks a JSON object, tracking consumed keys; [`finish`](Self::finish)
/// rejects any leftover with its full path. This is how the decoder gets
/// `deny_unknown_fields` semantics out of the schema-less shim.
struct ObjWalker<'a> {
    path: String,
    entries: Vec<(&'a str, &'a Value, bool)>,
}

impl<'a> ObjWalker<'a> {
    fn new(value: &'a Value, path: &str) -> Result<Self, ManifestError> {
        match value {
            Value::Obj(fields) => Ok(ObjWalker {
                path: path.to_string(),
                entries: fields.iter().map(|(k, v)| (k.as_str(), v, false)).collect(),
            }),
            other => Err(ManifestError::new(
                path,
                format!("expected an object, found {}", other.kind()),
            )),
        }
    }

    /// The path of `key` under this object.
    fn key_path(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    /// Consumes `key`, returning its value when present.
    fn take(&mut self, key: &str) -> Option<&'a Value> {
        self.entries
            .iter_mut()
            .find(|(k, _, _)| *k == key)
            .map(|(_, value, used)| {
                *used = true;
                *value
            })
    }

    /// Errors on the first key no extractor consumed.
    fn finish(self) -> Result<(), ManifestError> {
        match self.entries.iter().find(|(_, _, used)| !used) {
            Some((key, _, _)) => Err(ManifestError::new(
                self.key_path(key),
                "unknown key".to_string(),
            )),
            None => Ok(()),
        }
    }
}

fn require(ok: bool, path: impl Into<String>, message: &str) -> Result<(), ManifestError> {
    if ok {
        Ok(())
    } else {
        Err(ManifestError::new(path, message))
    }
}

fn as_u64(value: &Value, path: &str) -> Result<u64, ManifestError> {
    match value {
        Value::UInt(v) => Ok(*v),
        other => Err(ManifestError::new(
            path,
            format!("expected an unsigned integer, found {}", other.kind()),
        )),
    }
}

fn as_f64(value: &Value, path: &str) -> Result<f64, ManifestError> {
    let v = match value {
        Value::UInt(v) => *v as f64,
        Value::Int(v) => *v as f64,
        Value::Float(v) => *v,
        other => {
            return Err(ManifestError::new(
                path,
                format!("expected a number, found {}", other.kind()),
            ));
        }
    };
    require(v.is_finite(), path, "must be finite")?;
    Ok(v)
}

fn as_bool(value: &Value, path: &str) -> Result<bool, ManifestError> {
    match value {
        Value::Bool(b) => Ok(*b),
        other => Err(ManifestError::new(
            path,
            format!("expected a bool, found {}", other.kind()),
        )),
    }
}

fn as_str<'a>(value: &'a Value, path: &str) -> Result<&'a str, ManifestError> {
    match value {
        Value::Str(s) => Ok(s),
        other => Err(ManifestError::new(
            path,
            format!("expected a string, found {}", other.kind()),
        )),
    }
}

fn as_array<'a>(value: &'a Value, path: &str) -> Result<&'a [Value], ManifestError> {
    match value {
        Value::Arr(items) => Ok(items),
        other => Err(ManifestError::new(
            path,
            format!("expected an array, found {}", other.kind()),
        )),
    }
}

fn as_f64_pair(value: &Value, path: &str) -> Result<(f64, f64), ManifestError> {
    let items = as_array(value, path)?;
    if items.len() != 2 {
        return Err(ManifestError::new(
            path,
            format!("expected a two-element array, got {} elements", items.len()),
        ));
    }
    Ok((
        as_f64(&items[0], &format!("{path}[0]"))?,
        as_f64(&items[1], &format!("{path}[1]"))?,
    ))
}

fn take_u64(walker: &mut ObjWalker<'_>, key: &str) -> Result<Option<u64>, ManifestError> {
    match walker.take(key) {
        Some(value) => Ok(Some(as_u64(value, &walker.key_path(key))?)),
        None => Ok(None),
    }
}

fn take_usize(walker: &mut ObjWalker<'_>, key: &str) -> Result<Option<usize>, ManifestError> {
    match take_u64(walker, key)? {
        Some(v) => {
            let v = usize::try_from(v)
                .map_err(|_| ManifestError::new(walker.key_path(key), "does not fit in usize"))?;
            Ok(Some(v))
        }
        None => Ok(None),
    }
}

fn take_f64(walker: &mut ObjWalker<'_>, key: &str) -> Result<Option<f64>, ManifestError> {
    match walker.take(key) {
        Some(value) => Ok(Some(as_f64(value, &walker.key_path(key))?)),
        None => Ok(None),
    }
}

fn take_bool(walker: &mut ObjWalker<'_>, key: &str) -> Result<Option<bool>, ManifestError> {
    match walker.take(key) {
        Some(value) => Ok(Some(as_bool(value, &walker.key_path(key))?)),
        None => Ok(None),
    }
}

fn take_string(walker: &mut ObjWalker<'_>, key: &str) -> Result<Option<String>, ManifestError> {
    match walker.take(key) {
        Some(value) => Ok(Some(as_str(value, &walker.key_path(key))?.to_string())),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(extra: &str) -> String {
        format!(r#"{{"name": "t", "seeds": [1, 2]{extra}}}"#)
    }

    #[test]
    fn minimal_manifest_parses_to_one_base_cell() {
        let manifest = Manifest::from_json(&minimal("")).unwrap();
        assert_eq!(manifest.name, "t");
        assert_eq!(manifest.cells.len(), 1);
        assert_eq!(manifest.cells[0].label, "base");
        assert_eq!(manifest.cells[0].config, BflConfig::default());
        assert_eq!(manifest.seeds, vec![1, 2]);
        assert_eq!(manifest.total_runs(), 2);
        assert_eq!(manifest.dataset, DatasetSpec::default());
    }

    #[test]
    fn unknown_root_key_is_rejected_with_its_path() {
        let err = Manifest::from_json(&minimal(r#", "sedes": [3]"#)).unwrap_err();
        assert_eq!(err.path, "sedes");
        assert!(err.message.contains("unknown key"), "{err}");
    }

    #[test]
    fn unknown_setting_key_carries_the_full_path() {
        let err = Manifest::from_json(&minimal(r#", "base": {"client": 5}"#)).unwrap_err();
        assert_eq!(err.path, "base.client");
    }

    #[test]
    fn unknown_key_inside_a_grid_cell_names_the_cell() {
        let err = Manifest::from_json(&minimal(
            r#", "grid": [{"axis": "a", "cells": [{"label": "x", "set": {"qotta": 3}}]}]"#,
        ))
        .unwrap_err();
        assert_eq!(err.path, "grid[0].cells[0].set.qotta");
    }

    #[test]
    fn out_of_range_values_are_hard_errors() {
        // A negative participation ratio passes the decoder's type check
        // but fails the scenario validation, pinned to the cell.
        let err = Manifest::from_json(&minimal(r#", "base": {"participation_ratio": -0.5}"#))
            .unwrap_err();
        assert!(err.message.contains("invalid scenario"), "{err}");

        let err = Manifest::from_json(&minimal(r#", "base": {"reward_base": -1.0}"#)).unwrap_err();
        assert_eq!(err.path, "base.reward_base");

        let err = Manifest::from_json(&minimal(r#", "base": {"clients": -3}"#)).unwrap_err();
        assert_eq!(err.path, "base.clients");
        assert!(err.message.contains("unsigned"), "{err}");
    }

    #[test]
    fn grid_axes_cross_product_in_declaration_order() {
        let manifest = Manifest::from_json(&minimal(
            r#", "grid": [
                {"axis": "strategy", "cells": [
                    {"label": "keep", "set": {"strategy": "keep"}},
                    {"label": "discard", "set": {"strategy": "discard"}}
                ]},
                {"axis": "fair", "cells": [
                    {"label": "fair", "set": {"fair_aggregation": true}},
                    {"label": "simple", "set": {"fair_aggregation": false}}
                ]}
            ]"#,
        ))
        .unwrap();
        let labels: Vec<&str> = manifest.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["keep/fair", "keep/simple", "discard/fair", "discard/simple"]
        );
        assert_eq!(
            manifest.cells[3].config.strategy,
            LowContributionStrategy::Discard
        );
        assert!(!manifest.cells[3].config.fair_aggregation);
    }

    #[test]
    fn seed_ranges_expand_half_open() {
        let manifest = Manifest::from_json(r#"{"name": "t", "seeds": {"range": [3, 7]}}"#).unwrap();
        assert_eq!(manifest.seeds, vec![3, 4, 5, 6]);
        let err = Manifest::from_json(r#"{"name": "t", "seeds": {"range": [7, 3]}}"#).unwrap_err();
        assert!(err.message.contains("lo < hi"), "{err}");
    }

    #[test]
    fn duplicate_seeds_are_rejected() {
        let err = Manifest::from_json(r#"{"name": "t", "seeds": [4, 4]}"#).unwrap_err();
        assert!(err.message.contains("distinct"), "{err}");
    }

    #[test]
    fn missing_required_keys_are_reported() {
        assert_eq!(
            Manifest::from_json(r#"{"seeds": [1]}"#).unwrap_err().path,
            "name"
        );
        assert_eq!(
            Manifest::from_json(r#"{"name": "t"}"#).unwrap_err().path,
            "seeds"
        );
    }

    #[test]
    fn event_engine_settings_decode() {
        let manifest = Manifest::from_json(&minimal(
            r#", "base": {
                "clients": 10, "rounds": 2, "participation_ratio": 1.0,
                "quota": 7, "staleness": {"decay": 0.5},
                "straggler_slowdown": 8.0, "straggler_fraction": 0.3,
                "uplink": {"normal": [0.08, 0.03]},
                "drop_rate": 0.15,
                "partition_fault": {"start_s": 1.0, "duration_s": 2.0, "boundary": 2},
                "retry": {"max_attempts": 3, "timeout_s": 0.5, "base_s": 0.5, "factor": 2.0, "jitter_s": 0.1},
                "reorg": "salvage", "miners": 3, "verify_signatures": false
            }"#,
        ))
        .unwrap();
        let config = &manifest.cells[0].config;
        assert_eq!(config.sync, SyncMode::FlexibleQuota { quota: 7 });
        assert_eq!(
            config.staleness,
            StalenessPolicy::DecayedInclude { decay: 0.5 }
        );
        assert_eq!(config.fault.uplink.drop_rate, 0.15);
        assert!(config.fault.partition.is_some());
        assert!(matches!(
            config.retry,
            RetryPolicy::Backoff {
                max_attempts: 3,
                ..
            }
        ));
        assert_eq!(config.reorg, ReorgPolicy::Salvage);
        // quota 0 switches back to the synchronous engine.
        let sync = Manifest::from_json(&minimal(r#", "base": {"quota": 0}"#)).unwrap();
        assert_eq!(sync.cells[0].config.sync, SyncMode::Synchronous);
    }

    #[test]
    fn attack_settings_decode() {
        let manifest = Manifest::from_json(&minimal(
            r#", "base": {"clients": 10, "participation_ratio": 1.0, "attack": {"min": 1, "max": 3}}"#,
        ))
        .unwrap();
        let attack = manifest.cells[0].config.attack;
        assert!(attack.enabled);
        assert_eq!((attack.min_attackers, attack.max_attackers), (1, 3));
        let off = Manifest::from_json(&minimal(r#", "base": {"attack": "off"}"#)).unwrap();
        assert!(!off.cells[0].config.attack.enabled);
    }

    #[test]
    fn grid_patch_invalid_only_in_combination_is_caught() {
        // quota 8 is fine against the default 100 clients but the second
        // axis shrinks the population: the *combination* must fail
        // validation (quota is capped at runtime, but an attack larger
        // than the population is structurally invalid).
        let err = Manifest::from_json(&minimal(
            r#", "grid": [
                {"axis": "attack", "cells": [{"label": "a", "set": {"attack": {"min": 1, "max": 8}}}]},
                {"axis": "pop", "cells": [
                    {"label": "big", "set": {"clients": 20}},
                    {"label": "small", "set": {"clients": 4}}
                ]}
            ]"#,
        ))
        .unwrap_err();
        assert!(err.message.contains("a/small"), "{err}");
    }
}
