//! Cross-seed descriptive statistics for fleet summaries.
//!
//! Every derived quantity is a pure function of the input sample in a
//! fixed order, so a summary recomputed from merged shard outputs is
//! bit-identical to the unsharded one: the vendored JSON writer prints
//! `f64` with shortest round-trip formatting, making byte equality of
//! `summary.json` exactly float bit equality of these statistics.

use serde::{Deserialize, Serialize};

/// Descriptive statistics of one KPI across the seed fleet of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0.0 when n ≤ 1).
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// 5th percentile (linear interpolation).
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile (linear interpolation).
    pub p95: f64,
}

impl Stats {
    /// Computes the statistics of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or a NaN observation — both indicate a
    /// harness bug, not a user error.
    pub fn from_sample(values: &[f64]) -> Stats {
        assert!(!values.is_empty(), "stats of an empty sample");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "stats of a NaN-bearing sample"
        );
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let stddev = if values.len() <= 1 {
            0.0
        } else {
            let ss: f64 = values.iter().map(|v| (v - mean) * (v - mean)).sum();
            (ss / (n - 1.0)).sqrt()
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        Stats {
            mean,
            stddev,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p5: percentile(&sorted, 0.05),
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        }
    }
}

/// Linear-interpolation percentile of an ascending-sorted sample
/// (the "R-7" definition spreadsheets use).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = q * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_observation_collapses_everything() {
        let s = Stats::from_sample(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!((s.min, s.max), (3.5, 3.5));
        assert_eq!((s.p5, s.p50, s.p95), (3.5, 3.5, 3.5));
    }

    #[test]
    fn known_sample_matches_hand_computation() {
        let s = Stats::from_sample(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.stddev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p50, 4.5);
        // p95: rank 0.95 * 7 = 6.65 → between 7.0 and 9.0.
        assert!((s.p95 - (7.0 + 0.65 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn order_of_input_does_not_change_sorted_statistics() {
        let a = Stats::from_sample(&[1.0, 2.0, 3.0, 4.0]);
        let b = Stats::from_sample(&[4.0, 2.0, 1.0, 3.0]);
        assert_eq!(
            (a.min, a.max, a.p5, a.p50, a.p95),
            (b.min, b.max, b.p5, b.p50, b.p95)
        );
    }
}
