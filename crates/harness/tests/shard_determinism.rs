//! Property: for a random manifest, the union of `--shard i/N` outputs
//! merges to a `summary.json` byte-identical to the unsharded run's —
//! at every thread count. This is the harness's core guarantee: fleets
//! can fan across processes and cores with zero coordination and still
//! produce one canonical artifact.

use bfl_harness::{merge_shards, run_fleet, write_outputs, Manifest, Shard};
use bfl_ml::par;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// A scratch directory that cleans up after itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "bfl_harness_shard_prop_{}_{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Builds a small manifest varied by the proptest inputs: one axis over
/// the low-contribution strategy, optionally a second axis toggling fair
/// aggregation, the event-driven engine behind `quota`, two seeds.
fn build_manifest(rounds: usize, quota: usize, two_axes: bool, seed0: u64) -> Manifest {
    let fair_axis = if two_axes {
        r#",
        {"axis": "fair", "cells": [
            {"label": "fair", "set": {"fair_aggregation": true}},
            {"label": "simple", "set": {"fair_aggregation": false}}
        ]}"#
    } else {
        ""
    };
    let text = format!(
        r#"{{
        "name": "prop",
        "dataset": {{"train_samples": 80, "test_samples": 30, "data_seed": 7}},
        "base": {{
            "clients": 4, "rounds": {rounds}, "participation_ratio": 1.0,
            "local_epochs": 1, "batch_size": 10, "verify_signatures": false,
            "quota": {quota}, "attack": {{"min": 1, "max": 1}}
        }},
        "grid": [
            {{"axis": "strategy", "cells": [
                {{"label": "keep", "set": {{"strategy": "keep"}}}},
                {{"label": "discard", "set": {{"strategy": "discard"}}}}
            ]}}{fair_axis}
        ],
        "seeds": [{seed0}, {}]
    }}"#,
        seed0 + 1
    );
    Manifest::from_json(&text).expect("generated manifest is valid")
}

fn read(path: PathBuf) -> String {
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn sharded_runs_merge_to_the_unsharded_summary(
        rounds in 1..3usize,
        quota in 0..4usize,
        two_axes in proptest::prelude::any::<bool>(),
        seed0 in 0..50u64,
        shards in 2..4usize,
    ) {
        let manifest = build_manifest(rounds, quota, two_axes, seed0);
        let tag = format!("{rounds}_{quota}_{two_axes}_{seed0}_{shards}");
        let tmp = TempDir::new(&tag);

        // The reference: one process, one thread.
        let full_dir = tmp.path().join("full");
        let records = par::with_thread_limit(1, || run_fleet(&manifest, Shard::default(), 0))
            .expect("unsharded fleet runs");
        write_outputs(&manifest, Shard::default(), &records, &full_dir)
            .expect("unsharded outputs write");
        let reference = read(full_dir.join("summary.json"));

        // N shard processes, at 1 and 2 worker threads each: every
        // combination must merge back to the reference bytes.
        for threads in [1usize, 2] {
            let mut shard_dirs = Vec::new();
            for index in 0..shards {
                let shard = Shard { index, count: shards };
                let dir = tmp.path().join(format!("t{threads}_shard{index}"));
                let records = par::with_thread_limit(threads, || run_fleet(&manifest, shard, 0))
                    .expect("shard runs");
                write_outputs(&manifest, shard, &records, &dir).expect("shard outputs write");
                prop_assert!(
                    !dir.join("summary.json").exists(),
                    "a shard must not write a summary"
                );
                shard_dirs.push(dir);
            }
            let merged_dir = tmp.path().join(format!("t{threads}_merged"));
            let refs: Vec<&Path> = shard_dirs.iter().map(PathBuf::as_path).collect();
            merge_shards(&refs, &merged_dir).expect("shards merge");
            let merged = read(merged_dir.join("summary.json"));
            prop_assert_eq!(
                &merged,
                &reference,
                "merged summary diverged at {} threads x {} shards",
                threads,
                shards
            );
        }
    }
}

#[test]
fn merge_rejects_an_incomplete_shard_set() {
    let manifest = build_manifest(1, 0, false, 0);
    let tmp = TempDir::new("incomplete");
    let shard = Shard { index: 0, count: 2 };
    let dir = tmp.path().join("shard0");
    let records = par::with_thread_limit(1, || run_fleet(&manifest, shard, 0)).expect("shard runs");
    write_outputs(&manifest, shard, &records, &dir).expect("shard outputs write");
    let err = merge_shards(&[dir.as_path()], &tmp.path().join("merged")).unwrap_err();
    assert!(err.to_string().contains("missing"), "{err}");
}
