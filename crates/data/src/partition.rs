//! Federated data partitioning.
//!
//! "By default, we assign data to clients following the non-IID dynamics"
//! (paper Section 5.1): each client sees a label-skewed shard of the
//! training data. Three partitioners are provided:
//!
//! * [`iid_partition`] — uniform random assignment, each client gets an
//!   (almost) equal share of every class.
//! * [`shard_non_iid_partition`] — the McMahan-style split used as the
//!   paper's non-IID default: samples are sorted by label, cut into
//!   `shards_per_client * n` contiguous shards, and each client receives
//!   `shards_per_client` shards, so most clients only hold one or two
//!   classes.
//! * [`dirichlet_partition`] — per-class Dirichlet(α) allocation for
//!   smoothly tunable skew (small α ⇒ extreme skew), used by ablations.
//!
//! All partitioners assign every sample to exactly one client and never
//! return an empty client shard (they rebalance if necessary), which the
//! property tests assert.

use rand::seq::SliceRandom;
use rand::Rng;

/// A partition: `partition[c]` lists the dataset row indices owned by
/// client `c`.
pub type Partition = Vec<Vec<usize>>;

/// Verifies the structural invariants of a partition over `total` samples:
/// every index in `0..total` appears exactly once and no client is empty.
pub fn partition_is_valid(partition: &Partition, total: usize) -> bool {
    let mut seen = vec![false; total];
    for shard in partition {
        if shard.is_empty() {
            return false;
        }
        for &idx in shard {
            if idx >= total || seen[idx] {
                return false;
            }
            seen[idx] = true;
        }
    }
    seen.into_iter().all(|s| s)
}

/// Moves samples from the largest shards onto empty ones so that every
/// client ends up with at least one sample.
fn fix_empty_shards(partition: &mut Partition) {
    loop {
        let empty = match partition.iter().position(|s| s.is_empty()) {
            Some(i) => i,
            None => return,
        };
        let donor = partition
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.len())
            .map(|(i, _)| i)
            .expect("non-empty partition list");
        if partition[donor].len() <= 1 {
            // Nothing left to donate; give up (happens only when there are
            // fewer samples than clients, which callers reject anyway).
            return;
        }
        let moved = partition[donor].pop().expect("donor has samples");
        partition[empty].push(moved);
    }
}

/// Uniform random (IID) partition of `total` samples over `clients` clients.
pub fn iid_partition<R: Rng + ?Sized>(total: usize, clients: usize, rng: &mut R) -> Partition {
    assert!(clients > 0, "need at least one client");
    assert!(total >= clients, "need at least one sample per client");
    let mut indices: Vec<usize> = (0..total).collect();
    indices.shuffle(rng);
    let mut partition: Partition = vec![Vec::new(); clients];
    for (i, idx) in indices.into_iter().enumerate() {
        partition[i % clients].push(idx);
    }
    partition
}

/// Label-sorted shard partition (non-IID). Each client receives
/// `shards_per_client` contiguous shards of the label-sorted sample list.
pub fn shard_non_iid_partition<R: Rng + ?Sized>(
    labels: &[usize],
    clients: usize,
    shards_per_client: usize,
    rng: &mut R,
) -> Partition {
    assert!(clients > 0, "need at least one client");
    assert!(shards_per_client > 0, "need at least one shard per client");
    assert!(
        labels.len() >= clients,
        "need at least one sample per client"
    );

    // Sort sample indices by label (stable, so generation order breaks ties).
    let mut by_label: Vec<usize> = (0..labels.len()).collect();
    by_label.sort_by_key(|&i| labels[i]);

    let total_shards = clients * shards_per_client;
    let shard_size = labels.len() / total_shards;

    // Build the shard list. When shard_size is zero (tiny datasets) fall
    // back to an IID split, which is the only sensible degenerate answer.
    if shard_size == 0 {
        return iid_partition(labels.len(), clients, rng);
    }

    let mut shard_ids: Vec<usize> = (0..total_shards).collect();
    shard_ids.shuffle(rng);

    let mut partition: Partition = vec![Vec::new(); clients];
    for (slot, shard_id) in shard_ids.into_iter().enumerate() {
        let client = slot % clients;
        let start = shard_id * shard_size;
        let end = if shard_id == total_shards - 1 {
            labels.len()
        } else {
            (shard_id + 1) * shard_size
        };
        partition[client].extend_from_slice(&by_label[start..end]);
    }
    fix_empty_shards(&mut partition);
    partition
}

/// Dirichlet(α) label-skew partition: for every class, the class's samples
/// are distributed over clients according to a Dirichlet draw. Smaller `α`
/// produces more extreme skew; `α → ∞` approaches IID.
pub fn dirichlet_partition<R: Rng + ?Sized>(
    labels: &[usize],
    clients: usize,
    alpha: f64,
    rng: &mut R,
) -> Partition {
    assert!(clients > 0, "need at least one client");
    assert!(alpha > 0.0, "Dirichlet concentration must be positive");
    assert!(
        labels.len() >= clients,
        "need at least one sample per client"
    );

    let classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut partition: Partition = vec![Vec::new(); clients];

    for class in 0..classes {
        let mut class_indices: Vec<usize> =
            (0..labels.len()).filter(|&i| labels[i] == class).collect();
        class_indices.shuffle(rng);
        if class_indices.is_empty() {
            continue;
        }
        // Sample Dirichlet(α) via normalized Gamma(α, 1) draws
        // (Marsaglia-Tsang would be overkill; for α possibly < 1 use the
        // Johnk-style transformation through Gamma(α+1)).
        let weights: Vec<f64> = (0..clients).map(|_| sample_gamma(alpha, rng)).collect();
        let total: f64 = weights.iter().sum::<f64>().max(1e-300);
        // Convert weights into cumulative sample counts.
        let mut counts: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * class_indices.len() as f64).floor() as usize)
            .collect();
        // Distribute the remainder to the largest-weight clients.
        let assigned: usize = counts.iter().sum();
        let mut order: Vec<usize> = (0..clients).collect();
        order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).unwrap());
        for i in 0..(class_indices.len() - assigned) {
            counts[order[i % clients]] += 1;
        }
        let mut cursor = 0;
        for (client, &count) in counts.iter().enumerate() {
            partition[client].extend_from_slice(&class_indices[cursor..cursor + count]);
            cursor += count;
        }
    }
    fix_empty_shards(&mut partition);
    partition
}

/// Gamma(shape, 1) sampler (Marsaglia & Tsang for shape >= 1, boosted for
/// shape < 1 via the standard `U^{1/shape}` trick).
fn sample_gamma<R: Rng + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        return sample_gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box-Muller.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    #[test]
    fn iid_partition_is_valid_and_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let partition = iid_partition(1000, 10, &mut rng);
        assert!(partition_is_valid(&partition, 1000));
        for shard in &partition {
            assert_eq!(shard.len(), 100);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample per client")]
    fn iid_partition_rejects_too_few_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = iid_partition(3, 10, &mut rng);
    }

    #[test]
    fn shard_partition_is_valid_and_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let labels = labels(1000, 10);
        let partition = shard_non_iid_partition(&labels, 10, 2, &mut rng);
        assert!(partition_is_valid(&partition, 1000));

        // Skew check: most clients should hold at most 3 distinct classes
        // (each client gets 2 shards, a shard usually spans 1-2 classes).
        let few_classes = partition
            .iter()
            .filter(|shard| {
                let mut classes: Vec<usize> = shard.iter().map(|&i| labels[i]).collect();
                classes.sort_unstable();
                classes.dedup();
                classes.len() <= 3
            })
            .count();
        assert!(
            few_classes >= 8,
            "only {few_classes} of 10 clients are label-skewed"
        );
    }

    #[test]
    fn shard_partition_tiny_dataset_falls_back_to_iid() {
        let mut rng = StdRng::seed_from_u64(3);
        let labels = labels(12, 10);
        let partition = shard_non_iid_partition(&labels, 10, 5, &mut rng);
        assert!(partition_is_valid(&partition, 12));
    }

    #[test]
    fn dirichlet_partition_is_valid_and_alpha_controls_skew() {
        let mut rng = StdRng::seed_from_u64(4);
        let labels = labels(2000, 10);

        let skewed = dirichlet_partition(&labels, 10, 0.1, &mut rng);
        let smooth = dirichlet_partition(&labels, 10, 100.0, &mut rng);
        assert!(partition_is_valid(&skewed, 2000));
        assert!(partition_is_valid(&smooth, 2000));

        // Measure skew as the average fraction of a client's samples in its
        // dominant class; small alpha should be much more concentrated.
        let dominance = |p: &Partition| -> f64 {
            p.iter()
                .map(|shard| {
                    let mut counts = [0usize; 10];
                    for &i in shard {
                        counts[labels[i]] += 1;
                    }
                    *counts.iter().max().unwrap() as f64 / shard.len() as f64
                })
                .sum::<f64>()
                / p.len() as f64
        };
        let d_skewed = dominance(&skewed);
        let d_smooth = dominance(&smooth);
        assert!(
            d_skewed > d_smooth + 0.15,
            "alpha=0.1 dominance {d_skewed} should exceed alpha=100 dominance {d_smooth}"
        );
    }

    #[test]
    fn partition_validity_detects_problems() {
        // Missing sample.
        assert!(!partition_is_valid(&vec![vec![0], vec![1]], 3));
        // Duplicate sample.
        assert!(!partition_is_valid(&vec![vec![0, 1], vec![1, 2]], 3));
        // Out-of-range index.
        assert!(!partition_is_valid(&vec![vec![0, 5]], 3));
        // Empty client.
        assert!(!partition_is_valid(&vec![vec![0, 1, 2], vec![]], 3));
        // Correct.
        assert!(partition_is_valid(&vec![vec![2, 0], vec![1]], 3));
    }

    #[test]
    fn gamma_sampler_has_reasonable_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        for &shape in &[0.5f64, 1.0, 2.0, 5.0] {
            let n = 4000;
            let mean: f64 = (0..n).map(|_| sample_gamma(shape, &mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < shape * 0.2 + 0.1,
                "Gamma({shape}) sample mean {mean}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn iid_partitions_are_always_valid(total in 10usize..400, clients in 1usize..10, seed in any::<u64>()) {
            prop_assume!(total >= clients);
            let mut rng = StdRng::seed_from_u64(seed);
            let p = iid_partition(total, clients, &mut rng);
            prop_assert!(partition_is_valid(&p, total));
            prop_assert_eq!(p.len(), clients);
        }

        #[test]
        fn shard_partitions_are_always_valid(total in 20usize..400, clients in 1usize..10, shards in 1usize..5, seed in any::<u64>()) {
            prop_assume!(total >= clients);
            let labels: Vec<usize> = (0..total).map(|i| i % 10).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let p = shard_non_iid_partition(&labels, clients, shards, &mut rng);
            prop_assert!(partition_is_valid(&p, total));
        }

        #[test]
        fn dirichlet_partitions_are_always_valid(total in 20usize..300, clients in 1usize..8, alpha in 0.05f64..10.0, seed in any::<u64>()) {
            prop_assume!(total >= clients * 2);
            let labels: Vec<usize> = (0..total).map(|i| i % 5).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let p = dirichlet_partition(&labels, clients, alpha, &mut rng);
            prop_assert!(partition_is_valid(&p, total));
        }
    }
}
