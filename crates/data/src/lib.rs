//! # bfl-data
//!
//! Dataset substrate for the FAIR-BFL reproduction.
//!
//! The paper evaluates on MNIST. MNIST itself is not redistributable inside
//! this offline build, so [`synth_mnist`] procedurally generates an
//! MNIST-shaped surrogate: 28x28 grayscale images of ten digit-like glyph
//! classes, rendered from stroke prototypes with per-sample translation,
//! thickness, intensity and pixel-noise jitter. The evaluation only relies
//! on (a) a ten-class task a small model can learn to high accuracy, (b)
//! IID and non-IID partitionability across clients, and (c) gradient
//! geometry that separates honest from forged updates — all of which the
//! surrogate provides (see DESIGN.md, "substitutions").
//!
//! [`partition`] implements the three federated splits used by the
//! experiments: IID, shard-based non-IID (the McMahan-style label-sorted
//! shards; the paper's default), and Dirichlet label skew for ablations.

#![warn(missing_docs)]

pub mod dataset;
pub mod partition;
pub mod stats;
pub mod synth_mnist;

pub use dataset::Dataset;
pub use partition::{dirichlet_partition, iid_partition, shard_non_iid_partition, Partition};
pub use synth_mnist::{SynthMnist, SynthMnistConfig};
