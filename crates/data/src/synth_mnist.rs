//! Procedural MNIST-like digit dataset.
//!
//! Each of the ten classes is defined by a stroke prototype (line segments
//! and elliptical arcs roughly tracing the digit shape) rendered onto a
//! 28x28 grid. Samples are drawn by perturbing the prototype: random
//! translation of up to ±2 pixels, random stroke intensity, random stroke
//! thickness and additive pixel noise, followed by clamping to `[0, 1]`.
//! The result is a ten-class image classification task of the same shape
//! and difficulty class as MNIST for linear/MLP models, generated
//! deterministically from a seed — see DESIGN.md for why this substitution
//! preserves the behaviours the paper's evaluation depends on.

use crate::dataset::Dataset;
use bfl_ml::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Image side length (28 pixels, as in MNIST).
pub const IMAGE_SIDE: usize = 28;
/// Number of pixels per image.
pub const IMAGE_PIXELS: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// One drawing primitive of a digit prototype.
#[derive(Debug, Clone, Copy)]
enum Stroke {
    /// Straight segment from (x0, y0) to (x1, y1) in pixel coordinates.
    Line(f64, f64, f64, f64),
    /// Elliptical arc centred at (cx, cy) with radii (rx, ry) swept from
    /// `start` to `end` radians.
    Arc(f64, f64, f64, f64, f64, f64),
}

/// Stroke prototypes for the digits 0-9.
fn digit_strokes(digit: usize) -> Vec<Stroke> {
    use std::f64::consts::PI;
    match digit {
        0 => vec![Stroke::Arc(14.0, 14.0, 6.0, 8.5, 0.0, 2.0 * PI)],
        1 => vec![
            Stroke::Line(14.0, 5.0, 14.0, 23.0),
            Stroke::Line(11.0, 8.0, 14.0, 5.0),
        ],
        2 => vec![
            Stroke::Arc(14.0, 9.5, 5.5, 4.5, PI, 2.25 * PI),
            Stroke::Line(18.5, 11.5, 8.5, 22.0),
            Stroke::Line(8.5, 22.0, 20.0, 22.0),
        ],
        3 => vec![
            Stroke::Arc(13.0, 9.5, 5.0, 4.5, 1.1 * PI, 2.4 * PI),
            Stroke::Arc(13.0, 18.5, 5.5, 4.5, 1.6 * PI, 2.9 * PI),
        ],
        4 => vec![
            Stroke::Line(17.5, 5.0, 17.5, 23.0),
            Stroke::Line(17.5, 5.0, 8.0, 16.0),
            Stroke::Line(8.0, 16.0, 21.0, 16.0),
        ],
        5 => vec![
            Stroke::Line(18.5, 5.5, 9.5, 5.5),
            Stroke::Line(9.5, 5.5, 9.5, 13.0),
            Stroke::Arc(13.5, 17.0, 5.5, 5.0, 1.25 * PI, 2.75 * PI),
        ],
        6 => vec![
            Stroke::Arc(13.5, 17.5, 5.5, 5.5, 0.0, 2.0 * PI),
            Stroke::Arc(16.0, 10.0, 8.0, 9.0, 0.55 * PI, 1.05 * PI),
        ],
        7 => vec![
            Stroke::Line(8.5, 5.5, 19.5, 5.5),
            Stroke::Line(19.5, 5.5, 12.0, 23.0),
        ],
        8 => vec![
            Stroke::Arc(14.0, 9.5, 4.5, 4.0, 0.0, 2.0 * PI),
            Stroke::Arc(14.0, 18.0, 5.5, 4.8, 0.0, 2.0 * PI),
        ],
        9 => vec![
            Stroke::Arc(14.0, 10.0, 5.0, 4.5, 0.0, 2.0 * PI),
            Stroke::Line(18.5, 10.5, 16.5, 23.0),
        ],
        other => panic!("digit prototypes exist only for 0-9, requested {other}"),
    }
}

/// Paints a stroke onto the canvas with the given thickness and intensity.
fn render_stroke(
    canvas: &mut [f64],
    stroke: &Stroke,
    thickness: f64,
    intensity: f64,
    dx: f64,
    dy: f64,
) {
    let points: Vec<(f64, f64)> = match *stroke {
        Stroke::Line(x0, y0, x1, y1) => {
            let steps = 60;
            (0..=steps)
                .map(|i| {
                    let t = i as f64 / steps as f64;
                    (x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
                })
                .collect()
        }
        Stroke::Arc(cx, cy, rx, ry, start, end) => {
            let steps = 90;
            (0..=steps)
                .map(|i| {
                    let t = start + (end - start) * i as f64 / steps as f64;
                    (cx + rx * t.cos(), cy + ry * t.sin())
                })
                .collect()
        }
    };
    for (px, py) in points {
        let px = px + dx;
        let py = py + dy;
        // Paint a small disc of radius `thickness` around each sample point.
        let radius = thickness.ceil() as i64;
        for oy in -radius..=radius {
            for ox in -radius..=radius {
                let x = px.round() as i64 + ox;
                let y = py.round() as i64 + oy;
                if x < 0 || y < 0 || x >= IMAGE_SIDE as i64 || y >= IMAGE_SIDE as i64 {
                    continue;
                }
                let dist2 = ((x as f64 - px).powi(2) + (y as f64 - py).powi(2)).sqrt();
                if dist2 <= thickness {
                    let idx = y as usize * IMAGE_SIDE + x as usize;
                    let value = intensity * (1.0 - 0.35 * (dist2 / thickness));
                    if value > canvas[idx] {
                        canvas[idx] = value;
                    }
                }
            }
        }
    }
}

/// Configuration of the synthetic dataset generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthMnistConfig {
    /// Number of training samples to generate.
    pub train_samples: usize,
    /// Number of held-out test samples to generate.
    pub test_samples: usize,
    /// Standard deviation of additive per-pixel Gaussian noise.
    pub noise_std: f64,
    /// Maximum absolute translation in pixels applied to each sample.
    pub max_translation: f64,
}

impl Default for SynthMnistConfig {
    fn default() -> Self {
        SynthMnistConfig {
            train_samples: 6000,
            test_samples: 1000,
            noise_std: 0.08,
            max_translation: 2.0,
        }
    }
}

/// Generator for the synthetic MNIST surrogate.
#[derive(Debug, Clone, Copy, Default)]
pub struct SynthMnist {
    /// Generation parameters.
    pub config: SynthMnistConfig,
}

impl SynthMnist {
    /// Creates a generator with the given configuration.
    pub fn new(config: SynthMnistConfig) -> Self {
        SynthMnist { config }
    }

    /// Renders one sample of `digit` with random jitter.
    pub fn render_sample<R: Rng + ?Sized>(&self, digit: usize, rng: &mut R) -> Vec<f64> {
        let mut canvas = vec![0.0; IMAGE_PIXELS];
        let dx = rng.gen_range(-self.config.max_translation..=self.config.max_translation);
        let dy = rng.gen_range(-self.config.max_translation..=self.config.max_translation);
        let thickness = rng.gen_range(1.1..1.9);
        let intensity = rng.gen_range(0.75..1.0);
        for stroke in digit_strokes(digit) {
            render_stroke(&mut canvas, &stroke, thickness, intensity, dx, dy);
        }
        if self.config.noise_std > 0.0 {
            for value in canvas.iter_mut() {
                // Box-Muller Gaussian noise.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                *value = (*value + normal * self.config.noise_std).clamp(0.0, 1.0);
            }
        }
        canvas
    }

    /// Generates a dataset of `samples` images with balanced class counts
    /// (classes are assigned round-robin).
    pub fn generate_split<R: Rng + ?Sized>(&self, samples: usize, rng: &mut R) -> Dataset {
        let mut rows = Vec::with_capacity(samples);
        let mut labels = Vec::with_capacity(samples);
        for i in 0..samples {
            let digit = i % NUM_CLASSES;
            rows.push(self.render_sample(digit, rng));
            labels.push(digit);
        }
        Dataset::new(Matrix::from_rows(&rows), labels, NUM_CLASSES)
    }

    /// Generates the train and test splits configured in [`SynthMnistConfig`].
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> (Dataset, Dataset) {
        let train = self.generate_split(self.config.train_samples, rng);
        let test = self.generate_split(self.config.test_samples, rng);
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_ml::gradient;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator() -> SynthMnist {
        SynthMnist::new(SynthMnistConfig {
            train_samples: 200,
            test_samples: 50,
            noise_std: 0.05,
            max_translation: 2.0,
        })
    }

    #[test]
    fn samples_have_mnist_shape_and_range() {
        let gen = generator();
        let mut rng = StdRng::seed_from_u64(1);
        for digit in 0..NUM_CLASSES {
            let img = gen.render_sample(digit, &mut rng);
            assert_eq!(img.len(), IMAGE_PIXELS);
            assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
            // The glyph should paint a meaningful number of pixels.
            let lit = img.iter().filter(|&&v| v > 0.3).count();
            assert!(lit > 20, "digit {digit} lit only {lit} pixels");
            assert!(
                lit < IMAGE_PIXELS / 2,
                "digit {digit} lit too many pixels: {lit}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "0-9")]
    fn out_of_range_digit_panics() {
        let gen = generator();
        let mut rng = StdRng::seed_from_u64(1);
        let _ = gen.render_sample(10, &mut rng);
    }

    #[test]
    fn class_prototypes_are_mutually_distinguishable() {
        // Noise-free renders of different digits should be far apart, and
        // two renders of the same digit should be closer to each other than
        // to any other digit (on average).
        let gen = SynthMnist::new(SynthMnistConfig {
            noise_std: 0.0,
            max_translation: 0.0,
            ..SynthMnistConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        let prototypes: Vec<Vec<f64>> = (0..NUM_CLASSES)
            .map(|d| gen.render_sample(d, &mut rng))
            .collect();
        for i in 0..NUM_CLASSES {
            for j in 0..NUM_CLASSES {
                if i != j {
                    let d = gradient::cosine_distance(&prototypes[i], &prototypes[j]);
                    assert!(
                        d > 0.15,
                        "digits {i} and {j} are too similar (cosine distance {d})"
                    );
                }
            }
        }
    }

    #[test]
    fn generate_split_is_balanced_and_labelled() {
        let gen = generator();
        let mut rng = StdRng::seed_from_u64(3);
        let data = gen.generate_split(200, &mut rng);
        assert_eq!(data.len(), 200);
        assert_eq!(data.feature_count(), IMAGE_PIXELS);
        let hist = data.label_histogram();
        assert_eq!(hist.len(), NUM_CLASSES);
        assert!(hist.iter().all(|&c| c == 20));
    }

    #[test]
    fn generate_returns_train_and_test() {
        let gen = generator();
        let mut rng = StdRng::seed_from_u64(4);
        let (train, test) = gen.generate(&mut rng);
        assert_eq!(train.len(), 200);
        assert_eq!(test.len(), 50);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let gen = generator();
        let a = gen.generate_split(30, &mut StdRng::seed_from_u64(9));
        let b = gen.generate_split(30, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn a_linear_model_can_learn_the_task() {
        // End-to-end sanity check: softmax regression reaches high accuracy
        // quickly, as it would on MNIST.
        use bfl_ml::metrics::accuracy;
        use bfl_ml::model::Model;
        use bfl_ml::optimizer::{train_local, LocalTrainingConfig};
        use bfl_ml::SoftmaxRegression;

        let gen = SynthMnist::new(SynthMnistConfig {
            train_samples: 400,
            test_samples: 100,
            noise_std: 0.05,
            max_translation: 1.5,
        });
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = gen.generate(&mut rng);
        let mut model = SoftmaxRegression::new(IMAGE_PIXELS, NUM_CLASSES, &mut rng);
        let samples: Vec<usize> = (0..train.len()).collect();
        let config = LocalTrainingConfig {
            epochs: 5,
            batch_size: 10,
            learning_rate: 0.05,
            proximal_mu: 0.0,
        };
        train_local(
            &mut model,
            &train.features,
            &train.labels,
            &samples,
            &config,
            &mut rng,
        );
        let acc = accuracy(&model, &test.features, &test.labels, None);
        assert!(
            acc > 0.85,
            "synthetic MNIST should be learnable to >85% by a linear model, got {acc}"
        );
        assert_eq!(model.num_params(), 7850);
    }
}
