//! Feature/label containers and splits.

use bfl_ml::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A labelled classification dataset: one feature row per sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature matrix, one row per sample.
    pub features: Matrix,
    /// Integer class label per sample (same order as `features` rows).
    pub labels: Vec<usize>,
    /// Number of distinct classes.
    pub classes: usize,
}

impl Dataset {
    /// Creates a dataset, checking that features and labels line up.
    pub fn new(features: Matrix, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(
            features.rows,
            labels.len(),
            "feature rows and labels must have equal length"
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "labels must be smaller than the class count"
        );
        Dataset {
            features,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn feature_count(&self) -> usize {
        self.features.cols
    }

    /// Number of samples carrying each label.
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &label in &self.labels {
            counts[label] += 1;
        }
        counts
    }

    /// Builds a new dataset containing only the selected rows (in order).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        }
    }

    /// Splits the dataset into a head of `head_len` samples and the rest.
    pub fn split_at(&self, head_len: usize) -> (Dataset, Dataset) {
        let head_len = head_len.min(self.len());
        let head: Vec<usize> = (0..head_len).collect();
        let tail: Vec<usize> = (head_len..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        let features = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.5, 0.5],
            vec![0.9, 0.1],
        ]);
        Dataset::new(features, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn construction_and_accessors() {
        let d = small();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.feature_count(), 2);
        assert_eq!(d.label_histogram(), vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let features = Matrix::from_rows(&[vec![0.0]]);
        let _ = Dataset::new(features, vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "smaller than the class count")]
    fn out_of_range_label_panics() {
        let features = Matrix::from_rows(&[vec![0.0]]);
        let _ = Dataset::new(features, vec![5], 2);
    }

    #[test]
    fn subset_selects_and_reorders() {
        let d = small();
        let s = d.subset(&[3, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![1, 0]);
        assert_eq!(s.features.row(0), &[0.9, 0.1]);
    }

    #[test]
    fn split_at_partitions_everything() {
        let d = small();
        let (head, tail) = d.split_at(3);
        assert_eq!(head.len(), 3);
        assert_eq!(tail.len(), 1);
        let (all, none) = d.split_at(10);
        assert_eq!(all.len(), 4);
        assert!(none.is_empty());
    }
}
