//! Partition statistics: per-client label distributions and skew measures.
//!
//! Table 2 of the paper compares detection rates under IID and non-IID
//! splits; these helpers quantify how skewed a given partition actually is
//! so experiments and tests can assert they are exercising the intended
//! regime.

use crate::partition::Partition;

/// Per-client label histogram: `result[client][class]` counts the samples
/// of `class` held by `client`.
pub fn label_distribution(
    labels: &[usize],
    partition: &Partition,
    classes: usize,
) -> Vec<Vec<usize>> {
    partition
        .iter()
        .map(|shard| {
            let mut counts = vec![0usize; classes];
            for &idx in shard {
                let label = labels[idx];
                if label < classes {
                    counts[label] += 1;
                }
            }
            counts
        })
        .collect()
}

/// Mean, over clients, of the fraction of a client's samples belonging to
/// its most common class. 1/classes ≈ perfectly IID, 1.0 = every client is
/// single-class.
pub fn dominant_class_fraction(labels: &[usize], partition: &Partition, classes: usize) -> f64 {
    let dist = label_distribution(labels, partition, classes);
    let mut total = 0.0;
    let mut counted = 0usize;
    for counts in &dist {
        let shard_total: usize = counts.iter().sum();
        if shard_total == 0 {
            continue;
        }
        let dominant = *counts.iter().max().unwrap_or(&0);
        total += dominant as f64 / shard_total as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Average number of distinct classes per client shard.
pub fn mean_classes_per_client(labels: &[usize], partition: &Partition, classes: usize) -> f64 {
    let dist = label_distribution(labels, partition, classes);
    if dist.is_empty() {
        return 0.0;
    }
    dist.iter()
        .map(|counts| counts.iter().filter(|&&c| c > 0).count() as f64)
        .sum::<f64>()
        / dist.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{iid_partition, shard_non_iid_partition};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn label_distribution_counts_correctly() {
        let labels = vec![0, 0, 1, 2, 1];
        let partition = vec![vec![0, 2], vec![1, 3, 4]];
        let dist = label_distribution(&labels, &partition, 3);
        assert_eq!(dist[0], vec![1, 1, 0]);
        assert_eq!(dist[1], vec![1, 1, 1]);
    }

    #[test]
    fn dominance_of_single_class_clients_is_one() {
        let labels = vec![0, 0, 1, 1];
        let partition = vec![vec![0, 1], vec![2, 3]];
        assert!((dominant_class_fraction(&labels, &partition, 2) - 1.0).abs() < 1e-12);
        assert!((mean_classes_per_client(&labels, &partition, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_is_less_dominant_than_shard_non_iid() {
        let labels: Vec<usize> = (0..2000).map(|i| i % 10).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let iid = iid_partition(labels.len(), 20, &mut rng);
        let non_iid = shard_non_iid_partition(&labels, 20, 2, &mut rng);
        let d_iid = dominant_class_fraction(&labels, &iid, 10);
        let d_non = dominant_class_fraction(&labels, &non_iid, 10);
        assert!(d_non > d_iid + 0.2, "non-IID {d_non} vs IID {d_iid}");
        assert!(
            mean_classes_per_client(&labels, &iid, 10)
                > mean_classes_per_client(&labels, &non_iid, 10)
        );
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert_eq!(dominant_class_fraction(&[], &vec![], 10), 0.0);
        assert_eq!(mean_classes_per_client(&[], &vec![], 10), 0.0);
    }
}
