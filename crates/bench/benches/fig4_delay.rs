//! Criterion benchmark behind Figure 4: one full run of each system
//! (FAIR-BFL, pure blockchain, FedAvg, FedProx) at smoke scale, so the
//! relative wall-clock cost of the three architectures can be compared and
//! regressions in the round pipeline are caught.

use bfl_bench::experiments::{dataset, run_system, Scale, SystemLabel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig4(c: &mut Criterion) {
    let data = dataset(Scale::Smoke);
    let mut group = c.benchmark_group("fig4_general_comparison");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for system in [
        SystemLabel::Fair,
        SystemLabel::Blockchain,
        SystemLabel::FedAvg,
        SystemLabel::FedProx,
    ] {
        group.bench_function(system.name(), |b| {
            b.iter(|| black_box(run_system(system, Scale::Smoke, &data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
