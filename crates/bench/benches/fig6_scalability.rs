//! Criterion benchmark behind Figure 6: scaling the number of workers (6a)
//! and miners (6b). The blockchain baseline's cost grows with both; FAIR's
//! stays nearly flat.

use bfl_bench::experiments::{dataset, system_config, Scale, SystemLabel};
use bfl_core::BflSimulation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_workers(c: &mut Criterion) {
    let data = dataset(Scale::Smoke);
    let mut group = c.benchmark_group("fig6a_workers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for workers in [10usize, 20, 40] {
        group.bench_with_input(
            BenchmarkId::new("blockchain", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut config = system_config(SystemLabel::Blockchain, Scale::Smoke);
                    config.fl.clients = workers;
                    black_box(
                        BflSimulation::new(config)
                            .run(&data.0, &data.1)
                            .expect("run completes"),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_miners(c: &mut Criterion) {
    let data = dataset(Scale::Smoke);
    let mut group = c.benchmark_group("fig6b_miners");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for miners in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("fair", miners), &miners, |b, &miners| {
            b.iter(|| {
                let mut config = system_config(SystemLabel::Fair, Scale::Smoke);
                config.miners = miners;
                black_box(
                    BflSimulation::new(config)
                        .run(&data.0, &data.1)
                        .expect("run completes"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workers, bench_miners);
criterion_main!(benches);
