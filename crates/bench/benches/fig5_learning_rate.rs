//! Criterion benchmark behind Figure 5: FAIR-BFL runs across learning
//! rates, checking that the learning rate has no effect on the delay path
//! (only on accuracy) — the paper's Insight 1.

use bfl_bench::experiments::{dataset, system_config, Scale, SystemLabel};
use bfl_core::BflSimulation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig5(c: &mut Criterion) {
    let data = dataset(Scale::Smoke);
    let mut group = c.benchmark_group("fig5_learning_rate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for lr in [0.01f64, 0.10, 0.20] {
        group.bench_with_input(BenchmarkId::new("fair", format!("{lr}")), &lr, |b, &lr| {
            b.iter(|| {
                let mut config = system_config(SystemLabel::Fair, Scale::Smoke);
                config.fl.local.learning_rate = lr;
                black_box(
                    BflSimulation::new(config)
                        .run(&data.0, &data.1)
                        .expect("run completes"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
