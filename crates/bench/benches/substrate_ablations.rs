//! Substrate micro-benchmarks and design-choice ablations from DESIGN.md:
//! SHA-256 / PoW throughput, RSA sign+verify cost (the T_up verification
//! component), simple vs fair aggregation (Equation 1), and local training
//! throughput — the building blocks every round delay is made of.

use bfl_chain::pow::PowConfig;
use bfl_core::aggregation::fair_aggregate;
use bfl_crypto::sha256::sha256;
use bfl_crypto::signature::{sign_message, verify_message};
use bfl_crypto::RsaKeyPair;
use bfl_data::{SynthMnist, SynthMnistConfig};
use bfl_ml::gradient::average;
use bfl_ml::optimizer::{train_local, LocalTrainingConfig};
use bfl_ml::SoftmaxRegression;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_hashing_and_pow(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_hashing");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    let payload = vec![0xA5u8; 64 * 1024];
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("sha256_64KiB", |b| b.iter(|| black_box(sha256(&payload))));

    group.bench_function("pow_difficulty_256", |b| {
        let config = PowConfig::new(256);
        b.iter(|| {
            black_box(config.search(0, 1_000_000, |nonce| {
                let mut bytes = b"bench-header".to_vec();
                bytes.extend_from_slice(&nonce.to_be_bytes());
                sha256(&bytes)
            }))
        })
    });
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_rsa");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    let mut rng = StdRng::seed_from_u64(1);
    let pair = RsaKeyPair::generate(&mut rng, 512).expect("keygen");
    let payload = vec![7u8; 7850 * 8];

    group.bench_function("sign_gradient_512bit", |b| {
        b.iter(|| black_box(sign_message(1, &payload, &pair.private)))
    });
    let signed = sign_message(1, &payload, &pair.private);
    group.bench_function("verify_gradient_512bit", |b| {
        b.iter(|| black_box(verify_message(&signed, &pair.public)))
    });
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_aggregation");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(5));
    let updates: Vec<Vec<f64>> = (0..20)
        .map(|i| {
            (0..7850)
                .map(|j| ((i * 7850 + j) as f64 * 0.001).sin())
                .collect()
        })
        .collect();
    let reference = average(&updates);

    group.bench_function("simple_average", |b| {
        b.iter(|| black_box(average(&updates)))
    });
    group.bench_function("fair_aggregation_eq1", |b| {
        b.iter(|| black_box(fair_aggregate(&updates, &reference)))
    });
    group.finish();
}

fn bench_local_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_local_training");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    let mut rng = StdRng::seed_from_u64(2);
    let data = SynthMnist::new(SynthMnistConfig {
        train_samples: 100,
        test_samples: 10,
        ..SynthMnistConfig::default()
    })
    .generate_split(100, &mut rng);
    let samples: Vec<usize> = (0..100).collect();
    let config = LocalTrainingConfig {
        epochs: 1,
        batch_size: 10,
        learning_rate: 0.05,
        proximal_mu: 0.0,
    };

    group.bench_function("one_epoch_100_samples_softmax", |b| {
        b.iter(|| {
            let mut model = SoftmaxRegression::new(784, 10, &mut rng);
            black_box(train_local(
                &mut model,
                &data.features,
                &data.labels,
                &samples,
                &config,
                &mut rng,
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hashing_and_pow,
    bench_rsa,
    bench_aggregation,
    bench_local_training
);
criterion_main!(benches);
