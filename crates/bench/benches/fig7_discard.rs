//! Criterion benchmark behind Figure 7: FAIR with the keep strategy versus
//! the discard strategy (which does strictly more work per round — the
//! clustering plus re-aggregation — yet fewer participants over time).

use bfl_bench::experiments::{dataset, run_system, Scale, SystemLabel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig7(c: &mut Criterion) {
    let data = dataset(Scale::Smoke);
    let mut group = c.benchmark_group("fig7_discard_strategy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for system in [
        SystemLabel::Fair,
        SystemLabel::FairDiscard,
        SystemLabel::FedProx,
    ] {
        group.bench_function(system.name(), |b| {
            b.iter(|| black_box(run_system(system, Scale::Smoke, &data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
