//! Criterion benchmark behind Table 2: a full attacked run with DBSCAN
//! contribution identification and the discard strategy, plus the
//! clustering-algorithm ablation called out in DESIGN.md (DBSCAN vs
//! k-means vs agglomerative inside Algorithm 2).

use bfl_bench::experiments::{dataset, Scale};
use bfl_cluster::{ClusteringAlgorithm, DistanceMetric};
use bfl_core::contribution::identify_contributions;
use bfl_core::{AttackConfig, BflSimulation, LowContributionStrategy};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_attacked_run(c: &mut Criterion) {
    let data = dataset(Scale::Smoke);
    let mut group = c.benchmark_group("table2_attacked_run");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("fair_discard_under_attack", |b| {
        b.iter(|| {
            let mut config = bfl_bench::experiments::base_config(Scale::Smoke);
            config.fl.participation_ratio = 1.0;
            config.strategy = LowContributionStrategy::Discard;
            config.attack = AttackConfig::table2();
            black_box(
                BflSimulation::new(config)
                    .run(&data.0, &data.1)
                    .expect("run completes"),
            )
        })
    });
    group.finish();
}

fn bench_clustering_ablation(c: &mut Criterion) {
    // Synthetic per-round gradient set: 20 honest uploads plus 3 forged.
    let uploads: Vec<(u64, Vec<f64>)> = (0..23u64)
        .map(|id| {
            let honest = id < 20;
            let direction = if honest { 1.0 } else { -1.0 };
            let gradient: Vec<f64> = (0..512)
                .map(|i| direction * ((i as f64 * 0.37 + id as f64 * 0.11).sin() * 0.1 + 0.5))
                .collect();
            (id, gradient)
        })
        .collect();

    let mut group = c.benchmark_group("algorithm2_clustering_ablation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));
    for (name, algorithm) in [
        ("dbscan", ClusteringAlgorithm::default_dbscan()),
        (
            "kmeans",
            ClusteringAlgorithm::KMeans {
                k: 2,
                max_iterations: 50,
            },
        ),
        (
            "agglomerative",
            ClusteringAlgorithm::Agglomerative {
                distance_threshold: 0.5,
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(identify_contributions(
                    &uploads,
                    &algorithm,
                    DistanceMetric::Cosine,
                    LowContributionStrategy::Discard,
                    100.0,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attacked_run, bench_clustering_ablation);
criterion_main!(benches);
