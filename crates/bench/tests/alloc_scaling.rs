//! The O(participants) memory contract, asserted in-process: running the
//! same per-round working set against a population ten times larger must
//! not move the heap high-water mark. This is the PR 7 bench's flatness
//! assertion at test scale, with the counting allocator installed as this
//! binary's global allocator.

use bfl_bench::experiments::{dataset, population_scale_config, Scale};
use bfl_bench::CountingAllocator;
use bfl_core::Scenario;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

fn peak_for(population: usize, data: &(bfl_data::Dataset, bfl_data::Dataset)) -> usize {
    let config = population_scale_config(population, 64, 1, 16);
    let scenario = Scenario::from_config(config).expect("cell is valid");
    ALLOC.reset_peak();
    let result = scenario.run(&data.0, &data.1).expect("cell completes");
    assert_eq!(result.history.rounds.len(), 1);
    assert!(result.history.rounds[0].participants > 0);
    ALLOC.peak_bytes()
}

/// One test, one binary: the global allocator's counters are shared, so
/// nothing else may run concurrently with the bracketed regions.
#[test]
fn peak_heap_tracks_participants_not_population() {
    let data = dataset(Scale::Smoke);
    // Warm-up run so one-time allocations (thread pools, caches) don't
    // land inside the first measured bracket.
    let _ = peak_for(50_000, &data);

    let small = peak_for(50_000, &data);
    let large = peak_for(500_000, &data);
    assert!(
        large as f64 <= small as f64 * 1.5,
        "population x10 moved the heap high-water: {small} -> {large} bytes \
         ({:.2}x; allocation proportional to population has crept back in)",
        large as f64 / small as f64
    );
}
