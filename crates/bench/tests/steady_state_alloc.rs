//! The PR 10 allocation contract, asserted in-process: once the flexible
//! event engine's round loop is warm, a round allocates nothing it does
//! not free again — zero *net* heap growth in bytes **and** blocks per
//! round. Transient churn (gradient buffers, RSA preimages, queue events)
//! is allowed; what is not allowed is per-round growth creeping back into
//! the steady state (fresh pump buffers, per-ticket scratch spaces,
//! one-element association Vecs — the hot spots PR 10 moved into
//! [`AsyncRuntime`]'s reusable state).
//!
//! The only *intentional* per-round growth is the deterministic event
//! trace and the accumulated round records, which grow by amortized
//! doubling — the warm-up below runs long enough that the measured
//! window sits inside their spare capacity. Everything is seeded, so the
//! allocation sequence is deterministic: if this test passes once it
//! passes everywhere.

use bfl_bench::experiments::{dataset, Scale};
use bfl_bench::CountingAllocator;
use bfl_core::{FlexibilityMode, RewardEntry, RewardPolicy, Scenario, SyncMode};
use bfl_fl::config::PartitionKind;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

/// A reward policy that pays nobody: the default proportional policy
/// returns a per-round `Vec<RewardEntry>` that the outcome log retains,
/// which is per-round growth by design. Paying zero rewards keeps every
/// retained `Vec` empty (and an empty `Vec` never touches the heap), so
/// the assertion below isolates the *engine*'s allocations.
struct NoReward;

impl RewardPolicy for NoReward {
    fn round_rewards(&self, _round: usize, _scores: &[(u64, f64)]) -> Vec<RewardEntry> {
        Vec::new()
    }
}

/// A small flexible-quota FL-only run: 16 clients, half commissioned per
/// round, signatures on (the signing/verify path is part of the loop
/// under test), no mining (a sealed block's hash string and transaction
/// list are retained per round, which is growth by design).
fn steady_scenario() -> Scenario {
    Scenario::builder()
        .clients(16)
        .miners(2)
        .rounds(WARMUP_ROUNDS + MEASURED_ROUNDS)
        .participation_ratio(0.5)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .seed(11)
        .mode(FlexibilityMode::FlOnly)
        .sync(SyncMode::FlexibleQuota { quota: 8 })
        .build()
        .expect("scenario is valid")
}

// 48 warm-up rounds put the event trace just past its 1024-record
// capacity doubling (~25 records/round in this scenario), so the measured
// window sits well inside the doubled spare capacity.
const WARMUP_ROUNDS: usize = 48;
const MEASURED_ROUNDS: usize = 8;

/// One test, one binary: the global allocator's counters are shared, so
/// nothing else may run concurrently with the bracketed regions.
#[test]
fn flexible_round_loop_is_allocation_free_at_steady_state() {
    let (train, test) = dataset(Scale::Smoke);
    let mut run = steady_scenario()
        .start(&train, &test)
        .expect("run provisions")
        .with_reward_policy(Box::new(NoReward));

    // Warm-up: crosses the accumulating vectors' capacity boundaries,
    // fills the runtime's reusable buffers to their high-water sizes, and
    // touches every client's cached RSA identity.
    for _ in 0..WARMUP_ROUNDS {
        let outcome = run.step().expect("round succeeds").expect("rounds remain");
        assert!(outcome.participants > 0);
    }

    // Steady state: every measured round must leave the heap exactly
    // where it found it — zero net bytes, zero net blocks — once the
    // round's own outcome (returned by value) is dropped.
    for measured in 0..MEASURED_ROUNDS {
        let before = ALLOC.snapshot();
        let outcome = run.step().expect("round succeeds").expect("rounds remain");
        assert!(outcome.participants > 0);
        drop(outcome);
        let delta = ALLOC.delta_since(&before);
        assert!(
            delta.is_net_zero(),
            "steady-state round {} grew the heap: {} net bytes, {} net blocks \
             across {} allocation events (per-round allocation has crept back \
             into the flexible engine)",
            WARMUP_ROUNDS + measured + 1,
            delta.net_bytes,
            delta.net_blocks,
            delta.allocations,
        );
    }
}
