//! Regenerates Figure 5: impact of the learning rate on delay (5a) and
//! accuracy (5b) for FAIR, FedAvg and FedProx.
//!
//! Usage: `cargo run -p bfl-bench --release --bin fig5 -- [--scale smoke|medium|paper]`

use bfl_bench::experiments::{figure5, Scale, PAPER_LEARNING_RATES};
use bfl_bench::report::render_figure5;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Figure 5 at {scale:?} scale...");
    let rates: Vec<f64> = if scale == Scale::Smoke {
        vec![0.01, 0.10]
    } else {
        PAPER_LEARNING_RATES.to_vec()
    };
    let rows = figure5(scale, &rates);
    println!("{}", render_figure5(&rows));
}
