//! Throughput benchmark for the batched GEMM training/eval engine.
//!
//! Measures, in one process on one machine, the batched engine against
//! the retained per-sample reference path (toggled through
//! `bfl_ml::engine::set_reference_mode`):
//!
//! 1. **Local SGD** samples/second — Procedure-I's mini-batch training
//!    loop over an MNIST-scale softmax model.
//! 2. **Evaluation** samples/second — test-set accuracy of the same
//!    model.
//! 3. **End-to-end simulation** rounds/second — a Figure-5-style
//!    FAIR-BFL run (full pipeline: local SGD, upload, exchange,
//!    Algorithm 2 clustering, Equation 1, mining, evaluation).
//!
//! Writes the measurements and speedups to `BENCH_PR1.json`, recording
//! the perf trajectory of the repository.

use bfl_bench::experiments::{dataset, system_config, Scale, SystemLabel};
use bfl_core::BflSimulation;
use bfl_data::Dataset;
use bfl_ml::model::{AnyModel, ModelKind};
use bfl_ml::optimizer::{train_local_with_scratch, LocalTrainingConfig};
use bfl_ml::tensor::Scratch;
use bfl_ml::{engine, metrics};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Debug, Clone, Serialize)]
struct Measurement {
    batched: f64,
    reference: f64,
    speedup: f64,
}

impl Measurement {
    fn from_rates(batched: f64, reference: f64) -> Self {
        Measurement {
            batched,
            reference,
            speedup: batched / reference,
        }
    }
}

#[derive(Debug, Clone, Serialize)]
struct Report {
    description: String,
    local_sgd_samples_per_sec: Measurement,
    eval_samples_per_sec: Measurement,
    fig5_sim_rounds_per_sec: Measurement,
    fig5_sim_wall_clock_speedup: f64,
}

/// Runs `body` once warm-up, then `reps` individually timed repetitions;
/// returns the best-repetition rate in work-units per second. Best-of
/// is deliberate: the machines this runs on are shared, and the fastest
/// repetition is the least contaminated by scheduling noise.
fn rate(units: f64, reps: usize, mut body: impl FnMut()) -> f64 {
    body();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    units / best
}

fn local_sgd_rate(train: &Dataset, reference: bool, reps: usize) -> f64 {
    engine::set_reference_mode(reference);
    let kind = ModelKind::default_mnist();
    let config = LocalTrainingConfig {
        epochs: 5,
        batch_size: 10,
        learning_rate: 0.01,
        proximal_mu: 0.0,
    };
    // Shard size matches the paper's per-client reality (6000 training
    // samples across 100 workers, Section 5.1): Procedure-I always runs
    // over a small local shard, not the pooled dataset.
    let shard: Vec<usize> = (0..train.len().min(100)).collect();
    let mut scratch = Scratch::new();
    let samples_per_rep = (config.epochs * shard.len()) as f64;
    let result = rate(samples_per_rep, reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model: AnyModel = kind.build(&mut rng);
        black_box(train_local_with_scratch(
            &mut model,
            &train.features,
            &train.labels,
            &shard,
            &config,
            &mut rng,
            &mut scratch,
        ));
    });
    engine::set_reference_mode(false);
    result
}

fn eval_rate(test: &Dataset, reference: bool, reps: usize) -> f64 {
    engine::set_reference_mode(reference);
    let mut rng = StdRng::seed_from_u64(7);
    let model: AnyModel = ModelKind::default_mnist().build(&mut rng);
    let result = rate(test.len() as f64, reps, || {
        black_box(metrics::accuracy(
            &model,
            &test.features,
            &test.labels,
            None,
        ));
    });
    engine::set_reference_mode(false);
    result
}

fn fig5_sim_rate(data: &(Dataset, Dataset), reference: bool, reps: usize) -> f64 {
    engine::set_reference_mode(reference);
    // Figure 5 sweeps the learning rate over full FAIR-BFL runs; one
    // representative point of that sweep is the end-to-end workload,
    // sized so each round carries the paper's E=5 local epochs over
    // realistic shards (smoke scale shrinks training to the point where
    // fixed per-run costs like RSA key provisioning dominate).
    let mut config = system_config(SystemLabel::Fair, Scale::Smoke);
    config.fl.local.learning_rate = 0.10;
    config.fl.local.epochs = 5;
    config.fl.rounds = 4;
    // RSA sign/verify takes the same wall-clock in both engine modes and
    // (at this scale) would bury the learning substrate under constant
    // crypto cost; it is switched off so the measurement isolates what
    // this benchmark tracks.
    config.verify_signatures = false;
    let rounds = config.fl.rounds as f64;
    let result = rate(rounds, reps, || {
        black_box(
            BflSimulation::new(config)
                .run(&data.0, &data.1)
                .expect("simulation completes"),
        );
    });
    engine::set_reference_mode(false);
    result
}

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);

    let data = dataset(Scale::Medium);
    let (train, test) = &data;

    eprintln!("measuring local SGD ({reps} reps per mode)...");
    let sgd = Measurement::from_rates(
        local_sgd_rate(train, false, reps),
        local_sgd_rate(train, true, reps),
    );
    eprintln!(
        "  batched {:>12.0} samples/s | reference {:>12.0} samples/s | {:.2}x",
        sgd.batched, sgd.reference, sgd.speedup
    );

    eprintln!("measuring evaluation ({reps} reps per mode)...");
    let eval = Measurement::from_rates(eval_rate(test, false, reps), eval_rate(test, true, reps));
    eprintln!(
        "  batched {:>12.0} samples/s | reference {:>12.0} samples/s | {:.2}x",
        eval.batched, eval.reference, eval.speedup
    );

    eprintln!("measuring fig5-style end-to-end simulation ({reps} reps per mode)...");
    let sim = Measurement::from_rates(
        fig5_sim_rate(&data, false, reps),
        fig5_sim_rate(&data, true, reps),
    );
    eprintln!(
        "  batched {:>8.3} rounds/s | reference {:>8.3} rounds/s | {:.2}x",
        sim.batched, sim.reference, sim.speedup
    );

    let report = Report {
        description: "Batched GEMM engine vs per-sample reference path, same process/machine"
            .to_string(),
        local_sgd_samples_per_sec: sgd,
        eval_samples_per_sec: eval,
        fig5_sim_wall_clock_speedup: sim.speedup,
        fig5_sim_rounds_per_sec: sim,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_PR1.json", format!("{json}\n")).expect("BENCH_PR1.json written");
    println!("{json}");
}
