//! Throughput benchmark for the compute substrates, in one process on
//! one machine.
//!
//! **Learning substrate** (PR 1, written to `BENCH_PR1.json`): the
//! batched GEMM engine against the retained per-sample reference path,
//! toggled through `bfl_ml::engine::set_reference_mode`:
//!
//! 1. **Local SGD** samples/second — Procedure-I's mini-batch training
//!    loop over an MNIST-scale softmax model.
//! 2. **Evaluation** samples/second — test-set accuracy of the same
//!    model.
//! 3. **End-to-end simulation** rounds/second — a Figure-5-style
//!    FAIR-BFL run with signatures off (isolates the learning substrate).
//!
//! **Ledger substrate** (PR 2's section, now written to
//! `BENCH_CRYPTO.json`; the tracked `BENCH_PR2.json` is a frozen record
//! of the 32-bit-limb engine and is never rewritten): the crypto engine
//! against the retained seed paths, toggled through
//! `bfl_crypto::engine::set_reference_mode`, plus the PoW midstate fast
//! path against full-header hashing:
//!
//! 4. **RSA keygen/sign/verify** operations/second at
//!    `DEFAULT_MODULUS_BITS`.
//! 5. **PoW hash rate** — midstate (one compression per nonce) vs
//!    hashing the full 104-byte header per nonce.
//! 6. **FullBfl** rounds/second — a smoke-scale FAIR-BFL run *with*
//!    signature verification on (the workload the ROADMAP flagged as
//!    ~97% crypto), and the crypto share of its wall-clock.
//!
//! **u64-limb bigint core + parallel verification** (PR 3, written to
//! `BENCH_PR3.json`): the 64-bit-limb engine with cached per-key
//! Montgomery contexts against the retained reference paths, plus the
//! Procedure-II-style parallel verification batch:
//!
//! 7. **bigint** — `modpow` and `div_rem` operations/second, fast engine
//!    vs reference, at RSA-scale operand widths.
//! 8. **verify-batch** — a round's worth of signature verifications
//!    fanned out over `bfl_ml::par` vs the serial loop.
//! 9. **vs-PR2** — current sign/verify rates against the rates recorded
//!    in `BENCH_PR2.json` (the 32-bit-limb engine on this machine
//!    class), and the crypto share of a signed smoke FullBfl run.
//!
//! **Scenario sweeps** (PR 4, written to `BENCH_PR4.json`): the
//! [`bfl_core::SweepRunner`] fanning the design-space grid of
//! `experiments::scenario_grid` across cores vs the same grid run
//! serially:
//!
//! 10. **sweep** — scenarios/second, serial vs parallel, after asserting
//!     every grid cell completes and per-cell results are bit-identical
//!     regardless of sweep parallelism.
//!
//! **Event-driven engine** (PR 5, written to `BENCH_PR5.json`): the
//! flexible-block-quota engine on a heterogeneous straggler population:
//!
//! 11. **async sweep** — the quota × latency × churn grid through
//!     [`bfl_core::SweepRunner`], serial vs parallel, after asserting the
//!     event-driven cells are bit-identical regardless of parallelism.
//! 12. **quota comparison** — simulated makespan and wall-clock rounds/s
//!     of the same straggler population with the block quota at "wait
//!     for everyone" vs 60% of the participants (the paper's flexible
//!     block size); asserts the flexible quota's makespan is lower.
//!
//! **Fault injection** (PR 6, written to `BENCH_PR6.json`): the
//! deterministic fault plans on the event engine:
//!
//! 13. **fault sweep** — the loss-rate × partition grid through
//!     [`bfl_core::SweepRunner`], asserted bit-identical across thread
//!     counts *while faults are active* (drop coins, retry jitter, and
//!     fork healing draw from a per-run stream), then measured serial vs
//!     parallel.
//! 14. **resilience curve** — per-cell accuracy, simulated makespan,
//!     delivered uploads, salvaged stale carry-over, and fork resolution
//!     time against the fault-free baseline corner.
//!
//! **Population-scale rounds** (PR 7, written to `BENCH_PR7.json`): lazy
//! O(participants) provisioning and streaming Procedure-IV aggregation
//! on an implicit population, measured under a counting global allocator:
//!
//! 15. **population ladder** — the PR 4–6-style eager/materialized round
//!     against the lazy/streaming engine at the same shape, then the
//!     lazy/streaming engine at 10 000 participants per round drawn from
//!     a 10 000-client and a 1 000 000-client population; asserts the
//!     1M-population cell's heap high-water stays within 1.5× of the
//!     10k-population cell (memory tracks participants, not population).
//! 16. **signed companion** — the same implicit populations with RSA
//!     signing on and keys derived lazily at admission, showing keygen
//!     cost also tracks participants rather than population.
//!
//! **Next speed tier** (PR 8, written to `BENCH_PR8.json`): batched RSA
//! verification, lane-sharded event drains, and per-thread-count scaling
//! curves:
//!
//! 17. **batched-verify** — a 1k-upload round's signature checks through
//!     `KeyStore::verify_batch` (shared Montgomery workspace,
//!     screen-then-confirm) vs the per-upload `verify` loop, decisions
//!     asserted identical on a genuine accept/reject mix.
//! 18. **lane-drain** — the sharded `EventQueue` drained via due batches
//!     and via parallel per-lane runs vs a single global heap, pop order
//!     asserted identical across all three.
//! 19. **scaling table** — sweep / Procedure-II / mining / lane-drain
//!     fan-outs at thread counts {1, 2, 4, 8}, each cell asserting
//!     parallel == serial bit-identity before its timer starts.
//!
//! **SIMD compute tier** (PR 10, written to `BENCH_PR10.json`): the
//! runtime-dispatched AVX2+FMA kernel tier and the allocation-free
//! steady-state round loop:
//!
//! 20. **kernel rows** — every dispatched GEMM/axpy kernel at a
//!     representative shape, scalar vs SIMD tier, bit-identity asserted
//!     on fresh outputs before each timed pair (plus a full signed run
//!     digested under both tiers).
//! 21. **composites** — local SGD, eval accuracy, and the signed smoke
//!     FullBfl run (with its crypto-share shift) under both tiers.
//! 22. **steady-state allocation** — warmed-up flexible rounds bracketed
//!     with the counting allocator, asserting zero net bytes and blocks
//!     per round while reporting the transient churn.
//!
//! Usage: `throughput [reps]
//! [all|ml|crypto|pr3|pr4|pr5|pr6|pr7|pr8|pr10|smoke]`.
//! `smoke` runs a seconds-scale version of every section (for CI) and
//! writes `BENCH_SMOKE.json` instead of the tracked reports.

use bfl_bench::experiments::{
    dataset, population_scale_config, population_signed_config, scenario_grid, system_config,
    Scale, SystemLabel,
};
use bfl_bench::section::{best_seconds, parse_bench_args, rate, write_report, SectionRegistry};
use bfl_bench::CountingAllocator;
use bfl_chain::Block;
use bfl_core::{
    AggregationMode, BflConfig, BflSimulation, FlexibilityMode, ProvisioningMode, Scenario,
    SweepRunner, SyncMode,
};
use bfl_crypto::bigint::BigUint;
use bfl_crypto::engine as crypto_engine;
use bfl_crypto::rsa::{RsaKeyPair, DEFAULT_MODULUS_BITS};
use bfl_crypto::sha256::sha256;
use bfl_crypto::signature::{sign_message, verify_message, SignedMessage};
use bfl_data::Dataset;
use bfl_fl::config::PartitionKind;
use bfl_ml::model::{AnyModel, ModelKind};
use bfl_ml::optimizer::{train_local_with_scratch, LocalTrainingConfig};
use bfl_ml::tensor::{Matrix, Scratch};
use bfl_ml::{engine, metrics, par, simd, tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// Heap bookkeeping for the PR 7 population ladder. The other sections
/// run under it too; the overhead is two relaxed atomic updates per
/// allocation, invisible next to the measured workloads.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

#[derive(Debug, Clone, Serialize)]
struct Measurement {
    batched: f64,
    reference: f64,
    speedup: f64,
}

impl Measurement {
    fn from_rates(batched: f64, reference: f64) -> Self {
        Measurement {
            batched,
            reference,
            speedup: batched / reference,
        }
    }
}

/// Fast-engine vs reference-engine rates for one crypto operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EnginePair {
    fast: f64,
    reference: f64,
    speedup: f64,
}

impl EnginePair {
    fn from_rates(fast: f64, reference: f64) -> Self {
        EnginePair {
            fast,
            reference,
            speedup: fast / reference,
        }
    }
}

/// Midstate vs full-header PoW hash rates.
#[derive(Debug, Clone, Serialize)]
struct PowPair {
    midstate: f64,
    full_header: f64,
    speedup: f64,
}

/// Wall-clock split of a FullBfl run with and without signatures.
#[derive(Debug, Clone, Serialize)]
struct CryptoShare {
    signatures_on_seconds: f64,
    signatures_off_seconds: f64,
    crypto_share: f64,
}

#[derive(Debug, Clone, Serialize)]
struct MlReport {
    description: String,
    local_sgd_samples_per_sec: Measurement,
    eval_samples_per_sec: Measurement,
    fig5_sim_rounds_per_sec: Measurement,
    fig5_sim_wall_clock_speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct CryptoReport {
    description: String,
    modulus_bits: usize,
    keygen_per_sec: EnginePair,
    sign_per_sec: EnginePair,
    verify_per_sec: EnginePair,
    pow_hash_per_sec: PowPair,
    fullbfl_rounds_per_sec: EnginePair,
    fullbfl_crypto_share: CryptoShare,
}

#[derive(Debug, Clone, Serialize)]
struct SmokeReport {
    description: String,
    ml: MlReport,
    crypto: CryptoReport,
    pr3: Pr3Report,
    pr4: Pr4Report,
    pr5: Pr5Report,
    pr6: Pr6Report,
    pr7: Pr7Report,
    pr8: Pr8Report,
    pr10: Pr10Report,
}

// ---------------------------------------------------------------------------
// Learning substrate (PR 1 metrics).
// ---------------------------------------------------------------------------

fn local_sgd_rate(train: &Dataset, reference: bool, reps: usize) -> f64 {
    engine::set_reference_mode(reference);
    let kind = ModelKind::default_mnist();
    let config = LocalTrainingConfig {
        epochs: 5,
        batch_size: 10,
        learning_rate: 0.01,
        proximal_mu: 0.0,
    };
    // Shard size matches the paper's per-client reality (6000 training
    // samples across 100 workers, Section 5.1): Procedure-I always runs
    // over a small local shard, not the pooled dataset.
    let shard: Vec<usize> = (0..train.len().min(100)).collect();
    let mut scratch = Scratch::new();
    let samples_per_rep = (config.epochs * shard.len()) as f64;
    let result = rate(samples_per_rep, reps, || {
        let mut rng = StdRng::seed_from_u64(7);
        let mut model: AnyModel = kind.build(&mut rng);
        black_box(train_local_with_scratch(
            &mut model,
            &train.features,
            &train.labels,
            &shard,
            &config,
            &mut rng,
            &mut scratch,
        ));
    });
    engine::set_reference_mode(false);
    result
}

fn eval_rate(test: &Dataset, reference: bool, reps: usize) -> f64 {
    engine::set_reference_mode(reference);
    let mut rng = StdRng::seed_from_u64(7);
    let model: AnyModel = ModelKind::default_mnist().build(&mut rng);
    let result = rate(test.len() as f64, reps, || {
        black_box(metrics::accuracy(
            &model,
            &test.features,
            &test.labels,
            None,
        ));
    });
    engine::set_reference_mode(false);
    result
}

fn fig5_sim_rate(data: &(Dataset, Dataset), reference: bool, reps: usize) -> f64 {
    engine::set_reference_mode(reference);
    // Figure 5 sweeps the learning rate over full FAIR-BFL runs; one
    // representative point of that sweep is the end-to-end workload,
    // sized so each round carries the paper's E=5 local epochs over
    // realistic shards (smoke scale shrinks training to the point where
    // fixed per-run costs like RSA key provisioning dominate).
    let mut config = system_config(SystemLabel::Fair, Scale::Smoke);
    config.fl.local.learning_rate = 0.10;
    config.fl.local.epochs = 5;
    config.fl.rounds = 4;
    // RSA sign/verify takes the same wall-clock in both engine modes and
    // (at this scale) would bury the learning substrate under constant
    // crypto cost; it is switched off so the measurement isolates what
    // this benchmark tracks. The FullBfl metric below measures the
    // signatures-on workload.
    config.verify_signatures = false;
    let rounds = config.fl.rounds as f64;
    let result = rate(rounds, reps, || {
        black_box(
            BflSimulation::new(config)
                .run(&data.0, &data.1)
                .expect("simulation completes"),
        );
    });
    engine::set_reference_mode(false);
    result
}

fn ml_section(data: &(Dataset, Dataset), reps: usize) -> MlReport {
    let (train, test) = data;

    eprintln!("measuring local SGD ({reps} reps per mode)...");
    let sgd = Measurement::from_rates(
        local_sgd_rate(train, false, reps),
        local_sgd_rate(train, true, reps),
    );
    eprintln!(
        "  batched {:>12.0} samples/s | reference {:>12.0} samples/s | {:.2}x",
        sgd.batched, sgd.reference, sgd.speedup
    );

    eprintln!("measuring evaluation ({reps} reps per mode)...");
    let eval = Measurement::from_rates(eval_rate(test, false, reps), eval_rate(test, true, reps));
    eprintln!(
        "  batched {:>12.0} samples/s | reference {:>12.0} samples/s | {:.2}x",
        eval.batched, eval.reference, eval.speedup
    );

    eprintln!("measuring fig5-style end-to-end simulation ({reps} reps per mode)...");
    let sim = Measurement::from_rates(
        fig5_sim_rate(data, false, reps),
        fig5_sim_rate(data, true, reps),
    );
    eprintln!(
        "  batched {:>8.3} rounds/s | reference {:>8.3} rounds/s | {:.2}x",
        sim.batched, sim.reference, sim.speedup
    );

    MlReport {
        description: "Batched GEMM engine vs per-sample reference path, same process/machine"
            .to_string(),
        local_sgd_samples_per_sec: sgd,
        eval_samples_per_sec: eval,
        fig5_sim_wall_clock_speedup: sim.speedup,
        fig5_sim_rounds_per_sec: sim,
    }
}

// ---------------------------------------------------------------------------
// Ledger substrate (PR 2 metrics).
// ---------------------------------------------------------------------------

fn keygen_rate(modulus_bits: usize, reference: bool, reps: usize) -> f64 {
    crypto_engine::set_reference_mode(reference);
    // Reseed per repetition: prime-search length is geometrically
    // distributed, so every rep must walk the identical candidate
    // sequence or best-of-reps would measure the luckiest draw instead
    // of the engine.
    let result = rate(1.0, reps, || {
        let mut rng = StdRng::seed_from_u64(0x2B2B);
        black_box(RsaKeyPair::generate(&mut rng, modulus_bits).expect("keygen"));
    });
    crypto_engine::set_reference_mode(false);
    result
}

fn sign_rate(pair: &RsaKeyPair, messages: usize, reference: bool, reps: usize) -> f64 {
    crypto_engine::set_reference_mode(reference);
    let payloads: Vec<Vec<u8>> = (0..messages)
        .map(|i| format!("gradient upload {i} for Procedure-II").into_bytes())
        .collect();
    let result = rate(messages as f64, reps, || {
        for (i, payload) in payloads.iter().enumerate() {
            black_box(sign_message(i as u64, payload, &pair.private));
        }
    });
    crypto_engine::set_reference_mode(false);
    result
}

fn verify_rate(pair: &RsaKeyPair, messages: usize, reference: bool, reps: usize) -> f64 {
    let signed: Vec<_> = (0..messages)
        .map(|i| {
            sign_message(
                i as u64,
                format!("gradient upload {i}").as_bytes(),
                &pair.private,
            )
        })
        .collect();
    crypto_engine::set_reference_mode(reference);
    let result = rate(messages as f64, reps, || {
        for msg in &signed {
            verify_message(msg, &pair.public).expect("signature verifies");
        }
    });
    crypto_engine::set_reference_mode(false);
    result
}

fn pow_hash_rate(nonces: u64, midstate: bool, reps: usize) -> f64 {
    let genesis = Block::genesis();
    let header = Block::candidate(&genesis, vec![], 12345, 1 << 20, 7).header;
    if midstate {
        // One prefix compression per attempt, one padded block per nonce.
        rate(nonces as f64, reps, || {
            let mid = header.pow_midstate();
            for nonce in 0..nonces {
                black_box(mid.hash_with_nonce(nonce));
            }
        })
    } else {
        // The seed path: serialize and hash all 104 header bytes per nonce.
        rate(nonces as f64, reps, || {
            for nonce in 0..nonces {
                black_box(header.hash_with_nonce(nonce));
            }
        })
    }
}

fn fullbfl_rate(
    data: &(Dataset, Dataset),
    rounds: usize,
    signatures: bool,
    reference: bool,
    reps: usize,
) -> (f64, f64) {
    crypto_engine::set_reference_mode(reference);
    // The workload the ROADMAP open item flagged: a smoke-scale FAIR
    // run with every gradient upload signed and miner-verified.
    let mut config = system_config(SystemLabel::Fair, Scale::Smoke);
    config.fl.rounds = rounds;
    config.verify_signatures = signatures;
    let seconds = best_seconds(reps, || {
        black_box(
            BflSimulation::new(config)
                .run(&data.0, &data.1)
                .expect("simulation completes"),
        );
    });
    crypto_engine::set_reference_mode(false);
    (rounds as f64 / seconds, seconds)
}

struct CryptoScale {
    modulus_bits: usize,
    sign_messages: usize,
    verify_messages: usize,
    pow_nonces: u64,
    fullbfl_rounds: usize,
    /// Reference keygen runs a full prime search per repetition; its rep
    /// count is capped separately because one 1024-bit reference keygen
    /// costs seconds.
    reference_keygen_reps: usize,
}

fn crypto_section(data: &(Dataset, Dataset), reps: usize, scale: &CryptoScale) -> CryptoReport {
    let bits = scale.modulus_bits;

    eprintln!("measuring RSA keygen at {bits} bits ({reps} fast reps)...");
    let keygen = EnginePair::from_rates(
        keygen_rate(bits, false, reps),
        keygen_rate(bits, true, scale.reference_keygen_reps),
    );
    eprintln!(
        "  fast {:>10.2} keys/s | reference {:>10.4} keys/s | {:.1}x",
        keygen.fast, keygen.reference, keygen.speedup
    );

    let mut rng = StdRng::seed_from_u64(0x51_6E);
    let pair = RsaKeyPair::generate(&mut rng, bits).expect("bench keypair");

    eprintln!("measuring RSA sign at {bits} bits ({reps} reps per mode)...");
    let sign = EnginePair::from_rates(
        sign_rate(&pair, scale.sign_messages, false, reps),
        sign_rate(&pair, scale.sign_messages, true, reps),
    );
    eprintln!(
        "  fast {:>10.1} sig/s | reference {:>10.2} sig/s | {:.1}x",
        sign.fast, sign.reference, sign.speedup
    );

    eprintln!("measuring RSA verify at {bits} bits ({reps} reps per mode)...");
    let verify = EnginePair::from_rates(
        verify_rate(&pair, scale.verify_messages, false, reps),
        verify_rate(&pair, scale.verify_messages, true, reps),
    );
    eprintln!(
        "  fast {:>10.0} verif/s | reference {:>10.1} verif/s | {:.1}x",
        verify.fast, verify.reference, verify.speedup
    );

    eprintln!(
        "measuring PoW hash rate over {} nonces ({reps} reps per path)...",
        scale.pow_nonces
    );
    let midstate = pow_hash_rate(scale.pow_nonces, true, reps);
    let full_header = pow_hash_rate(scale.pow_nonces, false, reps);
    let pow = PowPair {
        midstate,
        full_header,
        speedup: midstate / full_header,
    };
    eprintln!(
        "  midstate {:>12.0} hash/s | full header {:>12.0} hash/s | {:.2}x",
        pow.midstate, pow.full_header, pow.speedup
    );

    eprintln!(
        "measuring FullBfl smoke run with signatures on ({} rounds, {reps} reps per mode)...",
        scale.fullbfl_rounds
    );
    let (fullbfl_fast, fast_seconds) = fullbfl_rate(data, scale.fullbfl_rounds, true, false, reps);
    let (fullbfl_ref, _) = fullbfl_rate(data, scale.fullbfl_rounds, true, true, reps);
    let fullbfl = EnginePair::from_rates(fullbfl_fast, fullbfl_ref);
    eprintln!(
        "  fast {:>8.3} rounds/s | reference {:>8.3} rounds/s | {:.2}x",
        fullbfl.fast, fullbfl.reference, fullbfl.speedup
    );

    let (_, off_seconds) = fullbfl_rate(data, scale.fullbfl_rounds, false, false, reps);
    let share = CryptoShare {
        signatures_on_seconds: fast_seconds,
        signatures_off_seconds: off_seconds,
        crypto_share: (fast_seconds - off_seconds).max(0.0) / fast_seconds,
    };
    eprintln!(
        "  crypto share of FullBfl wall-clock: {:.1}% (was ~97% on the seed path)",
        share.crypto_share * 100.0
    );

    CryptoReport {
        description: "Montgomery/CRT crypto engine vs retained seed paths; PoW midstate vs \
                      full-header hashing, same process/machine"
            .to_string(),
        modulus_bits: bits,
        keygen_per_sec: keygen,
        sign_per_sec: sign,
        verify_per_sec: verify,
        pow_hash_per_sec: pow,
        fullbfl_rounds_per_sec: fullbfl,
        fullbfl_crypto_share: share,
    }
}

// ---------------------------------------------------------------------------
// u64-limb bigint core + parallel verification (PR 3 metrics).
// ---------------------------------------------------------------------------

/// Fast vs reference rates of the bigint micro-operations.
#[derive(Debug, Clone, Serialize)]
struct BigintReport {
    /// Montgomery modpow vs square-and-multiply: 64-bit exponent at the
    /// section's modulus width (the reference path bounds what a bench
    /// budget affords at full exponents).
    modpow_per_sec: EnginePair,
    /// Knuth Algorithm D vs binary long division: a double-width
    /// dividend over a modulus-width divisor.
    div_rem_per_sec: EnginePair,
}

/// Parallel vs serial verification of one round's signature batch.
#[derive(Debug, Clone, Serialize)]
struct VerifyBatchReport {
    batch: usize,
    threads: usize,
    parallel_per_sec: f64,
    serial_per_sec: f64,
    speedup: f64,
}

/// Current engine rates against the numbers recorded in `BENCH_PR2.json`
/// (the 32-bit-limb engine, same machine class).
#[derive(Debug, Clone, Serialize)]
struct Pr2Comparison {
    pr2_sign_per_sec: f64,
    pr2_verify_per_sec: f64,
    sign_speedup_vs_pr2: f64,
    verify_speedup_vs_pr2: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Pr3Report {
    description: String,
    modulus_bits: usize,
    bigint: BigintReport,
    sign_per_sec: EnginePair,
    verify_per_sec: EnginePair,
    verify_batch: VerifyBatchReport,
    vs_pr2: Option<Pr2Comparison>,
    fullbfl_rounds_per_sec: EnginePair,
    fullbfl_crypto_share: CryptoShare,
}

/// The slice of `BENCH_PR2.json` the comparison needs.
#[derive(Debug, Clone, Deserialize)]
struct Pr2File {
    sign_per_sec: EnginePair,
    verify_per_sec: EnginePair,
}

/// Deterministic odd modulus / base pair of the requested width.
fn bench_operands(bits: usize) -> (BigUint, BigUint) {
    let mut rng = StdRng::seed_from_u64(0xB161_0000 + bits as u64);
    let mut bytes = vec![0u8; bits / 8];
    rng.fill(&mut bytes[..]);
    let mut modulus = BigUint::from_bytes_be(&bytes);
    modulus.set_bit(0);
    modulus.set_bit(bits - 1);
    rng.fill(&mut bytes[..]);
    let base = BigUint::from_bytes_be(&bytes).rem(&modulus);
    (modulus, base)
}

fn bigint_rates(modulus_bits: usize, reps: usize) -> BigintReport {
    let (modulus, base) = bench_operands(modulus_bits);
    let exponent = BigUint::from_u64(0xF00D_FACE_CAFE_BEEF);

    let modpow_ops = 4.0;
    let modpow = |reference: bool, reps: usize| {
        crypto_engine::set_reference_mode(reference);
        let result = rate(modpow_ops, reps, || {
            for _ in 0..modpow_ops as usize {
                black_box(base.modpow(&exponent, &modulus));
            }
        });
        crypto_engine::set_reference_mode(false);
        result
    };
    let modpow_pair = EnginePair::from_rates(modpow(false, reps), modpow(true, reps));
    eprintln!(
        "  modpow ({modulus_bits}-bit modulus, 64-bit exp): fast {:>10.0} op/s | reference {:>8.1} op/s | {:.1}x",
        modpow_pair.fast, modpow_pair.reference, modpow_pair.speedup
    );

    // Double-width dividend over the modulus, the shape every reduction
    // in sign/verify takes.
    let dividend = base.mul(&modulus).add(&base);
    let div_ops = 64.0;
    let div_rem = |reference: bool, reps: usize| {
        rate(div_ops, reps, || {
            for _ in 0..div_ops as usize {
                if reference {
                    black_box(dividend.div_rem_reference(&modulus));
                } else {
                    black_box(dividend.div_rem_knuth(&modulus));
                }
            }
        })
    };
    let div_pair = EnginePair::from_rates(div_rem(false, reps), div_rem(true, reps));
    eprintln!(
        "  div_rem ({}-bit / {modulus_bits}-bit): fast {:>10.0} op/s | reference {:>8.1} op/s | {:.1}x",
        dividend.bit_len(),
        div_pair.fast,
        div_pair.reference,
        div_pair.speedup
    );

    BigintReport {
        modpow_per_sec: modpow_pair,
        div_rem_per_sec: div_pair,
    }
}

fn verify_batch_rates(pair: &RsaKeyPair, batch: usize, reps: usize) -> VerifyBatchReport {
    let signed: Vec<SignedMessage> = (0..batch)
        .map(|i| {
            sign_message(
                i as u64,
                format!("batched gradient upload {i}").as_bytes(),
                &pair.private,
            )
        })
        .collect();
    // Procedure-II's fan-out shape: independent verifications against a
    // shared public key, stitched back in order.
    let parallel = rate(batch as f64, reps, || {
        let ok = par::par_map(&signed, 1, |_, msg| {
            verify_message(msg, &pair.public).is_ok()
        });
        assert!(ok.iter().all(|&v| v));
    });
    let serial = rate(batch as f64, reps, || {
        for msg in &signed {
            verify_message(msg, &pair.public).expect("signature verifies");
        }
    });
    VerifyBatchReport {
        batch,
        threads: par::max_threads(),
        parallel_per_sec: parallel,
        serial_per_sec: serial,
        speedup: parallel / serial,
    }
}

/// The PR 3 measurements. `measured` carries an already-run
/// [`crypto_section`] at the same scale (the `all`/`smoke` modes run
/// both sections back to back): its sign/verify/FullBfl numbers are
/// reused instead of re-measured, so the shared metrics are timed once
/// per invocation.
fn pr3_section(
    data: &(Dataset, Dataset),
    reps: usize,
    scale: &CryptoScale,
    measured: Option<&CryptoReport>,
) -> Pr3Report {
    let bits = scale.modulus_bits;
    eprintln!("measuring bigint micro-operations at {bits} bits ({reps} reps per mode)...");
    let bigint = bigint_rates(bits, reps);

    let mut rng = StdRng::seed_from_u64(0x51_6E);
    let pair = RsaKeyPair::generate(&mut rng, bits).expect("bench keypair");

    let sign = match measured {
        Some(crypto) => crypto.sign_per_sec.clone(),
        None => {
            eprintln!("measuring RSA sign at {bits} bits ({reps} reps per mode)...");
            let sign = EnginePair::from_rates(
                sign_rate(&pair, scale.sign_messages, false, reps),
                sign_rate(&pair, scale.sign_messages, true, reps),
            );
            eprintln!(
                "  fast {:>10.1} sig/s | reference {:>10.2} sig/s | {:.1}x",
                sign.fast, sign.reference, sign.speedup
            );
            sign
        }
    };

    let verify = match measured {
        Some(crypto) => crypto.verify_per_sec.clone(),
        None => {
            eprintln!("measuring RSA verify at {bits} bits ({reps} reps per mode)...");
            let verify = EnginePair::from_rates(
                verify_rate(&pair, scale.verify_messages, false, reps),
                verify_rate(&pair, scale.verify_messages, true, reps),
            );
            eprintln!(
                "  fast {:>10.0} verif/s | reference {:>10.1} verif/s | {:.1}x",
                verify.fast, verify.reference, verify.speedup
            );
            verify
        }
    };

    eprintln!("measuring parallel verify batch ({reps} reps per mode)...");
    let verify_batch = verify_batch_rates(&pair, scale.verify_messages.max(32), reps);
    eprintln!(
        "  parallel {:>10.0} verif/s ({} threads) | serial {:>10.0} verif/s | {:.2}x",
        verify_batch.parallel_per_sec,
        verify_batch.threads,
        verify_batch.serial_per_sec,
        verify_batch.speedup
    );

    // The PR 2 record only matches at the tracked modulus size; smoke
    // runs (256-bit) skip the comparison.
    let vs_pr2 = if bits == DEFAULT_MODULUS_BITS {
        std::fs::read_to_string("BENCH_PR2.json")
            .ok()
            .and_then(|json| serde_json::from_str::<Pr2File>(&json).ok())
            .map(|pr2| {
                let comparison = Pr2Comparison {
                    pr2_sign_per_sec: pr2.sign_per_sec.fast,
                    pr2_verify_per_sec: pr2.verify_per_sec.fast,
                    sign_speedup_vs_pr2: sign.fast / pr2.sign_per_sec.fast,
                    verify_speedup_vs_pr2: verify.fast / pr2.verify_per_sec.fast,
                };
                eprintln!(
                    "  vs PR2 engine: sign {:.2}x, verify {:.2}x",
                    comparison.sign_speedup_vs_pr2, comparison.verify_speedup_vs_pr2
                );
                comparison
            })
    } else {
        None
    };
    if vs_pr2.is_none() {
        eprintln!("  (no PR2 comparison: BENCH_PR2.json missing or modulus size differs)");
    }

    let (fullbfl, share) = match measured {
        Some(crypto) => (
            crypto.fullbfl_rounds_per_sec.clone(),
            crypto.fullbfl_crypto_share.clone(),
        ),
        None => {
            eprintln!(
                "measuring FullBfl smoke run with signatures on ({} rounds, {reps} reps per mode)...",
                scale.fullbfl_rounds
            );
            let (fullbfl_fast, fast_seconds) =
                fullbfl_rate(data, scale.fullbfl_rounds, true, false, reps);
            let (fullbfl_ref, _) = fullbfl_rate(data, scale.fullbfl_rounds, true, true, reps);
            let fullbfl = EnginePair::from_rates(fullbfl_fast, fullbfl_ref);
            let (_, off_seconds) = fullbfl_rate(data, scale.fullbfl_rounds, false, false, reps);
            let share = CryptoShare {
                signatures_on_seconds: fast_seconds,
                signatures_off_seconds: off_seconds,
                crypto_share: (fast_seconds - off_seconds).max(0.0) / fast_seconds,
            };
            eprintln!(
                "  fast {:>8.3} rounds/s | reference {:>8.3} rounds/s | crypto share {:.1}% (was ~70% after PR 2)",
                fullbfl.fast,
                fullbfl.reference,
                share.crypto_share * 100.0
            );
            (fullbfl, share)
        }
    };

    Pr3Report {
        description: "u64-limb bigint engine with cached Montgomery contexts and parallel \
                      Procedure-II verification vs retained reference paths, same \
                      process/machine"
            .to_string(),
        modulus_bits: bits,
        bigint,
        sign_per_sec: sign,
        verify_per_sec: verify,
        verify_batch,
        vs_pr2,
        fullbfl_rounds_per_sec: fullbfl,
        fullbfl_crypto_share: share,
    }
}

// ---------------------------------------------------------------------------
// Scenario sweep throughput (PR 4 metrics).
// ---------------------------------------------------------------------------

/// Summary of one completed sweep cell.
#[derive(Debug, Clone, Serialize)]
struct SweepCellSummary {
    label: String,
    final_accuracy: f64,
    detection_rate: f64,
    mean_delay_s: f64,
}

/// Serial vs parallel throughput of the scenario-grid sweep.
#[derive(Debug, Clone, Serialize)]
struct Pr4Report {
    description: String,
    grid_cells: usize,
    rounds_per_cell: usize,
    threads: usize,
    serial_scenarios_per_sec: f64,
    parallel_scenarios_per_sec: f64,
    speedup: f64,
    cells: Vec<SweepCellSummary>,
}

fn pr4_section(data: &(Dataset, Dataset), reps: usize, rounds: usize) -> Pr4Report {
    let grid = scenario_grid(Scale::Smoke, rounds);
    let serial_runner = SweepRunner::with_threads(1);
    let parallel_runner = SweepRunner::new();

    eprintln!(
        "running the {}-cell scenario grid serially and in parallel...",
        grid.len()
    );
    // Correctness before speed: every cell completes under both runners,
    // and per-cell results are independent of sweep parallelism.
    let serial_cells = serial_runner
        .run(&grid, &data.0, &data.1)
        .expect("every grid cell completes serially");
    let parallel_cells = parallel_runner
        .run(&grid, &data.0, &data.1)
        .expect("every grid cell completes in parallel");
    assert_eq!(serial_cells.len(), grid.len());
    assert_eq!(parallel_cells.len(), grid.len());
    for (a, b) in serial_cells.iter().zip(parallel_cells.iter()) {
        assert_eq!(a.label, b.label, "sweep order is stable");
        assert_eq!(
            a.result.history, b.result.history,
            "cell `{}` must not depend on sweep parallelism",
            a.label
        );
        assert_eq!(a.result.final_params, b.result.final_params);
        assert_eq!(a.result.reward_totals, b.result.reward_totals);
    }

    eprintln!("measuring sweep throughput ({reps} reps per runner)...");
    let cells = grid.len() as f64;
    let serial_rate = rate(cells, reps, || {
        black_box(serial_runner.run(&grid, &data.0, &data.1).expect("sweep"));
    });
    let parallel_rate = rate(cells, reps, || {
        black_box(parallel_runner.run(&grid, &data.0, &data.1).expect("sweep"));
    });
    let threads = par::max_threads();
    eprintln!(
        "  serial {serial_rate:>8.2} scenarios/s | parallel {parallel_rate:>8.2} scenarios/s \
         ({threads} threads) | {:.2}x",
        parallel_rate / serial_rate
    );

    Pr4Report {
        description: "SweepRunner scenario grid (modes x anchors x strategies under the \
                      Table 2 attack), parallel fan-out vs serial loop, same process/machine"
            .to_string(),
        grid_cells: grid.len(),
        rounds_per_cell: rounds,
        threads,
        serial_scenarios_per_sec: serial_rate,
        parallel_scenarios_per_sec: parallel_rate,
        speedup: parallel_rate / serial_rate,
        cells: serial_cells
            .iter()
            .map(|cell| SweepCellSummary {
                label: cell.label.clone(),
                final_accuracy: cell.result.final_accuracy().unwrap_or(0.0),
                detection_rate: cell.result.detection.average_detection_rate(),
                mean_delay_s: cell.result.mean_delay(),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Event-driven engine: flexible block quotas (PR 5 metrics).
// ---------------------------------------------------------------------------

/// Summary of one asynchronous grid cell.
#[derive(Debug, Clone, Serialize)]
struct AsyncCellSummary {
    label: String,
    /// Simulated seconds from the start of the run to the last sealed
    /// round — the quantity the flexible block size optimizes.
    simulated_makespan_s: f64,
    mean_round_delay_s: f64,
    /// Stale uploads carried into blocks across the run.
    stale_included: usize,
    final_accuracy: f64,
}

/// Synchronous-wait vs flexible-quota comparison on the heterogeneous
/// straggler population.
#[derive(Debug, Clone, Serialize)]
struct QuotaComparison {
    rounds: usize,
    /// Quota = all participants: every block waits for the 8x straggler.
    sync_simulated_makespan_s: f64,
    /// Quota at 60% of the participants.
    flexible_simulated_makespan_s: f64,
    /// sync / flexible — how much simulated time the flexible block
    /// quota saves under stragglers.
    makespan_speedup: f64,
    /// Host wall-clock execution rates (the engine's own overhead).
    sync_rounds_per_sec: f64,
    flexible_rounds_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Pr5Report {
    description: String,
    grid_cells: usize,
    rounds_per_cell: usize,
    threads: usize,
    serial_scenarios_per_sec: f64,
    parallel_scenarios_per_sec: f64,
    speedup: f64,
    quota_comparison: QuotaComparison,
    cells: Vec<AsyncCellSummary>,
}

fn simulated_makespan(result: &bfl_core::SimulationResult) -> f64 {
    result
        .history
        .rounds
        .last()
        .map(|r| r.elapsed_s)
        .unwrap_or(0.0)
}

fn pr5_section(data: &(Dataset, Dataset), reps: usize, rounds: usize) -> Pr5Report {
    use bfl_bench::experiments::{async_grid, quota_comparison_configs};

    let grid = async_grid(Scale::Smoke, rounds);
    let serial_runner = SweepRunner::with_threads(1);
    let parallel_runner = SweepRunner::new();

    eprintln!(
        "running the {}-cell quota/latency/churn grid serially and in parallel...",
        grid.len()
    );
    // Determinism before speed: event-driven cells must not depend on
    // sweep parallelism (the acceptance contract of the event engine).
    let serial_cells = serial_runner
        .run(&grid, &data.0, &data.1)
        .expect("every async grid cell completes serially");
    let parallel_cells = parallel_runner
        .run(&grid, &data.0, &data.1)
        .expect("every async grid cell completes in parallel");
    assert_eq!(serial_cells.len(), grid.len());
    for (a, b) in serial_cells.iter().zip(parallel_cells.iter()) {
        assert_eq!(a.label, b.label, "sweep order is stable");
        assert_eq!(
            a.result.history, b.result.history,
            "event-driven cell `{}` must not depend on sweep parallelism",
            a.label
        );
        assert_eq!(a.result.final_params, b.result.final_params);
        assert_eq!(a.result.reward_totals, b.result.reward_totals);
    }

    eprintln!("measuring async sweep throughput ({reps} reps per runner)...");
    let cells_per_run = grid.len() as f64;
    let serial_rate = rate(cells_per_run, reps, || {
        black_box(serial_runner.run(&grid, &data.0, &data.1).expect("sweep"));
    });
    let parallel_rate = rate(cells_per_run, reps, || {
        black_box(parallel_runner.run(&grid, &data.0, &data.1).expect("sweep"));
    });

    // The headline number: simulated makespan with and without the
    // flexible block quota on the same straggler-heavy population.
    eprintln!("comparing synchronous-wait vs flexible-quota makespan ({reps} reps)...");
    let (waiting, flexible) = quota_comparison_configs(Scale::Smoke, rounds.max(3));
    let comparison_rounds = waiting.fl.rounds;
    let run_one = |config: bfl_core::BflConfig| {
        bfl_core::Scenario::from_config(config)
            .expect("comparison scenario is valid")
            .run(&data.0, &data.1)
            .expect("comparison run completes")
    };
    let sync_result = run_one(waiting);
    let flexible_result = run_one(flexible);
    let sync_makespan = simulated_makespan(&sync_result);
    let flexible_makespan = simulated_makespan(&flexible_result);
    assert!(
        flexible_makespan < sync_makespan,
        "the flexible quota must undercut the straggler-gated makespan \
         ({flexible_makespan:.2}s vs {sync_makespan:.2}s)"
    );
    let sync_wall = best_seconds(reps, || {
        black_box(run_one(waiting));
    });
    let flexible_wall = best_seconds(reps, || {
        black_box(run_one(flexible));
    });
    let comparison = QuotaComparison {
        rounds: comparison_rounds,
        sync_simulated_makespan_s: sync_makespan,
        flexible_simulated_makespan_s: flexible_makespan,
        makespan_speedup: sync_makespan / flexible_makespan,
        sync_rounds_per_sec: comparison_rounds as f64 / sync_wall,
        flexible_rounds_per_sec: comparison_rounds as f64 / flexible_wall,
    };
    eprintln!(
        "  simulated makespan: sync-wait {:.2}s | flexible-quota {:.2}s | {:.2}x \
         (wall-clock {:.1} vs {:.1} rounds/s)",
        comparison.sync_simulated_makespan_s,
        comparison.flexible_simulated_makespan_s,
        comparison.makespan_speedup,
        comparison.sync_rounds_per_sec,
        comparison.flexible_rounds_per_sec,
    );

    Pr5Report {
        description: "Event-driven engine: quota/latency/churn grid through SweepRunner \
                      (parallel == serial asserted) and synchronous-wait vs flexible-quota \
                      simulated makespan on a heterogeneous straggler population, same \
                      process/machine"
            .to_string(),
        grid_cells: grid.len(),
        rounds_per_cell: rounds,
        threads: par::max_threads(),
        serial_scenarios_per_sec: serial_rate,
        parallel_scenarios_per_sec: parallel_rate,
        speedup: parallel_rate / serial_rate,
        quota_comparison: comparison,
        cells: serial_cells
            .iter()
            .map(|cell| AsyncCellSummary {
                label: cell.label.clone(),
                simulated_makespan_s: simulated_makespan(&cell.result),
                mean_round_delay_s: cell.result.mean_delay(),
                stale_included: cell.result.outcomes.iter().map(|o| o.stale_included).sum(),
                final_accuracy: cell.result.final_accuracy().unwrap_or(0.0),
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Fault injection: the resilience curve (PR 6 metrics).
// ---------------------------------------------------------------------------

/// One point of the resilience curve: what a loss-rate × partition cell
/// costs in accuracy, simulated time, and delivered uploads.
#[derive(Debug, Clone, Serialize)]
struct FaultCellSummary {
    label: String,
    final_accuracy: f64,
    simulated_makespan_s: f64,
    mean_round_delay_s: f64,
    /// Uploads that entered aggregations across the run — what survived
    /// the drops, crashes, and strandings.
    total_participants: usize,
    /// Stale uploads carried into blocks (salvaged orphans included).
    stale_included: usize,
    /// Total simulated seconds spent resolving partition-driven forks.
    fork_resolution_s: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Pr6Report {
    description: String,
    grid_cells: usize,
    rounds_per_cell: usize,
    threads: usize,
    serial_scenarios_per_sec: f64,
    parallel_scenarios_per_sec: f64,
    speedup: f64,
    /// The resilience curve, one row per loss-rate × partition cell; the
    /// `drop-00/joined` row is the fault-free baseline.
    cells: Vec<FaultCellSummary>,
}

fn pr6_section(data: &(Dataset, Dataset), reps: usize, rounds: usize) -> Pr6Report {
    use bfl_bench::experiments::fault_grid;

    let grid = fault_grid(Scale::Smoke, rounds);
    let serial_runner = SweepRunner::with_threads(1);
    let parallel_runner = SweepRunner::new();

    eprintln!(
        "running the {}-cell loss x partition fault grid across thread counts...",
        grid.len()
    );
    // The determinism gate under *active* faults: drop coins, retry
    // jitter, and fork healing must replay identically no matter how the
    // sweep is parallelized — the fault stream is per-run, so thread
    // count cannot leak into the coin-flips.
    let serial_cells = serial_runner
        .run(&grid, &data.0, &data.1)
        .expect("every fault grid cell completes serially");
    assert_eq!(serial_cells.len(), grid.len());
    for threads in [0usize, 2] {
        let cells = SweepRunner::with_threads(threads)
            .run(&grid, &data.0, &data.1)
            .expect("every fault grid cell completes in parallel");
        for (a, b) in serial_cells.iter().zip(cells.iter()) {
            assert_eq!(a.label, b.label, "sweep order is stable");
            assert_eq!(
                a.result.history, b.result.history,
                "faulted cell `{}` must not depend on sweep parallelism",
                a.label
            );
            assert_eq!(a.result.final_params, b.result.final_params);
            assert_eq!(a.result.reward_totals, b.result.reward_totals);
        }
    }

    eprintln!("measuring fault sweep throughput ({reps} reps per runner)...");
    let cells_per_run = grid.len() as f64;
    let serial_rate = rate(cells_per_run, reps, || {
        black_box(serial_runner.run(&grid, &data.0, &data.1).expect("sweep"));
    });
    let parallel_rate = rate(cells_per_run, reps, || {
        black_box(parallel_runner.run(&grid, &data.0, &data.1).expect("sweep"));
    });
    let threads = par::max_threads();
    eprintln!(
        "  serial {serial_rate:>8.2} scenarios/s | parallel {parallel_rate:>8.2} scenarios/s \
         ({threads} threads) | {:.2}x",
        parallel_rate / serial_rate
    );

    let cells: Vec<FaultCellSummary> = serial_cells
        .iter()
        .map(|cell| FaultCellSummary {
            label: cell.label.clone(),
            final_accuracy: cell.result.final_accuracy().unwrap_or(0.0),
            simulated_makespan_s: simulated_makespan(&cell.result),
            mean_round_delay_s: cell.result.mean_delay(),
            total_participants: cell.result.outcomes.iter().map(|o| o.participants).sum(),
            stale_included: cell.result.outcomes.iter().map(|o| o.stale_included).sum(),
            fork_resolution_s: cell
                .result
                .outcomes
                .iter()
                .map(|o| o.breakdown.t_fork)
                .sum(),
        })
        .collect();
    for cell in &cells {
        eprintln!(
            "  {:<20} acc {:.3} | makespan {:>6.2}s | delivered {:>3} | stale {:>2} | \
             t_fork {:>5.2}s",
            cell.label,
            cell.final_accuracy,
            cell.simulated_makespan_s,
            cell.total_participants,
            cell.stale_included,
            cell.fork_resolution_s,
        );
    }
    // The curve must actually bend: faults cost delivered uploads
    // relative to the fault-free baseline, and partition cells pay fork
    // resolution time.
    let baseline = cells
        .iter()
        .find(|c| c.label == "drop-00/joined")
        .expect("the fault-free corner is part of the grid");
    assert!(
        cells
            .iter()
            .filter(|c| c.label != baseline.label)
            .any(
                |c| c.total_participants < baseline.total_participants || c.fork_resolution_s > 0.0
            ),
        "active faults must leave a measurable mark on the curve"
    );

    Pr6Report {
        description: "Fault injection: loss-rate x partition grid through SweepRunner \
                      (bit-identical across thread counts asserted while faults are active), \
                      with the per-cell resilience curve — accuracy, simulated makespan, \
                      delivered uploads, salvaged stale carry-over, and fork resolution time, \
                      same process/machine"
            .to_string(),
        grid_cells: grid.len(),
        rounds_per_cell: rounds,
        threads,
        serial_scenarios_per_sec: serial_rate,
        parallel_scenarios_per_sec: parallel_rate,
        speedup: parallel_rate / serial_rate,
        cells,
    }
}

/// One rung of the population ladder: a full run of one configuration
/// with its wall-clock and heap high-water.
#[derive(Debug, Clone, Serialize)]
struct PopulationCell {
    label: String,
    population: usize,
    participants_per_round: usize,
    rounds: usize,
    signed: bool,
    final_accuracy: f64,
    wall_seconds: f64,
    rounds_per_sec: f64,
    peak_heap_mib: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Pr7Report {
    description: String,
    chunk: usize,
    /// Heap high-water of the 1M-population cell over the 10k-population
    /// cell at identical participants per round — the flatness claim.
    peak_ratio_million_over_tenk: f64,
    /// Wall-clock of the signed 1M-population cell over the signed
    /// 10k-population cell (lazy keygen tracks participants).
    signed_wall_ratio_million_over_tenk: f64,
    cells: Vec<PopulationCell>,
}

/// Runs one population-ladder configuration to completion, bracketed by
/// the counting allocator's peak reset.
fn run_population_cell(
    label: &str,
    config: BflConfig,
    data: &(Dataset, Dataset),
    signed: bool,
) -> PopulationCell {
    let population = config.fl.clients;
    let participants = config.fl.selected_per_round();
    let rounds = config.fl.rounds;
    let scenario = Scenario::from_config(config).expect("population cell is valid");
    ALLOC.reset_peak();
    let start = Instant::now();
    let result = scenario
        .run(&data.0, &data.1)
        .expect("population cell completes");
    let wall_seconds = start.elapsed().as_secs_f64();
    let peak_heap_mib = ALLOC.peak_bytes() as f64 / (1024.0 * 1024.0);
    let cell = PopulationCell {
        label: label.to_string(),
        population,
        participants_per_round: participants,
        rounds,
        signed,
        final_accuracy: result.final_accuracy().unwrap_or(0.0),
        wall_seconds,
        rounds_per_sec: rounds as f64 / wall_seconds,
        peak_heap_mib,
    };
    eprintln!(
        "  {:<22} pop {:>9} | {:>5} participants | acc {:.3} | {:>7.2}s | peak {:>8.1} MiB",
        cell.label,
        cell.population,
        cell.participants_per_round,
        cell.final_accuracy,
        cell.wall_seconds,
        cell.peak_heap_mib,
    );
    cell
}

/// The PR 7 population ladder. `participants` is the per-round working
/// set of the headline cells; the 1M-population rung must stay within
/// 1.5× of the 10k-population rung's heap high-water.
fn pr7_section(
    data: &(Dataset, Dataset),
    participants: usize,
    rounds: usize,
    chunk: usize,
) -> Pr7Report {
    eprintln!("running the population ladder ({participants} participants per round)...");

    // Context rungs at a shape the materialized path can afford: the
    // PR 4–6-style eager/materialized round against lazy/streaming at the
    // same population and participants, so the report shows what the
    // restructure buys before population even grows.
    let shape = participants.min(1_000);
    let mut eager = population_scale_config(10_000, shape, rounds, chunk);
    eager.provisioning = ProvisioningMode::Eager;
    eager.aggregation = AggregationMode::Materialized;
    let streaming_small = population_scale_config(10_000, shape, rounds, chunk);

    // The headline pair: identical participants, population ×100.
    let tenk = population_scale_config(10_000.max(participants), participants, rounds, chunk);
    let million = population_scale_config(1_000_000, participants, rounds, chunk);

    // The signed companion pair: RSA on, keys derived lazily at admission.
    let signed_participants = 128.min(participants);
    let signed_tenk = population_signed_config(10_000, signed_participants, 1);
    let signed_million = population_signed_config(1_000_000, signed_participants, 1);

    let cells = vec![
        run_population_cell("eager-materialized", eager, data, false),
        run_population_cell("lazy-streaming", streaming_small, data, false),
        run_population_cell("pop-10k", tenk, data, false),
        run_population_cell("pop-1m", million, data, false),
        run_population_cell("signed-pop-10k", signed_tenk, data, true),
        run_population_cell("signed-pop-1m", signed_million, data, true),
    ];

    let peak_of = |label: &str| {
        cells
            .iter()
            .find(|c| c.label == label)
            .expect("ladder rung present")
    };
    let peak_ratio = peak_of("pop-1m").peak_heap_mib / peak_of("pop-10k").peak_heap_mib;
    let signed_wall_ratio =
        peak_of("signed-pop-1m").wall_seconds / peak_of("signed-pop-10k").wall_seconds;
    eprintln!(
        "  peak ratio 1M/10k {peak_ratio:.2} | signed wall ratio 1M/10k {signed_wall_ratio:.2}"
    );
    // The tentpole claim: per-round cost tracks participants, not
    // population. A population ×100 must not move the heap high-water by
    // more than allocator noise.
    assert!(
        peak_ratio <= 1.5,
        "1M-population heap high-water must stay within 1.5x of the 10k-population cell \
         (got {peak_ratio:.2}x)"
    );

    Pr7Report {
        description: "Population-scale rounds: implicit population with lazy O(participants) \
                      provisioning and streaming chunked Procedure-IV aggregation on the event \
                      engine, heap high-water per cell from the counting global allocator; \
                      eager/materialized context rung at the same shape, headline pair at \
                      identical participants with population x100, signed companion pair with \
                      lazy keygen, same process/machine"
            .to_string(),
        chunk,
        peak_ratio_million_over_tenk: peak_ratio,
        signed_wall_ratio_million_over_tenk: signed_wall_ratio,
        cells,
    }
}

// ---------------------------------------------------------------------------
// PR 8: batched RSA verification, lane-sharded drains, scaling curves.
// ---------------------------------------------------------------------------

/// Batched screen-then-confirm verification vs the per-upload loop, on
/// the same accept/reject mix.
#[derive(Debug, Clone, Serialize)]
struct BatchVerifyBench {
    uploads: usize,
    modulus_bits: usize,
    distinct_keys: usize,
    corrupted: usize,
    per_upload_verifies_per_sec: f64,
    batched_verifies_per_sec: f64,
    speedup: f64,
}

/// Event-drain throughput of the sharded queue against a single global
/// heap, on a commission-wave-shaped stream.
#[derive(Debug, Clone, Serialize)]
struct LaneDrainBench {
    events: usize,
    lanes: usize,
    global_heap_events_per_sec: f64,
    lane_batch_events_per_sec: f64,
    parallel_drain_events_per_sec: f64,
    batch_speedup_over_global: f64,
}

/// One thread-count row of the scaling table. Every cell asserts
/// parallel == serial bit-identity before its timer starts.
#[derive(Debug, Clone, Serialize)]
struct ScalingRow {
    threads: usize,
    sweep_scenarios_per_sec: f64,
    upload_fanout_uploads_per_sec: f64,
    mining_hashes_per_sec: f64,
    lane_drain_events_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Pr8Report {
    description: String,
    host_threads: usize,
    batched_verify: BatchVerifyBench,
    lane_drain: LaneDrainBench,
    scaling: Vec<ScalingRow>,
}

/// A 1k-upload (full scale) round's signature checks, per-upload vs
/// batched. The mix includes corrupted envelopes so the equality assert
/// covers both verdicts.
fn batched_verify_bench(uploads: usize, reps: usize) -> BatchVerifyBench {
    use bfl_crypto::{BatchVerifier, KeyStore};

    let modulus_bits = 256;
    let distinct_keys = 16.min(uploads.max(1));
    let mut store = KeyStore::new();
    let mut rng = StdRng::seed_from_u64(0xB8_2026);
    let ids: Vec<u64> = (0..distinct_keys as u64).collect();
    let pairs = store
        .provision(&mut rng, &ids, modulus_bits)
        .expect("bench keys provision");

    let mut messages: Vec<SignedMessage> = (0..uploads)
        .map(|i| {
            let id = (i % distinct_keys) as u64;
            let payload = format!("round upload {i}").into_bytes();
            sign_message(id, &payload, &pairs[&id].private)
        })
        .collect();
    // Corrupt every 17th upload so the round is a genuine accept/reject mix.
    let mut corrupted = 0;
    for message in messages.iter_mut().step_by(17).skip(1) {
        message.payload[0] ^= 0x5A;
        corrupted += 1;
    }

    let per_upload: Vec<bool> = messages.iter().map(|m| store.verify(m).is_ok()).collect();
    let refs: Vec<&SignedMessage> = messages.iter().collect();
    let mut verifier = BatchVerifier::new();
    let batched: Vec<bool> = store
        .verify_batch(&refs, &mut verifier)
        .into_iter()
        .map(|v| v.is_ok())
        .collect();
    assert_eq!(
        per_upload, batched,
        "batched verification must reach the per-upload verdicts exactly"
    );
    assert!(per_upload.iter().filter(|ok| !**ok).count() >= corrupted);

    let per_upload_rate = rate(uploads as f64, reps, || {
        for message in &messages {
            black_box(store.verify(message).is_ok());
        }
    });
    let batched_rate = rate(uploads as f64, reps, || {
        let mut verifier = BatchVerifier::new();
        black_box(store.verify_batch(&refs, &mut verifier));
    });
    let bench = BatchVerifyBench {
        uploads,
        modulus_bits,
        distinct_keys,
        corrupted,
        per_upload_verifies_per_sec: per_upload_rate,
        batched_verifies_per_sec: batched_rate,
        speedup: batched_rate / per_upload_rate,
    };
    eprintln!(
        "  batched-verify {uploads} uploads: per-upload {per_upload_rate:>9.0}/s | batched \
         {batched_rate:>9.0}/s | {:.2}x",
        bench.speedup
    );
    bench
}

/// Synthesizes a commission-wave event stream shaped like a
/// 10k-participant flexible round: one big zero-delay wave per round
/// plus spread arrivals.
fn commission_wave(events: usize) -> Vec<(f64, u64)> {
    (0..events as u64)
        .map(|i| {
            let round = i / 2_048;
            let jitter = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) % 97;
            // Half of each round's events land exactly on the round start
            // (the commission wave); the rest spread over the round.
            let time = if i % 2 == 0 {
                round as f64 * 30.0
            } else {
                round as f64 * 30.0 + jitter as f64 * 0.25
            };
            (time, i)
        })
        .collect()
}

/// Global-heap vs lane-sharded vs parallel lane drains, order-identity
/// asserted between all three before timing.
fn lane_drain_bench(events: usize, reps: usize) -> LaneDrainBench {
    use bfl_net::{merge_runs, EventQueue, DEFAULT_LANES};

    let pushes = commission_wave(events);
    let fill = |lanes: usize| {
        let mut q = EventQueue::with_lanes(lanes);
        for &(t, p) in &pushes {
            q.push(t, p);
        }
        q
    };
    let drain_pop = |mut q: EventQueue<u64>| {
        let mut order = Vec::with_capacity(events);
        while let Some(e) = q.pop() {
            order.push((e.time_s, e.seq, e.payload));
        }
        order
    };

    // Order identity across all three drain strategies.
    let global_order = drain_pop(fill(1));
    let sharded_order = drain_pop(fill(DEFAULT_LANES));
    assert_eq!(global_order, sharded_order, "sharding is invisible to pops");
    let mut batch_order = Vec::with_capacity(events);
    {
        let mut q = fill(DEFAULT_LANES);
        let mut buf = Vec::new();
        while q.pop_due_batch(&mut buf) > 0 {
            batch_order.extend(buf.drain(..).map(|e| (e.time_s, e.seq, e.payload)));
        }
    }
    assert_eq!(global_order, batch_order, "due batches preserve pop order");
    let merged: Vec<(f64, u64, u64)> = merge_runs(fill(DEFAULT_LANES).into_lane_runs_parallel(4))
        .into_iter()
        .map(|e| (e.time_s, e.seq, e.payload))
        .collect();
    assert_eq!(
        global_order, merged,
        "parallel lane drains merge identically"
    );

    let global_rate = rate(events as f64, reps, || {
        black_box(drain_pop(fill(1)));
    });
    let batch_rate = rate(events as f64, reps, || {
        let mut q = fill(DEFAULT_LANES);
        let mut buf = Vec::new();
        while q.pop_due_batch(&mut buf) > 0 {
            black_box(buf.len());
            buf.clear();
        }
    });
    let parallel_rate = rate(events as f64, reps, || {
        black_box(merge_runs(
            fill(DEFAULT_LANES).into_lane_runs_parallel(par::max_threads()),
        ));
    });
    let bench = LaneDrainBench {
        events,
        lanes: DEFAULT_LANES,
        global_heap_events_per_sec: global_rate,
        lane_batch_events_per_sec: batch_rate,
        parallel_drain_events_per_sec: parallel_rate,
        batch_speedup_over_global: batch_rate / global_rate,
    };
    eprintln!(
        "  lane-drain {events} events: global {global_rate:>10.0}/s | batched lanes \
         {batch_rate:>10.0}/s | parallel {parallel_rate:>10.0}/s | {:.2}x",
        bench.batch_speedup_over_global
    );
    bench
}

/// One scaling row: sweep, Procedure-II fan-out, mining, and lane drain
/// at an explicit thread count, each cell asserted bit-identical to its
/// serial twin before its timer starts.
fn scaling_row(
    data: &(Dataset, Dataset),
    threads: usize,
    reps: usize,
    rounds: usize,
    uploads: usize,
    events: usize,
) -> ScalingRow {
    use bfl_chain::{Block, Miner, PowConfig};
    use bfl_core::procedures::upload::upload_gradients;
    use bfl_crypto::KeyStore;
    use bfl_fl::client::LocalUpdate;
    use bfl_ml::optimizer::LocalTrainingStats;
    use bfl_net::{merge_runs, EventQueue, Topology, DEFAULT_LANES};

    // Sweep cell.
    let grid = scenario_grid(Scale::Smoke, rounds);
    let serial_cells = SweepRunner::with_threads(1)
        .run(&grid, &data.0, &data.1)
        .expect("serial sweep completes");
    let runner = SweepRunner::with_threads(threads);
    let cells = runner
        .run(&grid, &data.0, &data.1)
        .expect("threaded sweep completes");
    for (a, b) in serial_cells.iter().zip(cells.iter()) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.result.history, b.result.history, "threads={threads}");
        assert_eq!(a.result.final_params, b.result.final_params);
        assert_eq!(a.result.reward_totals, b.result.reward_totals);
    }
    let sweep_rate = rate(grid.len() as f64, reps, || {
        black_box(runner.run(&grid, &data.0, &data.1).expect("sweep"));
    });

    // Procedure-II fan-out cell: sign + verify a round of uploads through
    // `upload_gradients` under the scoped thread limit.
    let mut store = KeyStore::new();
    let mut rng = StdRng::seed_from_u64(0x9A11);
    let ids: Vec<u64> = (0..uploads as u64).collect();
    let pairs = store
        .provision(&mut rng, &ids, 192)
        .expect("fan-out keys provision");
    let updates: Vec<LocalUpdate> = ids
        .iter()
        .map(|&id| LocalUpdate {
            client_id: id,
            params: vec![id as f64, 0.5, -0.5, 1.0],
            forged: false,
            stats: LocalTrainingStats {
                steps: 1,
                final_epoch_loss: 0.1,
                update_norm: 1.0,
            },
        })
        .collect();
    let topology = Topology::new(uploads.max(1), 3);
    let run_fanout = |limit: usize| {
        par::with_thread_limit(limit, || {
            let mut rng = StdRng::seed_from_u64(0xFA0);
            upload_gradients(&updates, &topology, Some(&pairs), Some(&store), &mut rng)
        })
    };
    let serial_outcome = run_fanout(1);
    let outcome = run_fanout(threads);
    assert_eq!(
        serial_outcome.per_miner, outcome.per_miner,
        "Procedure-II fan-out must be bit-identical at threads={threads}"
    );
    assert_eq!(serial_outcome.rejected, outcome.rejected);
    let fanout_rate = rate(uploads as f64, reps, || {
        black_box(run_fanout(threads));
    });

    // Mining cell: the deterministic parallel nonce search must seal the
    // identical block at every worker count.
    let miner = Miner::new(1, 1_000.0);
    let genesis = Block::genesis();
    let budget = 1 << 16;
    let mine = |workers: usize| {
        let config = PowConfig::new(512).with_mining_threads(workers);
        let mut candidate = Block::candidate(&genesis, vec![], 99, 1 << 18, miner.id);
        let hashes = miner.mine_block(&mut candidate, &config, budget);
        (hashes, candidate.header.nonce)
    };
    let (serial_hashes, serial_nonce) = mine(1);
    let (hashes, nonce) = mine(threads);
    assert_eq!(serial_nonce, nonce, "mining must seal the same nonce");
    assert_eq!(serial_hashes, hashes);
    let spent = serial_hashes.expect("budget finds a proof at this difficulty") as f64;
    let mining_rate = rate(spent, reps, || {
        black_box(mine(threads));
    });

    // Lane-drain cell.
    let pushes = commission_wave(events);
    let fill = || {
        let mut q = EventQueue::with_lanes(DEFAULT_LANES);
        for &(t, p) in &pushes {
            q.push(t, p);
        }
        q
    };
    let serial_runs = fill().into_lane_runs();
    assert_eq!(
        fill().into_lane_runs_parallel(threads),
        serial_runs,
        "lane drains must be bit-identical at threads={threads}"
    );
    let drain_rate = rate(events as f64, reps, || {
        black_box(merge_runs(fill().into_lane_runs_parallel(threads)));
    });

    let row = ScalingRow {
        threads,
        sweep_scenarios_per_sec: sweep_rate,
        upload_fanout_uploads_per_sec: fanout_rate,
        mining_hashes_per_sec: mining_rate,
        lane_drain_events_per_sec: drain_rate,
    };
    eprintln!(
        "  threads {threads}: sweep {sweep_rate:>7.2}/s | proc-II {fanout_rate:>8.0}/s | \
         mining {mining_rate:>9.0} H/s | lane-drain {drain_rate:>10.0}/s"
    );
    row
}

/// The PR 8 speed-tier section: batched verification, sharded event
/// drains, and the per-thread-count scaling table.
fn pr8_section(
    data: &(Dataset, Dataset),
    reps: usize,
    rounds: usize,
    uploads: usize,
    events: usize,
) -> Pr8Report {
    eprintln!("measuring batched RSA verification ({uploads} uploads)...");
    let batched_verify = batched_verify_bench(uploads, reps);
    eprintln!("measuring event-lane drains ({events} events)...");
    let lane_drain = lane_drain_bench(events, reps);
    eprintln!("running the thread-count scaling table...");
    let scaling: Vec<ScalingRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            par::with_thread_limit(threads, || {
                scaling_row(data, threads, reps, rounds, 64.min(uploads), events)
            })
        })
        .collect();

    Pr8Report {
        description: "Next speed tier: batched screen-then-confirm RSA verification over a \
                      shared Montgomery workspace vs the per-upload loop (decisions asserted \
                      identical), lane-sharded event queue drains vs the global heap (pop order \
                      asserted identical), and sweep / Procedure-II / mining / lane-drain \
                      fan-outs at thread counts {1,2,4,8} with parallel == serial bit-identity \
                      asserted per cell, same process/machine"
            .to_string(),
        host_threads: par::max_threads(),
        batched_verify,
        lane_drain,
        scaling,
    }
}

// ---------------------------------------------------------------------------
// SIMD compute tier + allocation-free steady state (PR 10 metrics).
// ---------------------------------------------------------------------------

/// Scalar-tier vs SIMD-tier rates for one workload. Both tiers run on the
/// batched engine; `bfl_ml::simd::set_enabled` picks the tier, exactly as
/// the `BFL_SIMD` environment override does.
#[derive(Debug, Clone, Serialize)]
struct TierPair {
    scalar: f64,
    simd: f64,
    speedup: f64,
}

impl TierPair {
    fn from_rates(simd: f64, scalar: f64) -> Self {
        TierPair {
            scalar,
            simd,
            speedup: simd / scalar,
        }
    }
}

/// One dispatched kernel at one representative shape, both tiers.
#[derive(Debug, Clone, Serialize)]
struct KernelRow {
    kernel: String,
    scalar_calls_per_sec: f64,
    simd_calls_per_sec: f64,
    speedup: f64,
}

/// The steady-state allocation contract of the flexible engine, measured
/// in-process with the counting allocator.
#[derive(Debug, Clone, Serialize)]
struct SteadyAllocReport {
    warmup_rounds: usize,
    measured_rounds: usize,
    /// Largest per-round net live-byte growth over the measured window
    /// (asserted zero).
    max_net_bytes_per_round: isize,
    /// Largest per-round net live-block growth (asserted zero).
    max_net_blocks_per_round: isize,
    /// Mean allocation events per measured round — transient churn the
    /// net-zero contract permits.
    mean_allocation_events_per_round: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Pr10Report {
    description: String,
    simd_hardware_supported: bool,
    /// True when the build already had AVX2 in the compiler baseline
    /// (`target-cpu=native` on an AVX2 host): the "scalar" tier is then
    /// autovectorized and the hand tier's margin is structural only. On
    /// portable builds (`RUSTFLAGS=""`) the same hand tier measures
    /// 16-42x on the kernels and >15x on both composites, because the
    /// portable scalar baseline cannot assume FMA.
    avx2_in_compiler_baseline: bool,
    kernels: Vec<KernelRow>,
    local_sgd_samples_per_sec: TierPair,
    eval_samples_per_sec: TierPair,
    signed_fullbfl_rounds_per_sec: TierPair,
    fullbfl_crypto_share_scalar_tier: CryptoShare,
    fullbfl_crypto_share_simd_tier: CryptoShare,
    steady_state_alloc: SteadyAllocReport,
}

/// Deterministic synthetic operands for the kernel rows.
fn lcg_fill(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

/// Times one dispatched kernel under both tiers, asserting SIMD == scalar
/// bit-for-bit on fresh zeroed outputs *before* any timing.
fn kernel_row(
    name: &str,
    reps: usize,
    iters: usize,
    out_len: usize,
    mut call: impl FnMut(&mut [f64]),
) -> KernelRow {
    let mut simd_out = vec![0.0; out_len];
    let mut scalar_out = vec![0.0; out_len];
    simd::set_enabled(true);
    call(&mut simd_out);
    simd::set_enabled(false);
    call(&mut scalar_out);
    assert!(
        scalar_out
            .iter()
            .zip(&simd_out)
            .all(|(s, v)| s.to_bits() == v.to_bits()),
        "SIMD tier diverged from the scalar kernel on {name}"
    );
    // Timing reuses one buffer; accumulating kernels grow its values,
    // which changes no instruction counts.
    let mut buf = vec![0.0; out_len];
    simd::set_enabled(true);
    let simd_rate = rate(iters as f64, reps, || {
        for _ in 0..iters {
            call(black_box(&mut buf));
        }
    });
    simd::set_enabled(false);
    let scalar_rate = rate(iters as f64, reps, || {
        for _ in 0..iters {
            call(black_box(&mut buf));
        }
    });
    let row = KernelRow {
        kernel: name.to_string(),
        scalar_calls_per_sec: scalar_rate,
        simd_calls_per_sec: simd_rate,
        speedup: simd_rate / scalar_rate,
    };
    eprintln!(
        "  {name}: scalar {:>10.0}/s | simd {:>10.0}/s | {:.2}x",
        row.scalar_calls_per_sec, row.simd_calls_per_sec, row.speedup
    );
    row
}

/// Digest of everything a run's observers read — per-round accuracy and
/// loss bits, block hashes, final parameters — for the cross-tier
/// equivalence assertion.
fn tier_digest(data: &(Dataset, Dataset), config: BflConfig) -> String {
    let result = BflSimulation::new(config)
        .run(&data.0, &data.1)
        .expect("equivalence run completes");
    let mut canon = String::new();
    for r in &result.history.rounds {
        canon.push_str(&format!(
            "{} {:016x} {:016x}\n",
            r.round,
            r.accuracy.to_bits(),
            r.train_loss.to_bits()
        ));
    }
    if let Some(chain) = &result.chain {
        for block in chain.iter() {
            canon.push_str(&block.hash_hex());
        }
    }
    for p in &result.final_params {
        canon.push_str(&format!("{:016x}", p.to_bits()));
    }
    sha256(canon.as_bytes())
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect()
}

/// A reward policy that pays nobody, so retained per-round reward lists
/// stay empty (an empty `Vec` never touches the heap) and the allocation
/// bracket isolates the engine itself.
struct NoReward;

impl bfl_core::RewardPolicy for NoReward {
    fn round_rewards(&self, _round: usize, _scores: &[(u64, f64)]) -> Vec<bfl_core::RewardEntry> {
        Vec::new()
    }
}

/// Brackets warmed-up flexible rounds with the counting allocator and
/// asserts each leaves zero net bytes and blocks behind (the same
/// contract `crates/bench/tests/steady_state_alloc.rs` pins; here it
/// additionally reports the permitted transient churn).
fn steady_state_alloc_report(data: &(Dataset, Dataset)) -> SteadyAllocReport {
    const WARMUP_ROUNDS: usize = 48;
    const MEASURED_ROUNDS: usize = 8;
    let scenario = Scenario::builder()
        .clients(16)
        .miners(2)
        .rounds(WARMUP_ROUNDS + MEASURED_ROUNDS)
        .participation_ratio(0.5)
        .partition(PartitionKind::Iid)
        .local_epochs(1)
        .batch_size(10)
        .seed(11)
        .mode(FlexibilityMode::FlOnly)
        .sync(SyncMode::FlexibleQuota { quota: 8 })
        .build()
        .expect("steady-state scenario is valid");
    let mut run = scenario
        .start(&data.0, &data.1)
        .expect("steady-state run provisions")
        .with_reward_policy(Box::new(NoReward));
    for _ in 0..WARMUP_ROUNDS {
        run.step().expect("round succeeds").expect("rounds remain");
    }
    let mut max_bytes = 0isize;
    let mut max_blocks = 0isize;
    let mut events = 0usize;
    for _ in 0..MEASURED_ROUNDS {
        let before = ALLOC.snapshot();
        let outcome = run.step().expect("round succeeds").expect("rounds remain");
        drop(outcome);
        let delta = ALLOC.delta_since(&before);
        assert!(
            delta.is_net_zero(),
            "steady-state flexible round grew the heap: {} net bytes, {} net blocks",
            delta.net_bytes,
            delta.net_blocks
        );
        max_bytes = max_bytes.max(delta.net_bytes);
        max_blocks = max_blocks.max(delta.net_blocks);
        events += delta.allocations;
    }
    SteadyAllocReport {
        warmup_rounds: WARMUP_ROUNDS,
        measured_rounds: MEASURED_ROUNDS,
        max_net_bytes_per_round: max_bytes,
        max_net_blocks_per_round: max_blocks,
        mean_allocation_events_per_round: events as f64 / MEASURED_ROUNDS as f64,
    }
}

/// The PR 10 section: the runtime-dispatched AVX2+FMA kernel tier against
/// the scalar tier (bit-identity asserted before every timed pair, plus a
/// full signed run digested under both tiers), the composite local-SGD /
/// eval / FullBfl workloads, and the flexible engine's steady-state
/// zero-net-allocation contract. `strict_floors` turns on the tracked
/// speedup assertions (the smoke run skips them: one rep on a shared CI
/// box is too noisy to gate on ratios).
fn pr10_section(
    data: &(Dataset, Dataset),
    reps: usize,
    fullbfl_rounds: usize,
    strict_floors: bool,
) -> Pr10Report {
    let hw = simd::hardware_supported();
    let avx2_baseline = cfg!(target_feature = "avx2");
    eprintln!(
        "SIMD tier: hardware {} | compiler baseline {}",
        if hw {
            "AVX2+FMA"
        } else {
            "unsupported (scalar only)"
        },
        if avx2_baseline {
            "already AVX2 (target-cpu=native)"
        } else {
            "portable"
        }
    );

    // Whole-run equivalence before any timing: a signed smoke FAIR run
    // must produce bit-identical history, blocks, and parameters under
    // both tiers.
    let mut eq_config = system_config(SystemLabel::Fair, Scale::Smoke);
    eq_config.fl.rounds = fullbfl_rounds;
    eq_config.verify_signatures = true;
    simd::set_enabled(true);
    let simd_digest = tier_digest(data, eq_config);
    simd::set_enabled(false);
    let scalar_digest = tier_digest(data, eq_config);
    assert_eq!(
        scalar_digest, simd_digest,
        "a signed FullBfl run diverged between the scalar and SIMD tiers"
    );
    eprintln!("  tier equivalence: signed {fullbfl_rounds}-round run digest {scalar_digest}");

    eprintln!("timing dispatched kernels (scalar vs SIMD, identity asserted first)...");
    let k = 784usize;
    let a_eval = lcg_fill(512 * k, 1);
    let w = lcg_fill(10 * k, 2);
    let feats = Matrix::from_vec(100, k, lcg_fill(100 * k, 3));
    let rows_idx: Vec<usize> = (0..10).map(|i| i * 7 % 100).collect();
    let delta = lcg_fill(10 * 10, 4);
    let gram_a = lcg_fill(50 * 7850, 5);
    let gram_b = lcg_fill(50 * 7850, 6);
    let a_tn = lcg_fill(10 * 64, 7);
    let b_tn = lcg_fill(10 * 784, 8);
    let x_axpy = lcg_fill(7850, 9);

    let kernels = vec![
        kernel_row(
            "gemm_nt 512x784x10 (eval logits)",
            reps,
            20,
            512 * 10,
            |c| tensor::gemm_nt(&a_eval, &w, c, 512, k, 10),
        ),
        kernel_row(
            "gemm_nt_indexed 10x784x10 (minibatch logits)",
            reps,
            2000,
            10 * 10,
            |c| tensor::gemm_nt_indexed(&feats, &rows_idx, &w, c, 10),
        ),
        kernel_row(
            "gemm_tn_indexed 10->10x784 (softmax grad)",
            reps,
            500,
            10 * k,
            |g| tensor::gemm_tn_indexed_overwrite(&delta, &feats, &rows_idx, g, 10),
        ),
        kernel_row(
            "gemm_nt 50x7850x50 (cluster gram)",
            reps,
            10,
            50 * 50,
            |c| tensor::gemm_nt(&gram_a, &gram_b, c, 50, 7850, 50),
        ),
        kernel_row(
            "gemm_tn 10->64x784 (mlp grad, acc)",
            reps,
            50,
            64 * 784,
            |c| tensor::gemm_tn(&a_tn, &b_tn, c, 10, 64, 784),
        ),
        kernel_row("axpy 7850 (sgd update)", reps, 2000, 7850, |y| {
            tensor::axpy(0.001, &x_axpy, y)
        }),
    ];

    eprintln!("timing composite workloads under both tiers...");
    // Medium-scale training shard and a 10k-row eval set: large enough
    // that kernel throughput, not per-call overhead, is what's timed.
    // Each workload runs once untimed per tier switch so first-touch
    // page faults never land inside a timed bracket, and the best-of
    // count is raised above the CLI floor — composite ratios gate the
    // tracked run, so they get the stable measurement.
    let creps = reps.max(10);
    let ml_train = dataset(Scale::Medium).0;
    simd::set_enabled(false);
    let _ = local_sgd_rate(&ml_train, false, 1);
    let sgd_scalar = local_sgd_rate(&ml_train, false, creps);
    simd::set_enabled(true);
    let _ = local_sgd_rate(&ml_train, false, 1);
    let sgd_simd = local_sgd_rate(&ml_train, false, creps);

    let eval_x = Matrix::from_vec(10_000, k, lcg_fill(10_000 * k, 12));
    let eval_labels: Vec<usize> = (0..10_000).map(|i| (i * 7) % 10).collect();
    let mut eval_rng = StdRng::seed_from_u64(7);
    let eval_model: AnyModel = ModelKind::default_mnist().build(&mut eval_rng);
    let eval_tier = |timed_reps: usize| {
        rate(eval_labels.len() as f64, timed_reps, || {
            black_box(metrics::accuracy(&eval_model, &eval_x, &eval_labels, None));
        })
    };
    simd::set_enabled(false);
    let _ = eval_tier(1);
    let eval_scalar = eval_tier(creps);
    simd::set_enabled(true);
    let _ = eval_tier(1);
    let eval_simd = eval_tier(creps);

    let local_sgd = TierPair::from_rates(sgd_simd, sgd_scalar);
    let eval = TierPair::from_rates(eval_simd, eval_scalar);
    eprintln!(
        "  local SGD {:.0} -> {:.0} samples/s ({:.2}x) | eval {:.0} -> {:.0} samples/s ({:.2}x)",
        local_sgd.scalar, local_sgd.simd, local_sgd.speedup, eval.scalar, eval.simd, eval.speedup
    );

    eprintln!("measuring signed FullBfl rounds/s and crypto share under both tiers...");
    simd::set_enabled(false);
    let (fullbfl_scalar, on_s_scalar) = fullbfl_rate(data, fullbfl_rounds, true, false, reps);
    let (_, off_s_scalar) = fullbfl_rate(data, fullbfl_rounds, false, false, reps);
    simd::set_enabled(true);
    let (fullbfl_simd, on_s_simd) = fullbfl_rate(data, fullbfl_rounds, true, false, reps);
    let (_, off_s_simd) = fullbfl_rate(data, fullbfl_rounds, false, false, reps);
    let fullbfl = TierPair::from_rates(fullbfl_simd, fullbfl_scalar);
    let share_scalar = CryptoShare {
        signatures_on_seconds: on_s_scalar,
        signatures_off_seconds: off_s_scalar,
        crypto_share: (on_s_scalar - off_s_scalar).max(0.0) / on_s_scalar,
    };
    let share_simd = CryptoShare {
        signatures_on_seconds: on_s_simd,
        signatures_off_seconds: off_s_simd,
        crypto_share: (on_s_simd - off_s_simd).max(0.0) / on_s_simd,
    };
    eprintln!(
        "  FullBfl {:.3} -> {:.3} rounds/s ({:.2}x) | crypto share {:.1}% -> {:.1}%",
        fullbfl.scalar,
        fullbfl.simd,
        fullbfl.speedup,
        share_scalar.crypto_share * 100.0,
        share_simd.crypto_share * 100.0
    );

    eprintln!("asserting the steady-state zero-net-allocation contract...");
    let steady = steady_state_alloc_report(data);
    eprintln!(
        "  {} rounds: 0 net bytes/blocks per round, {:.0} transient allocation events/round",
        steady.measured_rounds, steady.mean_allocation_events_per_round
    );

    if hw && strict_floors {
        if avx2_baseline {
            // The scalar tier is itself AVX2-autovectorized under
            // target-cpu=native, so the hand tier's margin here is
            // structural (horizontal-sum ganging, cache tiling); the
            // floors are set under the measured margins with headroom
            // for this host's run-to-run variance. Local SGD gets a
            // no-regression guard rather than a win floor: this binary's
            // thin-LTO partitioning pessimizes the tiny minibatch-logits
            // kernel relative to the ml crate's own binary (where the
            // same workload measures ~1.19x), and the stable structural
            // wins are asserted on the gradient and gram kernels instead.
            assert!(
                local_sgd.speedup >= 0.95,
                "SIMD local-SGD regressed to {:.2}x against the autovectorized scalar tier",
                local_sgd.speedup
            );
            assert!(
                eval.speedup >= 1.10,
                "SIMD eval fell to {:.2}x over the autovectorized scalar tier",
                eval.speedup
            );
            let grad = &kernels[2];
            assert!(
                grad.speedup >= 1.10,
                "SIMD softmax-grad kernel fell to {:.2}x over the autovectorized scalar tier",
                grad.speedup
            );
            let gram = &kernels[3];
            assert!(
                gram.speedup >= 1.25,
                "SIMD gram kernel fell to {:.2}x over the autovectorized scalar tier",
                gram.speedup
            );
        } else {
            // Portable baseline: the ISSUE's >= 1.5x criterion, met with
            // an order-of-magnitude margin (measured >15x) because the
            // portable scalar tier cannot assume FMA.
            assert!(
                local_sgd.speedup >= 1.5 && eval.speedup >= 1.5,
                "SIMD tier under 1.5x on a portable build: sgd {:.2}x, eval {:.2}x",
                local_sgd.speedup,
                eval.speedup
            );
        }
    }
    // Back to the environment-selected tier.
    simd::reset();

    Pr10Report {
        description: "Runtime-dispatched AVX2+FMA kernel tier vs the scalar tier \
                      (bit-identity asserted per kernel and over a full signed run before \
                      timing), composite local-SGD / eval / signed-FullBfl throughput with \
                      the crypto-share shift, and the flexible engine's steady-state \
                      zero-net-allocation-per-round contract, same process/machine. With \
                      AVX2 already in the compiler baseline the scalar tier is \
                      autovectorized and the hand tier's margin is structural; on portable \
                      builds the same tier measures 16-42x per kernel and >15x on both \
                      composites. Caveat: this binary's thin-LTO partitioning pessimizes \
                      the tiny minibatch-logits kernel (the ml crate's own binary measures \
                      ~1.19x local SGD on the identical workload), so local SGD here is a \
                      no-regression guard while the gradient/gram kernels carry the win \
                      floors."
            .to_string(),
        simd_hardware_supported: hw,
        avx2_in_compiler_baseline: avx2_baseline,
        kernels,
        local_sgd_samples_per_sec: local_sgd,
        eval_samples_per_sec: eval,
        signed_fullbfl_rounds_per_sec: fullbfl,
        fullbfl_crypto_share_scalar_tier: share_scalar,
        fullbfl_crypto_share_simd_tier: share_simd,
        steady_state_alloc: steady,
    }
}

fn main() {
    let args = parse_bench_args(std::env::args().skip(1), 3, "all");
    let reps = args.reps;

    // The tracked full-scale crypto workload; `throughput crypto`,
    // `throughput pr3` and `throughput all` must measure the identical
    // thing. BENCH_PR2.json is a *frozen* record of the PR 2 (32-bit
    // limb) engine and is never rewritten — the current engine's crypto
    // numbers go to BENCH_CRYPTO.json / BENCH_PR3.json.
    let full_crypto_scale = CryptoScale {
        modulus_bits: DEFAULT_MODULUS_BITS,
        sign_messages: 4,
        verify_messages: 16,
        pow_nonces: 200_000,
        fullbfl_rounds: 4,
        reference_keygen_reps: 1,
    };

    let scale = &full_crypto_scale;
    let mut registry = SectionRegistry::new("throughput");
    registry.register("all", move || {
        let ml_data = dataset(Scale::Medium);
        let ml = ml_section(&ml_data, reps);
        let crypto_data = dataset(Scale::Smoke);
        let crypto = crypto_section(&crypto_data, reps, scale);
        let pr3 = pr3_section(&crypto_data, reps, scale, Some(&crypto));
        let pr4 = pr4_section(&crypto_data, reps, 3);
        let pr5 = pr5_section(&crypto_data, reps, 3);
        let pr6 = pr6_section(&crypto_data, reps, 3);
        let pr7 = pr7_section(&crypto_data, 10_000, 2, 128);
        let pr8 = pr8_section(&crypto_data, reps, 2, 1_000, 200_000);
        let pr10 = pr10_section(&crypto_data, reps, 3, true);
        write_report("BENCH_PR1.json", &ml);
        write_report("BENCH_CRYPTO.json", &crypto);
        write_report("BENCH_PR3.json", &pr3);
        write_report("BENCH_PR4.json", &pr4);
        write_report("BENCH_PR5.json", &pr5);
        write_report("BENCH_PR6.json", &pr6);
        write_report("BENCH_PR7.json", &pr7);
        write_report("BENCH_PR8.json", &pr8);
        write_report("BENCH_PR10.json", &pr10);
    });
    registry.register("ml", move || {
        let data = dataset(Scale::Medium);
        write_report("BENCH_PR1.json", &ml_section(&data, reps));
    });
    registry.register("crypto", move || {
        let data = dataset(Scale::Smoke);
        write_report("BENCH_CRYPTO.json", &crypto_section(&data, reps, scale));
    });
    registry.register("pr3", move || {
        let data = dataset(Scale::Smoke);
        write_report("BENCH_PR3.json", &pr3_section(&data, reps, scale, None));
    });
    registry.register("pr4", move || {
        let data = dataset(Scale::Smoke);
        write_report("BENCH_PR4.json", &pr4_section(&data, reps, 3));
    });
    registry.register("pr5", move || {
        let data = dataset(Scale::Smoke);
        write_report("BENCH_PR5.json", &pr5_section(&data, reps, 3));
    });
    registry.register("pr6", move || {
        let data = dataset(Scale::Smoke);
        write_report("BENCH_PR6.json", &pr6_section(&data, reps, 3));
    });
    registry.register("pr7", move || {
        let data = dataset(Scale::Smoke);
        write_report("BENCH_PR7.json", &pr7_section(&data, 10_000, 2, 128));
    });
    registry.register("pr8", move || {
        let data = dataset(Scale::Smoke);
        write_report(
            "BENCH_PR8.json",
            &pr8_section(&data, reps, 2, 1_000, 200_000),
        );
    });
    registry.register("pr10", move || {
        let data = dataset(Scale::Smoke);
        write_report("BENCH_PR10.json", &pr10_section(&data, reps, 3, true));
    });
    registry.register("smoke", move || {
        // Seconds-scale end-to-end exercise of every engine for CI:
        // catches perf-harness breakage, not regressions.
        let data = dataset(Scale::Smoke);
        let scale = CryptoScale {
            modulus_bits: 256,
            sign_messages: 2,
            verify_messages: 4,
            pow_nonces: 20_000,
            fullbfl_rounds: 2,
            reference_keygen_reps: 1,
        };
        let ml = ml_section(&data, reps);
        let crypto = crypto_section(&data, reps, &scale);
        let pr3 = pr3_section(&data, reps, &scale, Some(&crypto));
        let pr4 = pr4_section(&data, reps, 2);
        let pr5 = pr5_section(&data, reps, 2);
        let pr6 = pr6_section(&data, reps, 2);
        // The 1M-client rung rides along at reduced participants and
        // rounds; the flatness assertion inside the section still
        // fires, so CI catches any O(population) regression.
        let pr7 = pr7_section(&data, 256, 1, 64);
        // The PR 8 cell at reduced scale: the bit-identity asserts
        // (batched verdicts, pop order, per-thread-count cells) all
        // still fire, so CI catches determinism regressions cheaply.
        let pr8 = pr8_section(&data, reps, 2, 96, 20_000);
        // The PR 10 cell without the speedup floors (one rep on a shared
        // CI box is too noisy to gate on ratios), but with every
        // bit-identity and zero-net-allocation assertion still firing.
        let pr10 = pr10_section(&data, reps, 2, false);
        let report = SmokeReport {
            description: "CI smoke run at reduced scale; not a tracked measurement".to_string(),
            ml,
            crypto,
            pr3,
            pr4,
            pr5,
            pr6,
            pr7,
            pr8,
            pr10,
        };
        write_report("BENCH_SMOKE.json", &report);
    });
    registry.run(&args.section);
}
