//! Regenerates Table 2: detection of malicious attacks under the
//! contribution-based incentive mechanism, for non-IID and IID partitions.
//!
//! Usage: `cargo run -p bfl-bench --release --bin table2 -- [--scale smoke|medium|paper]`

use bfl_bench::experiments::{table2, Scale};
use bfl_bench::report::render_table2;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Table 2 at {scale:?} scale...");
    let runs = table2(scale);
    println!("{}", render_table2(&runs));
    for run in &runs {
        println!(
            "{}: average detection rate {:.2}%, final accuracy under attack {:.3}",
            run.label,
            run.detection.average_detection_rate() * 100.0,
            run.final_accuracy
        );
    }
}
