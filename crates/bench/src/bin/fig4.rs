//! Regenerates Figure 4: general comparison of delay (FAIR vs Blockchain vs
//! FedAvg) and accuracy over time (FAIR vs FedAvg vs FedProx).
//!
//! Usage: `cargo run -p bfl-bench --release --bin fig4 -- [--scale smoke|medium|paper]`

use bfl_bench::experiments::{figure4, Scale};
use bfl_bench::report::render_figure4;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Figure 4 at {scale:?} scale...");
    let figure = figure4(scale);
    println!("{}", render_figure4(&figure));

    println!("\nDelay series (cumulative average per round):");
    for (system, series) in &figure.delay_series {
        let sampled: Vec<String> = series
            .iter()
            .step_by((series.len() / 10).max(1))
            .map(|d| format!("{d:.1}"))
            .collect();
        println!("  {:<12} {}", system.name(), sampled.join(" "));
    }
}
