//! Regenerates Figure 6: delay versus the number of workers (6a) and the
//! number of miners (6b).
//!
//! Usage: `cargo run -p bfl-bench --release --bin fig6 -- [workers|miners] [--scale smoke|medium|paper]`

use bfl_bench::experiments::{
    figure6_miners, figure6_workers, Scale, PAPER_MINER_COUNTS, PAPER_WORKER_COUNTS,
};
use bfl_bench::report::render_figure6;

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("both");

    if which == "workers" || which == "both" || which.starts_with("--") {
        eprintln!("running Figure 6a (workers) at {scale:?} scale...");
        let counts: Vec<usize> = if scale == Scale::Smoke {
            vec![10, 40]
        } else {
            PAPER_WORKER_COUNTS.to_vec()
        };
        let rows = figure6_workers(scale, &counts);
        println!("{}", render_figure6(&rows, "workers"));
    }
    if which == "miners" || which == "both" || which.starts_with("--") {
        eprintln!("running Figure 6b (miners) at {scale:?} scale...");
        let counts: Vec<usize> = if scale == Scale::Smoke {
            vec![2, 4]
        } else {
            PAPER_MINER_COUNTS.to_vec()
        };
        let rows = figure6_miners(scale, &counts);
        println!("{}", render_figure6(&rows, "miners"));
    }
}
