//! Runs every experiment of the evaluation section back to back and prints
//! the full markdown report (the source of EXPERIMENTS.md's measured
//! columns).
//!
//! Usage: `cargo run -p bfl-bench --release --bin all_experiments -- [--scale smoke|medium|paper]`

use bfl_bench::experiments::{
    figure4, figure5, figure6_miners, figure6_workers, figure7, table2, Scale,
    PAPER_LEARNING_RATES, PAPER_MINER_COUNTS, PAPER_WORKER_COUNTS,
};
use bfl_bench::report::{
    render_figure4, render_figure5, render_figure6, render_figure7, render_table2,
};

fn main() {
    let scale = Scale::from_args();
    println!("# FAIR-BFL reproduction — full experiment run ({scale:?} scale)\n");

    eprintln!("[1/6] Figure 4...");
    println!("{}", render_figure4(&figure4(scale)));

    eprintln!("[2/6] Figure 5...");
    let rates: Vec<f64> = if scale == Scale::Smoke {
        vec![0.01, 0.10]
    } else {
        PAPER_LEARNING_RATES.to_vec()
    };
    println!("{}", render_figure5(&figure5(scale, &rates)));

    eprintln!("[3/6] Figure 6a (workers)...");
    let worker_counts: Vec<usize> = if scale == Scale::Smoke {
        vec![10, 40]
    } else {
        PAPER_WORKER_COUNTS.to_vec()
    };
    println!(
        "{}",
        render_figure6(&figure6_workers(scale, &worker_counts), "workers")
    );

    eprintln!("[4/6] Figure 6b (miners)...");
    let miner_counts: Vec<usize> = if scale == Scale::Smoke {
        vec![2, 4]
    } else {
        PAPER_MINER_COUNTS.to_vec()
    };
    println!(
        "{}",
        render_figure6(&figure6_miners(scale, &miner_counts), "miners")
    );

    eprintln!("[5/6] Figure 7...");
    println!("{}", render_figure7(&figure7(scale)));

    eprintln!("[6/6] Table 2...");
    println!("{}", render_table2(&table2(scale)));
}
