//! Regenerates Figure 7: cost-effectiveness of the discard strategy
//! (FAIR-Discard vs FAIR vs Blockchain vs FedAvg vs FedProx-Drop(0.02)).
//!
//! Usage: `cargo run -p bfl-bench --release --bin fig7 -- [--scale smoke|medium|paper]`

use bfl_bench::experiments::{figure7, Scale};
use bfl_bench::report::render_figure7;

fn main() {
    let scale = Scale::from_args();
    eprintln!("running Figure 7 at {scale:?} scale...");
    let figure = figure7(scale);
    println!("{}", render_figure7(&figure));

    println!("\nAccuracy-over-time series (elapsed s, accuracy) samples:");
    for (system, series) in &figure.accuracy_series {
        let sampled: Vec<String> = series
            .iter()
            .step_by((series.len() / 8).max(1))
            .map(|(t, a)| format!("({t:.0}s,{a:.2})"))
            .collect();
        println!("  {:<14} {}", system.name(), sampled.join(" "));
    }
}
