//! # bfl-bench
//!
//! Experiment harness for the FAIR-BFL reproduction. The [`experiments`]
//! module builds the configurations for every system in the paper's
//! comparison (FAIR-BFL, FAIR-Discard, FedAvg, FedProx, pure blockchain)
//! and runs the parameter sweeps behind every table and figure of the
//! evaluation section; [`report`] renders the results as the markdown
//! tables recorded in EXPERIMENTS.md; [`alloc`] provides the counting
//! global allocator the population-scale bench uses to record per-cell
//! heap high-water marks; [`section`] holds the timing loop, report
//! writer, and section registry the measurement binaries (and the
//! `bflharness` experiment runner) share.
//!
//! Each figure/table has a dedicated binary (`fig4`, `fig5`, `fig6`,
//! `fig7`, `table2`, `all_experiments`) accepting a `--scale
//! {smoke|medium|paper}` argument, and a matching Criterion benchmark under
//! `benches/` that exercises the same code path at smoke scale.

#![warn(missing_docs)]

pub mod alloc;
pub mod experiments;
pub mod report;
pub mod section;

pub use alloc::{AllocDelta, AllocSnapshot, CountingAllocator};
pub use experiments::{Scale, SystemLabel};
pub use section::{best_seconds, parse_bench_args, rate, write_report, SectionRegistry};
