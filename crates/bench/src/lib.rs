//! # bfl-bench
//!
//! Experiment harness for the FAIR-BFL reproduction. The [`experiments`]
//! module builds the configurations for every system in the paper's
//! comparison (FAIR-BFL, FAIR-Discard, FedAvg, FedProx, pure blockchain)
//! and runs the parameter sweeps behind every table and figure of the
//! evaluation section; [`report`] renders the results as the markdown
//! tables recorded in EXPERIMENTS.md; [`alloc`] provides the counting
//! global allocator the population-scale bench uses to record per-cell
//! heap high-water marks.
//!
//! Each figure/table has a dedicated binary (`fig4`, `fig5`, `fig6`,
//! `fig7`, `table2`, `all_experiments`) accepting a `--scale
//! {smoke|medium|paper}` argument, and a matching Criterion benchmark under
//! `benches/` that exercises the same code path at smoke scale.

#![warn(missing_docs)]

pub mod alloc;
pub mod experiments;
pub mod report;

pub use alloc::CountingAllocator;
pub use experiments::{Scale, SystemLabel};
