//! A counting global allocator for heap high-water measurements.
//!
//! The PR 7 population-scale bench needs *peak resident heap* per cell to
//! show that memory tracks participants, not population. `VmHWM` is
//! monotonic for the process lifetime, so it cannot compare cells run in
//! one binary; instead the bench binaries install [`CountingAllocator`] as
//! their `#[global_allocator]` and bracket each cell with
//! [`reset_peak`](CountingAllocator::reset_peak) /
//! [`peak_bytes`](CountingAllocator::peak_bytes).
//!
//! The counter tracks *net live bytes* (allocations minus deallocations,
//! reallocations as a delta) and maintains the running maximum with a
//! compare-and-swap loop. Overhead is a few relaxed atomic updates per
//! allocation — invisible next to the workloads being measured.
//!
//! Beyond the PR 7 high-water use, the allocator also counts *allocation
//! events* and *live blocks*, and [`CountingAllocator::snapshot`] /
//! [`CountingAllocator::delta_since`] bracket a region with one call on
//! each side — the steady-state round-loop test uses this to assert that
//! a warmed-up flexible round leaves **zero net** bytes and blocks
//! behind, and the `pr10` bench section to report allocation churn per
//! round.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A point-in-time reading of a [`CountingAllocator`]'s counters, taken
/// with [`CountingAllocator::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Live heap bytes at the snapshot.
    pub live_bytes: usize,
    /// Live heap blocks (allocations not yet freed) at the snapshot.
    pub live_blocks: usize,
    /// Cumulative allocation events (alloc/alloc_zeroed/realloc calls)
    /// since process start.
    pub allocations: usize,
}

/// The change between two [`AllocSnapshot`]s, from
/// [`CountingAllocator::delta_since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocDelta {
    /// Net live-byte growth over the bracket (negative: the region freed
    /// more than it allocated).
    pub net_bytes: isize,
    /// Net live-block growth over the bracket.
    pub net_blocks: isize,
    /// Allocation events performed inside the bracket (churn: alloc+free
    /// pairs count here even when the net deltas are zero).
    pub allocations: usize,
}

impl AllocDelta {
    /// True when the bracketed region grew the heap by nothing: every
    /// byte and block it allocated was freed again (allocation *churn*
    /// is allowed; *growth* is not).
    pub fn is_net_zero(&self) -> bool {
        self.net_bytes == 0 && self.net_blocks == 0
    }
}

/// A [`System`]-backed allocator that tracks live bytes and their peak.
///
/// Install one as the global allocator and bracket measured regions:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: CountingAllocator = CountingAllocator::new();
///
/// ALLOC.reset_peak();
/// run_cell();
/// let peak = ALLOC.peak_bytes();
/// ```
pub struct CountingAllocator {
    live: AtomicUsize,
    peak: AtomicUsize,
    blocks: AtomicUsize,
    events: AtomicUsize,
}

impl CountingAllocator {
    /// A fresh counter (all zeros).
    pub const fn new() -> Self {
        CountingAllocator {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            blocks: AtomicUsize::new(0),
            events: AtomicUsize::new(0),
        }
    }

    /// Currently live heap bytes routed through this allocator.
    pub fn current_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Currently live heap blocks (allocations not yet freed).
    pub fn current_blocks(&self) -> usize {
        self.blocks.load(Ordering::Relaxed)
    }

    /// Cumulative allocation events (`alloc`, `alloc_zeroed`, and
    /// `realloc` calls) since process start. Monotonic; deallocations do
    /// not count.
    pub fn allocation_count(&self) -> usize {
        self.events.load(Ordering::Relaxed)
    }

    /// Reads all counters at once, for [`delta_since`](Self::delta_since)
    /// bracketing. The three loads are not mutually atomic, so take
    /// snapshots at points where no other thread is allocating (or accept
    /// a few events of skew).
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            live_bytes: self.live.load(Ordering::Relaxed),
            live_blocks: self.blocks.load(Ordering::Relaxed),
            allocations: self.events.load(Ordering::Relaxed),
        }
    }

    /// The net heap growth and allocation churn since `start`.
    pub fn delta_since(&self, start: &AllocSnapshot) -> AllocDelta {
        let now = self.snapshot();
        AllocDelta {
            net_bytes: now.live_bytes as isize - start.live_bytes as isize,
            net_blocks: now.live_blocks as isize - start.live_blocks as isize,
            allocations: now.allocations.wrapping_sub(start.allocations),
        }
    }

    /// High-water mark of [`current_bytes`](Self::current_bytes) since the
    /// last [`reset_peak`](Self::reset_peak).
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restarts the high-water mark from the current live count, so the
    /// next [`peak_bytes`](Self::peak_bytes) reflects only the bracketed
    /// region.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn add(&self, bytes: usize) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // CAS-max: lift the peak only while we still exceed it.
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            match self
                .peak
                .compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => peak = actual,
            }
        }
    }

    fn sub(&self, bytes: usize) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

// SAFETY: delegates every operation to `System`; the bookkeeping is
// side-effect-free atomic arithmetic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.add(layout.size());
            self.blocks.fetch_add(1, Ordering::Relaxed);
            self.events.fetch_add(1, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.sub(layout.size());
        self.blocks.fetch_sub(1, Ordering::Relaxed);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            self.add(layout.size());
            self.blocks.fetch_add(1, Ordering::Relaxed);
            self.events.fetch_add(1, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                self.add(new_size - layout.size());
            } else {
                self.sub(layout.size() - new_size);
            }
            // One event, block count unchanged: the old block becomes the
            // new one.
            self.events.fetch_add(1, Ordering::Relaxed);
        }
        new_ptr
    }
}
