//! A counting global allocator for heap high-water measurements.
//!
//! The PR 7 population-scale bench needs *peak resident heap* per cell to
//! show that memory tracks participants, not population. `VmHWM` is
//! monotonic for the process lifetime, so it cannot compare cells run in
//! one binary; instead the bench binaries install [`CountingAllocator`] as
//! their `#[global_allocator]` and bracket each cell with
//! [`reset_peak`](CountingAllocator::reset_peak) /
//! [`peak_bytes`](CountingAllocator::peak_bytes).
//!
//! The counter tracks *net live bytes* (allocations minus deallocations,
//! reallocations as a delta) and maintains the running maximum with a
//! compare-and-swap loop. Overhead is two relaxed atomic updates per
//! allocation — invisible next to the workloads being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A [`System`]-backed allocator that tracks live bytes and their peak.
///
/// Install one as the global allocator and bracket measured regions:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: CountingAllocator = CountingAllocator::new();
///
/// ALLOC.reset_peak();
/// run_cell();
/// let peak = ALLOC.peak_bytes();
/// ```
pub struct CountingAllocator {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl CountingAllocator {
    /// A fresh counter (all zeros).
    pub const fn new() -> Self {
        CountingAllocator {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Currently live heap bytes routed through this allocator.
    pub fn current_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`current_bytes`](Self::current_bytes) since the
    /// last [`reset_peak`](Self::reset_peak).
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restarts the high-water mark from the current live count, so the
    /// next [`peak_bytes`](Self::peak_bytes) reflects only the bracketed
    /// region.
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    fn add(&self, bytes: usize) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        // CAS-max: lift the peak only while we still exceed it.
        let mut peak = self.peak.load(Ordering::Relaxed);
        while live > peak {
            match self
                .peak
                .compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => peak = actual,
            }
        }
    }

    fn sub(&self, bytes: usize) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

// SAFETY: delegates every operation to `System`; the bookkeeping is
// side-effect-free atomic arithmetic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.add(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.sub(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            self.add(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                self.add(new_size - layout.size());
            } else {
                self.sub(layout.size() - new_size);
            }
        }
        new_ptr
    }
}
