//! Shared bench-driver scaffolding: the timing loop, the report writer,
//! and the section registry.
//!
//! Every measurement binary in this workspace (`throughput`, the figure
//! binaries, the `bflharness` experiment runner) needs the same three
//! pieces of plumbing: a best-of-N wall-clock loop that resists
//! scheduling noise on shared machines, a "serialize + write + echo"
//! report sink, and a name → section dispatcher whose unknown-section
//! path refuses to silently regenerate tracked reports. They used to be
//! copied into each binary; this module is the single home.

use serde::Serialize;
use std::time::Instant;

/// Runs `body` once warm-up, then `reps` individually timed repetitions;
/// returns the best-repetition rate in work-units per second. Best-of
/// is deliberate: the machines this runs on are shared, and the fastest
/// repetition is the least contaminated by scheduling noise.
pub fn rate(units: f64, reps: usize, mut body: impl FnMut()) -> f64 {
    body();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    units / best
}

/// Like [`rate`] but returns the best wall-clock seconds directly.
pub fn best_seconds(reps: usize, mut body: impl FnMut()) -> f64 {
    body();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        body();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Serializes `report` as pretty JSON, writes it to `path` (with a
/// trailing newline), echoes the JSON to stdout and the path to stderr —
/// the contract every tracked `BENCH_*.json` is produced under.
pub fn write_report<T: Serialize + ?Sized>(path: &str, report: &T) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| panic!("{path} written: {e}"));
    println!("{json}");
    eprintln!("wrote {path}");
}

/// Command-line shape shared by the bench drivers: any numeric argument
/// is the repetition count, any other argument selects the section.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Best-of repetition count (≥ 1).
    pub reps: usize,
    /// The selected section name.
    pub section: String,
}

/// Parses `args` under the shared convention. `default_section` is used
/// when no section argument is present; `default_reps` when no numeric
/// argument is.
pub fn parse_bench_args(
    args: impl IntoIterator<Item = String>,
    default_reps: usize,
    default_section: &str,
) -> BenchArgs {
    let mut parsed = BenchArgs {
        reps: default_reps.max(1),
        section: default_section.to_string(),
    };
    for arg in args {
        if let Ok(n) = arg.parse::<usize>() {
            parsed.reps = n.max(1);
        } else {
            parsed.section = arg;
        }
    }
    parsed
}

/// A registered section body, boxed so heterogeneous closures share a
/// shelf.
type SectionBody<'a> = Box<dyn FnOnce() + 'a>;

/// A name → section dispatcher for measurement binaries.
///
/// Sections register in display order; [`run`](Self::run) executes the
/// named one. An unknown name prints a usage line listing every
/// registered section and exits with status 2 — a typo must not
/// silently regenerate the tracked reports.
pub struct SectionRegistry<'a> {
    binary: &'a str,
    sections: Vec<(&'a str, SectionBody<'a>)>,
}

impl<'a> SectionRegistry<'a> {
    /// Creates an empty registry for the binary named `binary` (shown in
    /// the usage line).
    pub fn new(binary: &'a str) -> Self {
        SectionRegistry {
            binary,
            sections: Vec::new(),
        }
    }

    /// Registers `section` under `name`, panicking on a duplicate name
    /// (a registry bug, not a user error).
    pub fn register(&mut self, name: &'a str, section: impl FnOnce() + 'a) {
        assert!(
            self.sections.iter().all(|(n, _)| *n != name),
            "duplicate bench section `{name}`"
        );
        self.sections.push((name, Box::new(section)));
    }

    /// The registered section names, in registration order.
    pub fn names(&self) -> Vec<&'a str> {
        self.sections.iter().map(|(n, _)| *n).collect()
    }

    /// Runs the section registered under `name`; on an unknown name,
    /// prints usage to stderr and exits with status 2.
    pub fn run(mut self, name: &str) {
        match self.sections.iter().position(|(n, _)| *n == name) {
            Some(index) => (self.sections.swap_remove(index).1)(),
            None => {
                eprintln!(
                    "unknown section `{name}`; usage: {} [reps] [{}]",
                    self.binary,
                    self.names().join("|")
                );
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn rate_and_best_seconds_measure_positive_time() {
        let r = rate(100.0, 2, || {
            std::hint::black_box((0..500).sum::<u64>());
        });
        assert!(r.is_finite() && r > 0.0);
        let s = best_seconds(2, || {
            std::hint::black_box((0..500).sum::<u64>());
        });
        assert!(s.is_finite() && s >= 0.0);
    }

    #[test]
    fn rate_runs_warmup_plus_reps() {
        let calls = Cell::new(0usize);
        let _ = rate(1.0, 3, || calls.set(calls.get() + 1));
        assert_eq!(calls.get(), 4);
    }

    #[test]
    fn args_parse_reps_and_section_in_any_order() {
        let a = parse_bench_args(["5".to_string(), "smoke".to_string()], 3, "all");
        assert_eq!((a.reps, a.section.as_str()), (5, "smoke"));
        let b = parse_bench_args(["smoke".to_string(), "5".to_string()], 3, "all");
        assert_eq!((b.reps, b.section.as_str()), (5, "smoke"));
        let c = parse_bench_args(std::iter::empty(), 3, "all");
        assert_eq!((c.reps, c.section.as_str()), (3, "all"));
        // Zero reps clamps to one: every section times at least once.
        let d = parse_bench_args(["0".to_string()], 3, "all");
        assert_eq!(d.reps, 1);
    }

    #[test]
    fn registry_dispatches_the_named_section_only() {
        let hits = Cell::new((0usize, 0usize));
        let mut registry = SectionRegistry::new("test");
        registry.register("a", || hits.set((hits.get().0 + 1, hits.get().1)));
        registry.register("b", || hits.set((hits.get().0, hits.get().1 + 1)));
        assert_eq!(registry.names(), vec!["a", "b"]);
        registry.run("b");
        assert_eq!(hits.get(), (0, 1));
    }

    #[test]
    #[should_panic(expected = "duplicate bench section")]
    fn registry_rejects_duplicate_names() {
        let mut registry = SectionRegistry::new("test");
        registry.register("a", || {});
        registry.register("a", || {});
    }
}
