//! Scenario construction and the per-figure experiment runners.

use bfl_core::{
    AggregationAnchor, AggregationMode, AttackConfig, BflConfig, BflSimulation, DetectionTable,
    FlexibilityMode, LowContributionStrategy, ProfileConfig, ProvisioningMode, ReorgPolicy,
    RetryPolicy, Scenario, SimulationResult, StalenessPolicy, SweepPoint, SyncMode,
};
use bfl_data::{Dataset, SynthMnist, SynthMnistConfig};
use bfl_fl::config::PartitionKind;
use bfl_net::{DelayDistribution, FaultPlan, LinkFaults, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// How big an experiment to run. The paper scale matches Section 5.1
/// (n = 100 clients, 100 rounds); the smaller scales preserve every ratio
/// that matters for the figures' shapes while keeping wall-clock time low.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny runs for CI and Criterion benches (seconds).
    Smoke,
    /// Default for the experiment binaries (tens of seconds in release).
    Medium,
    /// The paper's full Section 5.1 setup.
    Paper,
}

impl Scale {
    /// Parses `smoke` / `medium` / `paper` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Reads `--scale <value>` from the process arguments, defaulting to
    /// [`Scale::Medium`].
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        for window in args.windows(2) {
            if window[0] == "--scale" {
                if let Some(scale) = Scale::parse(&window[1]) {
                    return scale;
                }
            }
        }
        Scale::Medium
    }

    /// Training-set size.
    pub fn train_samples(&self) -> usize {
        match self {
            Scale::Smoke => 300,
            Scale::Medium => 2000,
            Scale::Paper => 6000,
        }
    }

    /// Test-set size.
    pub fn test_samples(&self) -> usize {
        match self {
            Scale::Smoke => 100,
            Scale::Medium => 400,
            Scale::Paper => 1000,
        }
    }

    /// Number of clients `n`.
    pub fn clients(&self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Medium => 50,
            Scale::Paper => 100,
        }
    }

    /// Number of communication rounds.
    pub fn rounds(&self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Medium => 30,
            Scale::Paper => 100,
        }
    }

    /// Local epochs `E`.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Medium => 3,
            Scale::Paper => 5,
        }
    }
}

/// Human-readable label of each system in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SystemLabel {
    /// Full FAIR-BFL with the keep strategy.
    Fair,
    /// Full FAIR-BFL with the discard strategy.
    FairDiscard,
    /// The pure-blockchain baseline.
    Blockchain,
    /// FedAvg.
    FedAvg,
    /// FedProx (μ > 0, optional straggler dropping).
    FedProx,
}

impl SystemLabel {
    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            SystemLabel::Fair => "FAIR",
            SystemLabel::FairDiscard => "FAIR-Discard",
            SystemLabel::Blockchain => "Blockchain",
            SystemLabel::FedAvg => "FedAvg",
            SystemLabel::FedProx => "FedProx",
        }
    }
}

/// Generates the train/test split for a scale (deterministic).
pub fn dataset(scale: Scale) -> (Dataset, Dataset) {
    let generator = SynthMnist::new(SynthMnistConfig {
        train_samples: scale.train_samples(),
        test_samples: scale.test_samples(),
        ..SynthMnistConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    generator.generate(&mut rng)
}

/// Base configuration shared by every system at a given scale (paper
/// Section 5.1 defaults, scaled).
pub fn base_config(scale: Scale) -> BflConfig {
    let mut config = BflConfig::default();
    config.fl.clients = scale.clients();
    config.fl.rounds = scale.rounds();
    config.fl.participation_ratio = 0.2;
    config.fl.local.epochs = scale.epochs();
    config.fl.local.learning_rate = 0.01;
    config.fl.local.batch_size = 10;
    config.fl.partition = PartitionKind::ShardNonIid {
        shards_per_client: 2,
    };
    config.fl.seed = 0xBF1;
    config.miners = 2;
    config
}

/// Configuration of one labelled system at a given scale.
pub fn system_config(system: SystemLabel, scale: Scale) -> BflConfig {
    let mut config = base_config(scale);
    match system {
        SystemLabel::Fair => {}
        SystemLabel::FairDiscard => {
            config.strategy = LowContributionStrategy::Discard;
        }
        SystemLabel::Blockchain => {
            config.mode = FlexibilityMode::ChainOnly;
        }
        SystemLabel::FedAvg => {
            config.mode = FlexibilityMode::FlOnly;
            config.fair_aggregation = false;
        }
        SystemLabel::FedProx => {
            config.mode = FlexibilityMode::FlOnly;
            config.fair_aggregation = false;
            config.fl.local.proximal_mu = 1.0;
            config.fl.drop_percent = 0.02;
        }
    }
    config
}

/// Runs one system at one scale over the given dataset.
pub fn run_system(
    system: SystemLabel,
    scale: Scale,
    data: &(Dataset, Dataset),
) -> SimulationResult {
    let config = system_config(system, scale);
    BflSimulation::new(config)
        .run(&data.0, &data.1)
        .expect("experiment run should complete")
}

// ---------------------------------------------------------------------------
// Figure 4: general delay and accuracy comparison.
// ---------------------------------------------------------------------------

/// Series behind Figure 4a/4b.
#[derive(Debug, Clone, Serialize)]
pub struct Figure4 {
    /// (system, cumulative-average-delay series indexed by round).
    pub delay_series: Vec<(SystemLabel, Vec<f64>)>,
    /// (system, (elapsed seconds, accuracy) series).
    pub accuracy_series: Vec<(SystemLabel, Vec<(f64, f64)>)>,
    /// (system, mean round delay).
    pub mean_delays: Vec<(SystemLabel, f64)>,
    /// (system, mean accuracy over the run).
    pub mean_accuracies: Vec<(SystemLabel, f64)>,
}

/// Runs the Figure 4 comparison: delay for FAIR / Blockchain / FedAvg,
/// accuracy-vs-time for FAIR / FedAvg / FedProx.
pub fn figure4(scale: Scale) -> Figure4 {
    let data = dataset(scale);
    let mut delay_series = Vec::new();
    let mut accuracy_series = Vec::new();
    let mut mean_delays = Vec::new();
    let mut mean_accuracies = Vec::new();

    for system in [
        SystemLabel::Fair,
        SystemLabel::Blockchain,
        SystemLabel::FedAvg,
        SystemLabel::FedProx,
    ] {
        let result = run_system(system, scale, &data);
        if system != SystemLabel::FedProx {
            delay_series.push((system, result.history.cumulative_average_delay()));
        }
        if system != SystemLabel::Blockchain {
            accuracy_series.push((
                system,
                result
                    .history
                    .rounds
                    .iter()
                    .map(|r| (r.elapsed_s, r.accuracy))
                    .collect(),
            ));
            mean_accuracies.push((system, result.history.mean_accuracy()));
        }
        mean_delays.push((system, result.mean_delay()));
    }

    Figure4 {
        delay_series,
        accuracy_series,
        mean_delays,
        mean_accuracies,
    }
}

// ---------------------------------------------------------------------------
// Figure 5: learning-rate sweep.
// ---------------------------------------------------------------------------

/// One row of the Figure 5 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct LearningRateRow {
    /// The learning rate η.
    pub learning_rate: f64,
    /// (system, mean round delay) at this η.
    pub delays: Vec<(SystemLabel, f64)>,
    /// (system, mean accuracy) at this η.
    pub accuracies: Vec<(SystemLabel, f64)>,
}

/// The paper's η values.
pub const PAPER_LEARNING_RATES: [f64; 5] = [0.01, 0.05, 0.10, 0.15, 0.20];

/// Runs the Figure 5 sweep over the given learning rates.
pub fn figure5(scale: Scale, learning_rates: &[f64]) -> Vec<LearningRateRow> {
    let data = dataset(scale);
    learning_rates
        .iter()
        .map(|&lr| {
            let mut delays = Vec::new();
            let mut accuracies = Vec::new();
            for system in [SystemLabel::Fair, SystemLabel::FedAvg, SystemLabel::FedProx] {
                let mut config = system_config(system, scale);
                config.fl.local.learning_rate = lr;
                let result = BflSimulation::new(config)
                    .run(&data.0, &data.1)
                    .expect("sweep run should complete");
                delays.push((system, result.mean_delay()));
                accuracies.push((system, result.history.mean_accuracy()));
            }
            LearningRateRow {
                learning_rate: lr,
                delays,
                accuracies,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 6: scalability in workers and miners.
// ---------------------------------------------------------------------------

/// One row of the Figure 6a (workers) or 6b (miners) sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleRow {
    /// The swept value (number of workers or miners).
    pub x: usize,
    /// (system, mean round delay).
    pub delays: Vec<(SystemLabel, f64)>,
}

/// The paper's worker counts for Figure 6a.
pub const PAPER_WORKER_COUNTS: [usize; 6] = [20, 40, 60, 80, 100, 120];
/// The paper's miner counts for Figure 6b.
pub const PAPER_MINER_COUNTS: [usize; 5] = [2, 4, 6, 8, 10];

/// Figure 6a: delay versus the number of workers (FAIR, Blockchain, FedAvg).
pub fn figure6_workers(scale: Scale, worker_counts: &[usize]) -> Vec<ScaleRow> {
    worker_counts
        .iter()
        .map(|&n| {
            let mut delays = Vec::new();
            for system in [
                SystemLabel::Fair,
                SystemLabel::Blockchain,
                SystemLabel::FedAvg,
            ] {
                let mut config = system_config(system, scale);
                config.fl.clients = n;
                // The dataset must cover the clients; reuse a split sized to
                // the largest count to keep shards non-empty.
                let data = dataset_for_clients(scale, n);
                let result = BflSimulation::new(config)
                    .run(&data.0, &data.1)
                    .expect("worker sweep run should complete");
                delays.push((system, result.mean_delay()));
            }
            ScaleRow { x: n, delays }
        })
        .collect()
}

/// Figure 6b: delay versus the number of miners (FAIR, Blockchain).
pub fn figure6_miners(scale: Scale, miner_counts: &[usize]) -> Vec<ScaleRow> {
    let data = dataset(scale);
    miner_counts
        .iter()
        .map(|&m| {
            let mut delays = Vec::new();
            for system in [SystemLabel::Fair, SystemLabel::Blockchain] {
                let mut config = system_config(system, scale);
                config.miners = m;
                let result = BflSimulation::new(config)
                    .run(&data.0, &data.1)
                    .expect("miner sweep run should complete");
                delays.push((system, result.mean_delay()));
            }
            ScaleRow { x: m, delays }
        })
        .collect()
}

fn dataset_for_clients(scale: Scale, clients: usize) -> (Dataset, Dataset) {
    let samples = scale.train_samples().max(clients * 20);
    let generator = SynthMnist::new(SynthMnistConfig {
        train_samples: samples,
        test_samples: scale.test_samples(),
        ..SynthMnistConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(0xDA7A);
    generator.generate(&mut rng)
}

// ---------------------------------------------------------------------------
// Figure 7: the discard strategy.
// ---------------------------------------------------------------------------

/// Results of the Figure 7 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Figure7 {
    /// (system, cumulative-average-delay series).
    pub delay_series: Vec<(SystemLabel, Vec<f64>)>,
    /// (system, (elapsed seconds, accuracy) series).
    pub accuracy_series: Vec<(SystemLabel, Vec<(f64, f64)>)>,
    /// (system, mean round delay).
    pub mean_delays: Vec<(SystemLabel, f64)>,
    /// (system, final accuracy).
    pub final_accuracies: Vec<(SystemLabel, f64)>,
    /// (system, simulated seconds to reach the convergence criterion, if reached).
    pub convergence_times: Vec<(SystemLabel, Option<f64>)>,
}

/// Runs the Figure 7 comparison: FAIR-Discard, FAIR, Blockchain, FedAvg,
/// FedProx-Drop(0.02).
pub fn figure7(scale: Scale) -> Figure7 {
    let data = dataset(scale);
    let mut delay_series = Vec::new();
    let mut accuracy_series = Vec::new();
    let mut mean_delays = Vec::new();
    let mut final_accuracies = Vec::new();
    let mut convergence_times = Vec::new();

    for system in [
        SystemLabel::FairDiscard,
        SystemLabel::Fair,
        SystemLabel::Blockchain,
        SystemLabel::FedAvg,
        SystemLabel::FedProx,
    ] {
        let result = run_system(system, scale, &data);
        mean_delays.push((system, result.mean_delay()));
        if system != SystemLabel::FedProx {
            delay_series.push((system, result.history.cumulative_average_delay()));
        }
        if system != SystemLabel::Blockchain {
            accuracy_series.push((
                system,
                result
                    .history
                    .rounds
                    .iter()
                    .map(|r| (r.elapsed_s, r.accuracy))
                    .collect(),
            ));
            final_accuracies.push((system, result.final_accuracy().unwrap_or(0.0)));
            convergence_times.push((system, result.history.convergence_time()));
        }
    }

    Figure7 {
        delay_series,
        accuracy_series,
        mean_delays,
        final_accuracies,
        convergence_times,
    }
}

// ---------------------------------------------------------------------------
// Scenario sweeps (the PR 4 grid).
// ---------------------------------------------------------------------------

/// A small design-space grid for the sweep runner: every learning mode ×
/// aggregation anchor × low-contribution strategy, under the Table 2
/// attack, plus the chain-only baseline. Signatures are off so cell cost
/// is dominated by the learning substrate the sweep actually varies.
pub fn scenario_grid(scale: Scale, rounds: usize) -> Vec<SweepPoint> {
    let mut grid = Vec::new();
    for (mode, mode_name) in [
        (FlexibilityMode::FullBfl, "full"),
        (FlexibilityMode::FlOnly, "fl-only"),
    ] {
        for anchor in [
            AggregationAnchor::Mean,
            AggregationAnchor::Median,
            AggregationAnchor::TrimmedMean { trim_ratio: 0.2 },
        ] {
            for (strategy, strategy_name) in [
                (LowContributionStrategy::Keep, "keep"),
                (LowContributionStrategy::Discard, "discard"),
            ] {
                let mut config = base_config(scale);
                config.fl.clients = 10;
                config.fl.participation_ratio = 1.0;
                config.fl.rounds = rounds;
                config.mode = mode;
                config.anchor = anchor;
                config.strategy = strategy;
                config.attack = AttackConfig::table2();
                config.verify_signatures = false;
                grid.push(SweepPoint::new(
                    format!("{mode_name}/{}/{strategy_name}", anchor.name()),
                    Scenario::from_config(config).expect("grid cell is valid"),
                ));
            }
        }
    }
    let mut chain = base_config(scale);
    chain.fl.rounds = rounds;
    chain.mode = FlexibilityMode::ChainOnly;
    chain.verify_signatures = false;
    grid.push(SweepPoint::new(
        "chain-only",
        Scenario::from_config(chain).expect("grid cell is valid"),
    ));
    grid
}

// ---------------------------------------------------------------------------
// Asynchronous scenario sweeps (the PR 5 grid).
// ---------------------------------------------------------------------------

/// The heterogeneous population every asynchronous grid cell runs on:
/// 30% of the clients are stragglers up to `straggler_slowdown` slower
/// than the baseline.
fn async_profile(straggler_slowdown: f64, uplink: DelayDistribution, churn: bool) -> ProfileConfig {
    ProfileConfig {
        straggler_slowdown,
        straggler_fraction: 0.3,
        uplink,
        // Short online windows so departures land inside the few-round
        // simulated horizon of a bench cell (~1.5 simulated s per round).
        churn_fraction: if churn { 0.2 } else { 0.0 },
        churn_online_s: 2.0,
        churn_offline_s: 3.0,
    }
}

/// The quota × latency × churn grid of the event-driven engine: block
/// quotas from "wait for everyone" down to half the population, calm and
/// jittery uplinks, with and without client churn — all over the same
/// straggler-heavy population, with decayed staleness carry-over.
/// Signatures are off so cell cost is dominated by what the sweep varies.
pub fn async_grid(scale: Scale, rounds: usize) -> Vec<SweepPoint> {
    let clients = 10usize;
    let mut grid = Vec::new();
    for (quota, quota_name) in [(clients, "quota-all"), (7, "quota-7"), (5, "quota-5")] {
        for (uplink, uplink_name) in [
            (DelayDistribution::Constant(0.02), "calm-uplink"),
            (
                DelayDistribution::Normal {
                    mean: 0.08,
                    std: 0.03,
                },
                "jittery-uplink",
            ),
        ] {
            for (churn, churn_name) in [(false, "stable"), (true, "churn")] {
                let mut config = base_config(scale);
                config.fl.clients = clients;
                config.fl.participation_ratio = 1.0;
                config.fl.rounds = rounds;
                config.verify_signatures = false;
                config.sync = SyncMode::FlexibleQuota { quota };
                config.staleness = StalenessPolicy::DecayedInclude { decay: 0.5 };
                config.profiles = async_profile(8.0, uplink, churn);
                grid.push(SweepPoint::new(
                    format!("{quota_name}/{uplink_name}/{churn_name}"),
                    Scenario::from_config(config).expect("grid cell is valid"),
                ));
            }
        }
    }
    grid
}

/// The loss-rate × partition grid of the fault-injection subsystem
/// (PR 6): uplink drop rates crossed with mesh-splitting partitions of
/// increasing length, every faulted cell retrying lost uploads under
/// exponential backoff and salvaging orphaned ones at heal time. The
/// zero-fault/zero-split corner is the resilience curve's baseline. At
/// [`Scale::Smoke`] the grid shrinks to its four corners.
pub fn fault_grid(scale: Scale, rounds: usize) -> Vec<SweepPoint> {
    let clients = 10usize;
    let loss_rates: &[(f64, &str)] = match scale {
        Scale::Smoke => &[(0.0, "drop-00"), (0.3, "drop-30")],
        _ => &[(0.0, "drop-00"), (0.15, "drop-15"), (0.3, "drop-30")],
    };
    // Partition windows in absolute simulated seconds; rounds on this
    // population run ~1-3 simulated seconds each, so the splits cover
    // roughly one to two rounds and heal well before the run ends.
    let splits: &[(f64, &str)] = match scale {
        Scale::Smoke => &[(0.0, "joined"), (2.0, "split-2s")],
        _ => &[(0.0, "joined"), (2.0, "split-2s"), (4.0, "split-4s")],
    };
    let mut grid = Vec::new();
    for &(drop_rate, drop_name) in loss_rates {
        for &(split_s, split_name) in splits {
            let mut config = base_config(scale);
            config.fl.clients = clients;
            config.fl.participation_ratio = 1.0;
            config.fl.rounds = rounds;
            config.verify_signatures = false;
            config.miners = 3;
            config.sync = SyncMode::FlexibleQuota { quota: 7 };
            config.staleness = StalenessPolicy::DecayedInclude { decay: 0.5 };
            config.profiles = async_profile(8.0, DelayDistribution::Constant(0.05), false);
            config.fault = FaultPlan {
                uplink: LinkFaults {
                    drop_rate,
                    ..LinkFaults::default()
                },
                partition: (split_s > 0.0).then_some(Partition {
                    start_s: 1.0,
                    duration_s: split_s,
                    boundary: 2,
                }),
                ..FaultPlan::default()
            };
            if drop_rate > 0.0 {
                config.retry = RetryPolicy::Backoff {
                    max_attempts: 3,
                    timeout_s: 0.5,
                    base_s: 0.5,
                    factor: 2.0,
                    jitter_s: 0.1,
                };
            }
            config.reorg = ReorgPolicy::Salvage;
            grid.push(SweepPoint::new(
                format!("{drop_name}/{split_name}"),
                Scenario::from_config(config).expect("fault grid cell is valid"),
            ));
        }
    }
    grid
}

/// The synchronous-vs-flexible comparison pair of the PR 5 bench: the
/// same straggler-heavy population run with the block quota at "wait for
/// everyone" (the synchronous behaviour under heterogeneity) and at 60%
/// of the participants (the paper's flexible block size).
pub fn quota_comparison_configs(scale: Scale, rounds: usize) -> (BflConfig, BflConfig) {
    let clients = 10usize;
    let mut waiting = base_config(scale);
    waiting.fl.clients = clients;
    waiting.fl.participation_ratio = 1.0;
    waiting.fl.rounds = rounds;
    waiting.verify_signatures = false;
    waiting.sync = SyncMode::FlexibleQuota { quota: clients };
    waiting.staleness = StalenessPolicy::Discard;
    waiting.profiles = async_profile(
        8.0,
        DelayDistribution::Normal {
            mean: 0.08,
            std: 0.03,
        },
        false,
    );
    let mut flexible = waiting;
    flexible.sync = SyncMode::FlexibleQuota { quota: 6 };
    (waiting, flexible)
}

// ---------------------------------------------------------------------------
// PR 7: population-scale rounds.
// ---------------------------------------------------------------------------

/// One cell of the PR 7 population-scale bench: an implicit population of
/// `population` clients from which each round samples `participants`,
/// provisioned lazily under an O(participants) cache and folded through
/// streaming Procedure IV in `chunk`-sized committees on the event
/// engine. The block quota sits at 80% of the participants so rounds seal
/// without waiting for the slowest uplinks. Signatures stay off so the
/// cell measures engine bookkeeping and training, not RSA.
///
/// Holding `participants` fixed while `population` grows six orders of
/// magnitude is the experiment: peak heap must stay ≈ flat.
pub fn population_scale_config(
    population: usize,
    participants: usize,
    rounds: usize,
    chunk: usize,
) -> BflConfig {
    assert!(participants <= population);
    let mut config = base_config(Scale::Smoke);
    config.fl.clients = population;
    config.fl.participation_ratio = participants as f64 / population as f64;
    config.fl.rounds = rounds;
    config.fl.partition = PartitionKind::ImplicitIid {
        samples_per_client: 8,
    };
    config.verify_signatures = false;
    config.sync = SyncMode::FlexibleQuota {
        quota: (participants * 4 / 5).max(1),
    };
    config.staleness = StalenessPolicy::Discard;
    config.provisioning = ProvisioningMode::Lazy {
        cache_budget: participants.saturating_mul(2),
    };
    config.aggregation = AggregationMode::Streaming { chunk };
    // A sealed block carries the round's reward list — O(participants)
    // entries — so the block-size limit scales with the working set (the
    // paper's flexible block size, taken to population scale).
    config.delay.max_block_bytes = (512 * 1024).max(192 * participants);
    debug_assert_eq!(config.fl.selected_per_round(), participants);
    config
}

/// The signed companion cell: a small participant set drawn from the same
/// implicit population, with RSA signing *on* and keys derived lazily, so
/// the bench can show key-generation cost also tracks participants rather
/// than population.
pub fn population_signed_config(
    population: usize,
    participants: usize,
    rounds: usize,
) -> BflConfig {
    let mut config = population_scale_config(population, participants, rounds, participants);
    config.verify_signatures = true;
    config.rsa_modulus_bits = 256;
    config
}

// ---------------------------------------------------------------------------
// Table 2: attack detection.
// ---------------------------------------------------------------------------

/// Results of the Table 2 experiment for one partition regime.
#[derive(Debug, Clone)]
pub struct Table2Run {
    /// "Non-IID" or "IID".
    pub label: &'static str,
    /// The detection table.
    pub detection: DetectionTable,
    /// Final accuracy reached despite the attacks.
    pub final_accuracy: f64,
}

/// Runs the Table 2 experiment: 10 clients, full participation, 1-3
/// attackers per round, DBSCAN + discard, for both partition regimes.
pub fn table2(scale: Scale) -> Vec<Table2Run> {
    let rounds = match scale {
        Scale::Smoke => 3,
        _ => 10,
    };
    let data = dataset(scale);
    [
        (
            "Non-IID",
            PartitionKind::ShardNonIid {
                shards_per_client: 2,
            },
        ),
        ("IID", PartitionKind::Iid),
    ]
    .into_iter()
    .map(|(label, partition)| {
        let mut config = base_config(scale);
        config.fl.clients = 10;
        config.fl.participation_ratio = 1.0;
        config.fl.rounds = rounds;
        config.fl.partition = partition;
        config.strategy = LowContributionStrategy::Discard;
        config.attack = AttackConfig::table2();
        let result = BflSimulation::new(config)
            .run(&data.0, &data.1)
            .expect("table 2 run should complete");
        let final_accuracy = result.final_accuracy().unwrap_or(0.0);
        Table2Run {
            label,
            detection: result.detection,
            final_accuracy,
        }
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_parameters() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("SMOKE"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("nope"), None);
        assert!(Scale::Paper.clients() > Scale::Smoke.clients());
        assert_eq!(Scale::Paper.clients(), 100);
        assert_eq!(Scale::Paper.rounds(), 100);
        assert_eq!(Scale::Paper.epochs(), 5);
    }

    #[test]
    fn system_configs_differ_in_the_right_knobs() {
        let fair = system_config(SystemLabel::Fair, Scale::Smoke);
        let discard = system_config(SystemLabel::FairDiscard, Scale::Smoke);
        let chain = system_config(SystemLabel::Blockchain, Scale::Smoke);
        let fedavg = system_config(SystemLabel::FedAvg, Scale::Smoke);
        let fedprox = system_config(SystemLabel::FedProx, Scale::Smoke);

        assert_eq!(fair.mode, FlexibilityMode::FullBfl);
        assert_eq!(discard.strategy, LowContributionStrategy::Discard);
        assert_eq!(chain.mode, FlexibilityMode::ChainOnly);
        assert_eq!(fedavg.mode, FlexibilityMode::FlOnly);
        assert!(!fedavg.fair_aggregation);
        assert!(fedprox.fl.local.proximal_mu > 0.0);
        assert!(fedprox.fl.drop_percent > 0.0);
        for config in [fair, discard, chain, fedavg, fedprox] {
            config.validate().unwrap();
        }
        assert_eq!(SystemLabel::FairDiscard.name(), "FAIR-Discard");
    }

    #[test]
    fn smoke_figure4_has_expected_structure_and_ordering() {
        let figure = figure4(Scale::Smoke);
        assert_eq!(figure.delay_series.len(), 3);
        assert_eq!(figure.accuracy_series.len(), 3);
        assert_eq!(figure.mean_delays.len(), 4);
        let delay_of = |label: SystemLabel| {
            figure
                .mean_delays
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, d)| *d)
                .unwrap()
        };
        // FedAvg is the cheapest of the three delay curves even at smoke scale.
        assert!(delay_of(SystemLabel::FedAvg) < delay_of(SystemLabel::Fair));
    }

    #[test]
    fn scenario_grid_covers_the_design_space_and_completes() {
        let grid = scenario_grid(Scale::Smoke, 1);
        // 2 modes x 3 anchors x 2 strategies + chain-only.
        assert_eq!(grid.len(), 13);
        let labels: Vec<&str> = grid.iter().map(|p| p.label.as_str()).collect();
        assert!(labels.contains(&"full/median/discard"));
        assert!(labels.contains(&"fl-only/mean/keep"));
        assert!(labels.contains(&"chain-only"));
        // Labels are unique — sweep reports key on them.
        let mut deduped = labels.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), labels.len());
    }

    #[test]
    fn async_grid_covers_quota_latency_and_churn() {
        let grid = async_grid(Scale::Smoke, 1);
        // 3 quotas x 2 uplinks x 2 churn settings.
        assert_eq!(grid.len(), 12);
        let labels: Vec<&str> = grid.iter().map(|p| p.label.as_str()).collect();
        assert!(labels.contains(&"quota-all/calm-uplink/stable"));
        assert!(labels.contains(&"quota-5/jittery-uplink/churn"));
        let mut deduped = labels.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), labels.len());
    }

    #[test]
    fn fault_grid_covers_loss_and_partition_axes() {
        let grid = fault_grid(Scale::Smoke, 1);
        // 2 loss rates x 2 partition windows at smoke scale.
        assert_eq!(grid.len(), 4);
        let full = fault_grid(Scale::Medium, 1);
        // 3 loss rates x 3 partition windows otherwise.
        assert_eq!(full.len(), 9);
        let labels: Vec<&str> = grid.iter().map(|p| p.label.as_str()).collect();
        assert!(labels.contains(&"drop-00/joined"), "baseline corner exists");
        assert!(labels.contains(&"drop-30/split-2s"));
        let mut deduped = labels.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), labels.len());
        // The baseline corner carries no active faults; every other cell
        // carries at least one.
        for point in &full {
            let active = point.scenario.config().fault.is_active();
            assert_eq!(active, point.label != "drop-00/joined", "{}", point.label);
        }
    }

    #[test]
    fn quota_comparison_pair_differs_only_in_the_quota() {
        let (waiting, flexible) = quota_comparison_configs(Scale::Smoke, 2);
        waiting.validate().unwrap();
        flexible.validate().unwrap();
        assert_eq!(waiting.sync, SyncMode::FlexibleQuota { quota: 10 });
        assert_eq!(flexible.sync, SyncMode::FlexibleQuota { quota: 6 });
        let mut aligned = flexible;
        aligned.sync = waiting.sync;
        assert_eq!(aligned, waiting);
    }

    #[test]
    fn smoke_table2_produces_rows_for_both_regimes() {
        let runs = table2(Scale::Smoke);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].label, "Non-IID");
        assert_eq!(runs[1].label, "IID");
        for run in &runs {
            assert_eq!(run.detection.len(), 3);
            assert!(run.final_accuracy >= 0.0);
        }
    }
}
