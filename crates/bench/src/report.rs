//! Markdown rendering of experiment results (the tables recorded in
//! EXPERIMENTS.md are produced by these helpers).

use crate::experiments::{Figure4, Figure7, LearningRateRow, ScaleRow, SystemLabel, Table2Run};

/// Renders a `(system, value)` list as one markdown table row.
fn value_cells(values: &[(SystemLabel, f64)], precision: usize) -> String {
    values
        .iter()
        .map(|(_, v)| format!("{v:.precision$}"))
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Figure 4 summary: mean delays and mean accuracies per system.
pub fn render_figure4(figure: &Figure4) -> String {
    let mut out = String::new();
    out.push_str("### Figure 4a — average delay per communication round (seconds)\n\n");
    out.push_str("| system | mean round delay (s) |\n|---|---|\n");
    for (system, delay) in &figure.mean_delays {
        out.push_str(&format!("| {} | {:.2} |\n", system.name(), delay));
    }
    out.push_str("\n### Figure 4b — accuracy over time\n\n");
    out.push_str(
        "| system | mean accuracy | final accuracy | time to final (s) |\n|---|---|---|---|\n",
    );
    for (system, series) in &figure.accuracy_series {
        let final_point = series.last().copied().unwrap_or((0.0, 0.0));
        let mean = figure
            .mean_accuracies
            .iter()
            .find(|(l, _)| l == system)
            .map(|(_, a)| *a)
            .unwrap_or(0.0);
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.1} |\n",
            system.name(),
            mean,
            final_point.1,
            final_point.0
        ));
    }
    out
}

/// Figure 5 sweep table.
pub fn render_figure5(rows: &[LearningRateRow]) -> String {
    let mut out = String::new();
    out.push_str("### Figure 5 — impact of the learning rate\n\n");
    out.push_str("| η | FAIR delay (s) | FedAvg delay (s) | FedProx delay (s) | FAIR acc | FedAvg acc | FedProx acc |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    for row in rows {
        out.push_str(&format!(
            "| {:.2} | {} | {} |\n",
            row.learning_rate,
            value_cells(&row.delays, 2),
            value_cells(&row.accuracies, 3)
        ));
    }
    out
}

/// Figure 6 sweep table (workers or miners).
pub fn render_figure6(rows: &[ScaleRow], x_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("### Figure 6 — delay versus {x_label}\n\n"));
    if let Some(first) = rows.first() {
        out.push_str(&format!(
            "| {x_label} | {} |\n",
            first
                .delays
                .iter()
                .map(|(s, _)| format!("{} delay (s)", s.name()))
                .collect::<Vec<_>>()
                .join(" | ")
        ));
        out.push_str(&format!("|{}|\n", "---|".repeat(first.delays.len() + 1)));
    }
    for row in rows {
        out.push_str(&format!(
            "| {} | {} |\n",
            row.x,
            value_cells(&row.delays, 2)
        ));
    }
    out
}

/// Figure 7 summary table.
pub fn render_figure7(figure: &Figure7) -> String {
    let mut out = String::new();
    out.push_str("### Figure 7 — cost-effectiveness of the discard strategy\n\n");
    out.push_str("| system | mean round delay (s) | final accuracy | convergence time (s) |\n|---|---|---|---|\n");
    for (system, delay) in &figure.mean_delays {
        let accuracy = figure
            .final_accuracies
            .iter()
            .find(|(l, _)| l == system)
            .map(|(_, a)| format!("{a:.3}"))
            .unwrap_or_else(|| "-".to_string());
        let convergence = figure
            .convergence_times
            .iter()
            .find(|(l, _)| l == system)
            .map(|(_, t)| match t {
                Some(t) => format!("{t:.0}"),
                None => "not reached".to_string(),
            })
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "| {} | {:.2} | {} | {} |\n",
            system.name(),
            delay,
            accuracy,
            convergence
        ));
    }
    out
}

/// Table 2 rendering, matching the paper's row format.
pub fn render_table2(runs: &[Table2Run]) -> String {
    let mut out = String::new();
    out.push_str("### Table 2 — detecting malicious attacks\n\n");
    out.push_str("| Distribution | Round | Attacker Index | Drop Index | Detection Rate |\n");
    out.push_str("|---|---|---|---|---|\n");
    for run in runs {
        for row in &run.detection.rows {
            let rate = row
                .detection_rate
                .map(|r| format!("{:.2}%", r * 100.0))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "| {} | {} | {:?} | {:?} | {} |\n",
                run.label, row.round, row.attacker_ids, row.dropped_ids, rate
            ));
        }
        out.push_str(&format!(
            "| {} | **Average** | | | **{:.2}%** |\n",
            run.label,
            run.detection.average_detection_rate() * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Scale, SystemLabel};
    use bfl_core::{DetectionRow, DetectionTable};

    #[test]
    fn figure6_rendering_contains_all_rows() {
        let rows = vec![
            ScaleRow {
                x: 20,
                delays: vec![(SystemLabel::Fair, 8.0), (SystemLabel::Blockchain, 3.0)],
            },
            ScaleRow {
                x: 100,
                delays: vec![(SystemLabel::Fair, 8.1), (SystemLabel::Blockchain, 9.5)],
            },
        ];
        let md = render_figure6(&rows, "workers");
        assert!(md.contains("| 20 |"));
        assert!(md.contains("| 100 |"));
        assert!(md.contains("FAIR delay"));
        assert!(md.contains("Blockchain delay"));
    }

    #[test]
    fn table2_rendering_includes_average() {
        let mut detection = DetectionTable::new();
        detection.push(DetectionRow::new(1, &[3, 7], &[3]));
        let runs = vec![Table2Run {
            label: "IID",
            detection,
            final_accuracy: 0.9,
        }];
        let md = render_table2(&runs);
        assert!(md.contains("IID"));
        assert!(md.contains("50.00%"));
        assert!(md.contains("Average"));
    }

    #[test]
    fn figure5_rendering_has_one_row_per_learning_rate() {
        let rows = vec![LearningRateRow {
            learning_rate: 0.05,
            delays: vec![
                (SystemLabel::Fair, 8.0),
                (SystemLabel::FedAvg, 6.0),
                (SystemLabel::FedProx, 6.1),
            ],
            accuracies: vec![
                (SystemLabel::Fair, 0.9),
                (SystemLabel::FedAvg, 0.89),
                (SystemLabel::FedProx, 0.84),
            ],
        }];
        let md = render_figure5(&rows);
        assert!(md.contains("0.05"));
        assert!(md.lines().filter(|l| l.starts_with("| 0.")).count() == 1);
        let _ = Scale::Smoke; // silence unused import in cfg(test) when pruned
    }
}
