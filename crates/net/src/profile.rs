//! Per-client node profiles: compute heterogeneity, uplink quality, and
//! churn schedules.
//!
//! The synchronous engine treats every client as identical — a round waits
//! for the slowest participant, so heterogeneity is invisible. The
//! event-driven engine gives each client a [`NodeProfile`]: a compute-rate
//! multiplier (stragglers train slower), its own uplink
//! [`DelayDistribution`], and a [`ChurnSchedule`] of dropout/rejoin windows
//! (FAIR-BFL's dynamic-join property). Profiles are plain deterministic
//! values — every delay sample is drawn from the round RNG by the engine,
//! so a profile itself never holds mutable state.

use crate::delay::DelayDistribution;
use serde::{Deserialize, Serialize};

/// When a node is online, as a function of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ChurnSchedule {
    /// The node never leaves.
    #[default]
    AlwaysOn,
    /// The node periodically departs and rejoins: online until
    /// `first_leave_s`, then alternating `offline_s` seconds offline and
    /// `online_s` seconds online, forever.
    Periodic {
        /// Simulated second of the first departure.
        first_leave_s: f64,
        /// Seconds spent offline per departure (> 0).
        offline_s: f64,
        /// Seconds spent online between departures (> 0).
        online_s: f64,
    },
}

impl ChurnSchedule {
    /// True when the node is online at simulated second `t`.
    pub fn is_online(&self, t: f64) -> bool {
        match *self {
            ChurnSchedule::AlwaysOn => true,
            ChurnSchedule::Periodic {
                first_leave_s,
                offline_s,
                online_s,
            } => {
                if t < first_leave_s {
                    return true;
                }
                let phase = (t - first_leave_s) % (offline_s + online_s);
                phase >= offline_s
            }
        }
    }

    /// The earliest simulated second `>= t` at which the node is online:
    /// `t` itself when already online, otherwise the end of the current
    /// offline window. The event engine uses this to fast-forward the
    /// clock when churn has taken every selectable client offline.
    pub fn next_online_from(&self, t: f64) -> f64 {
        match *self {
            ChurnSchedule::AlwaysOn => t,
            ChurnSchedule::Periodic {
                first_leave_s,
                offline_s,
                online_s,
            } => {
                if self.is_online(t) {
                    return t;
                }
                let phase = (t - first_leave_s) % (offline_s + online_s);
                t + (offline_s - phase)
            }
        }
    }

    /// Validates the schedule's parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ChurnSchedule::AlwaysOn => Ok(()),
            ChurnSchedule::Periodic {
                first_leave_s,
                offline_s,
                online_s,
            } => {
                if !(first_leave_s.is_finite() && first_leave_s >= 0.0) {
                    return Err(format!(
                        "churn first_leave_s must be finite and non-negative, got {first_leave_s}"
                    ));
                }
                if !(offline_s.is_finite() && offline_s > 0.0) {
                    return Err(format!("churn offline_s must be positive, got {offline_s}"));
                }
                if !(online_s.is_finite() && online_s > 0.0) {
                    return Err(format!("churn online_s must be positive, got {online_s}"));
                }
                Ok(())
            }
        }
    }
}

/// One client's heterogeneity profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Multiplier on the client's local-training time (1.0 = the
    /// baseline rate of the delay model; stragglers are > 1).
    pub compute_multiplier: f64,
    /// Per-upload one-way uplink latency.
    pub uplink: DelayDistribution,
    /// When the client is online.
    pub churn: ChurnSchedule,
}

impl Default for NodeProfile {
    fn default() -> Self {
        NodeProfile::uniform()
    }
}

impl NodeProfile {
    /// The degenerate profile: baseline compute rate, zero uplink
    /// latency, always online. A population of uniform profiles makes the
    /// event engine behave like the synchronous one.
    pub fn uniform() -> Self {
        NodeProfile {
            compute_multiplier: 1.0,
            uplink: DelayDistribution::Constant(0.0),
            churn: ChurnSchedule::AlwaysOn,
        }
    }

    /// True when the client is online at simulated second `t`.
    pub fn is_online(&self, t: f64) -> bool {
        self.churn.is_online(t)
    }

    /// The earliest simulated second `>= t` at which the client is online
    /// (see [`ChurnSchedule::next_online_from`]).
    pub fn next_online_from(&self, t: f64) -> f64 {
        self.churn.next_online_from(t)
    }

    /// Local-training seconds for this client, given the baseline seconds
    /// the delay model would charge a nominal client.
    pub fn training_seconds(&self, baseline_s: f64) -> f64 {
        baseline_s * self.compute_multiplier
    }

    /// Validates the profile's parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.compute_multiplier.is_finite() && self.compute_multiplier > 0.0) {
            return Err(format!(
                "compute_multiplier must be finite and positive, got {}",
                self.compute_multiplier
            ));
        }
        self.churn.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_is_always_online() {
        let p = NodeProfile::uniform();
        for t in [0.0, 1.0, 1e9] {
            assert!(p.is_online(t));
        }
        assert_eq!(p.training_seconds(2.5), 2.5);
        p.validate().unwrap();
    }

    #[test]
    fn periodic_schedule_cycles() {
        let churn = ChurnSchedule::Periodic {
            first_leave_s: 10.0,
            offline_s: 5.0,
            online_s: 20.0,
        };
        churn.validate().unwrap();
        assert!(churn.is_online(0.0));
        assert!(churn.is_online(9.99));
        // Offline window [10, 15).
        assert!(!churn.is_online(10.0));
        assert!(!churn.is_online(14.9));
        // Online window [15, 35).
        assert!(churn.is_online(15.0));
        assert!(churn.is_online(34.9));
        // Next offline window [35, 40).
        assert!(!churn.is_online(35.0));
        assert!(churn.is_online(40.0));
    }

    #[test]
    fn next_online_lands_at_the_end_of_the_offline_window() {
        let churn = ChurnSchedule::Periodic {
            first_leave_s: 10.0,
            offline_s: 5.0,
            online_s: 20.0,
        };
        // Already online: identity.
        assert_eq!(churn.next_online_from(3.0), 3.0);
        assert_eq!(churn.next_online_from(16.0), 16.0);
        // Inside the first offline window [10, 15): jump to 15.
        assert!((churn.next_online_from(10.0) - 15.0).abs() < 1e-12);
        assert!((churn.next_online_from(14.5) - 15.0).abs() < 1e-12);
        // Inside the second offline window [35, 40): jump to 40.
        assert!((churn.next_online_from(36.0) - 40.0).abs() < 1e-12);
        // The returned instant is actually online.
        for t in [0.0, 10.0, 12.3, 14.999, 36.0, 39.9] {
            assert!(churn.is_online(churn.next_online_from(t)));
        }
        assert_eq!(ChurnSchedule::AlwaysOn.next_online_from(7.0), 7.0);
    }

    #[test]
    fn straggler_profile_scales_training_time() {
        let slow = NodeProfile {
            compute_multiplier: 8.0,
            ..NodeProfile::uniform()
        };
        assert_eq!(slow.training_seconds(3.0), 24.0);
        slow.validate().unwrap();
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let bad = NodeProfile {
            compute_multiplier: 0.0,
            ..NodeProfile::uniform()
        };
        assert!(bad.validate().unwrap_err().contains("compute_multiplier"));
        let bad_churn = ChurnSchedule::Periodic {
            first_leave_s: f64::NAN,
            offline_s: 1.0,
            online_s: 1.0,
        };
        assert!(bad_churn.validate().is_err());
        let zero_offline = ChurnSchedule::Periodic {
            first_leave_s: 0.0,
            offline_s: 0.0,
            online_s: 1.0,
        };
        assert!(zero_offline.validate().unwrap_err().contains("offline_s"));
    }

    #[test]
    fn profiles_serialize() {
        let p = NodeProfile {
            compute_multiplier: 2.0,
            uplink: DelayDistribution::Uniform { min: 0.1, max: 0.4 },
            churn: ChurnSchedule::Periodic {
                first_leave_s: 30.0,
                offline_s: 10.0,
                online_s: 60.0,
            },
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: NodeProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
