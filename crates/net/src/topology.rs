//! Client/miner topology and the per-round client→miner association.
//!
//! Procedure-II: "the client C_i generates the miner's index k uniformly
//! and randomly, then it associates the miner S_k and uploads the updated
//! gradient" — each selected client talks to exactly one uniformly chosen
//! miner per round, and the miners form a full mesh among themselves.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The static shape of the deployment: how many clients and miners exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of federated clients (workers), `n` in the paper.
    pub clients: usize,
    /// Number of miners (servers), `m` in the paper.
    pub miners: usize,
}

impl Topology {
    /// Creates a topology; both counts must be positive.
    pub fn new(clients: usize, miners: usize) -> Self {
        assert!(clients > 0, "need at least one client");
        assert!(miners > 0, "need at least one miner");
        Topology { clients, miners }
    }

    /// The paper's default deployment: 100 clients, 2 miners.
    pub fn paper_default() -> Self {
        Topology::new(100, 2)
    }

    /// Uniformly associates each of the given clients with a miner for one
    /// round. Returns `assignments[i] = miner index` aligned with `clients`.
    pub fn associate_clients<R: Rng + ?Sized>(&self, clients: &[u64], rng: &mut R) -> Vec<usize> {
        clients
            .iter()
            .map(|_| rng.gen_range(0..self.miners))
            .collect()
    }

    /// Associates a single client with a miner: the allocation-free form
    /// of [`associate_clients`](Self::associate_clients) for one-upload
    /// call sites (the event engine's send path). Draws exactly one
    /// `gen_range`, identical to a one-element batch, so traces and
    /// learning trajectories are unchanged.
    pub fn associate_one<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.gen_range(0..self.miners)
    }

    /// Number of miner-to-miner links in the full mesh.
    pub fn miner_mesh_links(&self) -> usize {
        self.miners * self.miners.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_matches_section_5_1() {
        let t = Topology::paper_default();
        assert_eq!(t.clients, 100);
        assert_eq!(t.miners, 2);
        assert_eq!(t.miner_mesh_links(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one miner")]
    fn zero_miners_rejected() {
        let _ = Topology::new(10, 0);
    }

    #[test]
    fn association_is_uniformish_and_in_range() {
        let t = Topology::new(1000, 4);
        let clients: Vec<u64> = (0..1000).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let assignment = t.associate_clients(&clients, &mut rng);
        assert_eq!(assignment.len(), 1000);
        let mut counts = vec![0usize; 4];
        for &m in &assignment {
            assert!(m < 4);
            counts[m] += 1;
        }
        // Each miner should get roughly a quarter of the clients.
        for &c in &counts {
            assert!(c > 150 && c < 350, "unbalanced assignment: {counts:?}");
        }
    }

    #[test]
    fn associate_one_matches_batch_draw_for_draw() {
        let t = Topology::new(100, 4);
        let clients: Vec<u64> = (0..50).collect();
        let mut batch_rng = StdRng::seed_from_u64(9);
        let mut single_rng = StdRng::seed_from_u64(9);
        let batch = t.associate_clients(&clients, &mut batch_rng);
        let singles: Vec<usize> = clients
            .iter()
            .map(|_| t.associate_one(&mut single_rng))
            .collect();
        assert_eq!(batch, singles);
    }

    #[test]
    fn mesh_link_count() {
        assert_eq!(Topology::new(10, 1).miner_mesh_links(), 0);
        assert_eq!(Topology::new(10, 2).miner_mesh_links(), 1);
        assert_eq!(Topology::new(10, 5).miner_mesh_links(), 10);
    }
}
