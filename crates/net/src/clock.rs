//! Simulated wall-clock time.
//!
//! All delays in the reproduction are simulated seconds, not host seconds,
//! so experiment results are deterministic and machine-independent. The
//! clock only ever moves forward.

use serde::{Deserialize, Serialize};

/// A monotonically advancing simulated clock.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now_seconds: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in seconds.
    pub fn now_seconds(&self) -> f64 {
        self.now_seconds
    }

    /// Current simulated time in whole milliseconds (for block timestamps).
    ///
    /// Unit contract: the clock counts *seconds* internally and only
    /// [`advance`](Self::advance) can move it, which rejects negative and
    /// non-finite increments — so the stored time is always a finite,
    /// non-negative number of seconds and the conversion cannot go below
    /// zero. The assertion documents (and, in debug builds, enforces)
    /// that invariant instead of silently clamping.
    pub fn now_millis(&self) -> u64 {
        debug_assert!(
            self.now_seconds.is_finite() && self.now_seconds >= 0.0,
            "SimClock invariant violated: time must be finite and non-negative (got {})",
            self.now_seconds
        );
        (self.now_seconds * 1000.0).round() as u64
    }

    /// Advances the clock by `seconds` (must be non-negative and finite).
    pub fn advance(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "clock can only advance by a finite, non-negative amount (got {seconds})"
        );
        self.now_seconds += seconds;
    }

    /// Returns a copy advanced by `seconds` without mutating `self`.
    pub fn advanced_by(&self, seconds: f64) -> SimClock {
        let mut clone = *self;
        clone.advance(seconds);
        clone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now_seconds(), 0.0);
        assert_eq!(clock.now_millis(), 0);
        clock.advance(1.5);
        clock.advance(0.25);
        assert!((clock.now_seconds() - 1.75).abs() < 1e-12);
        assert_eq!(clock.now_millis(), 1750);
    }

    #[test]
    fn advanced_by_does_not_mutate() {
        let clock = SimClock::new();
        let later = clock.advanced_by(3.0);
        assert_eq!(clock.now_seconds(), 0.0);
        assert_eq!(later.now_seconds(), 3.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_advance_panics() {
        SimClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_advance_panics() {
        SimClock::new().advance(f64::NAN);
    }
}
