//! A deterministic discrete-event queue for the simulated clock.
//!
//! The asynchronous round engine (PR 5) schedules training completions and
//! upload arrivals as timed events instead of executing Procedures I–V in
//! lockstep. Determinism is the whole point: two runs of the same scenario
//! must pop the exact same events in the exact same order, on any machine
//! and under any sweep parallelism. The queue therefore orders events by
//! `(simulated time, insertion sequence)` — the sequence number breaks
//! time ties FIFO, so simultaneous events (for example two zero-delay
//! uploads) resolve in the order they were scheduled, never in allocator
//! or hash order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event popped from the queue: when it fires, its insertion sequence
/// number, and the scheduled payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<T> {
    /// Simulated time in seconds at which the event fires.
    pub time_s: f64,
    /// Insertion sequence number (unique per queue, monotonically
    /// increasing; ties on `time_s` pop in `seq` order).
    pub seq: u64,
    /// The scheduled payload.
    pub payload: T,
}

/// Heap entry with inverted ordering so the `BinaryHeap` max-heap pops the
/// earliest `(time, seq)` first.
struct Entry<T> {
    time_s: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the max-heap's "largest" entry is the earliest event.
        // `total_cmp` is safe because `push` rejects non-finite times.
        other
            .time_s
            .total_cmp(&self.time_s)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timed events with deterministic FIFO tie-breaking.
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at simulated second `time_s` (must be finite
    /// and non-negative), returning its sequence number.
    pub fn push(&mut self, time_s: f64, payload: T) -> u64 {
        assert!(
            time_s.is_finite() && time_s >= 0.0,
            "events must be scheduled at a finite, non-negative time (got {time_s})"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time_s,
            seq,
            payload,
        });
        seq
    }

    /// Removes and returns the earliest pending event (ties broken by
    /// insertion order), or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        self.heap.pop().map(|e| ScheduledEvent {
            time_s: e.time_s,
            seq: e.seq,
            payload: e.payload,
        })
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time_s)
    }

    /// Drops every pending event (the sequence counter keeps advancing so
    /// event identities stay unique across the run).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(1.5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_numbers_survive_clear() {
        let mut q = EventQueue::new();
        let first = q.push(1.0, ());
        q.clear();
        assert!(q.is_empty());
        let second = q.push(1.0, ());
        assert!(second > first, "event identities stay unique across clear");
    }

    #[test]
    #[should_panic(expected = "finite, non-negative")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "finite, non-negative")]
    fn rejects_negative_times() {
        EventQueue::new().push(-0.5, ());
    }
}
