//! A deterministic discrete-event queue for the simulated clock.
//!
//! The asynchronous round engine (PR 5) schedules training completions and
//! upload arrivals as timed events instead of executing Procedures I–V in
//! lockstep. Determinism is the whole point: two runs of the same scenario
//! must pop the exact same events in the exact same order, on any machine
//! and under any sweep parallelism. The queue therefore orders events by
//! `(simulated time, insertion sequence)` — the sequence number breaks
//! time ties FIFO, so simultaneous events (for example two zero-delay
//! uploads) resolve in the order they were scheduled, never in allocator
//! or hash order.
//!
//! ## Lane sharding
//!
//! Internally the queue is sharded into a fixed set of per-lane binary
//! heaps instead of one global heap, in the spirit of event-driven
//! components that each own a local clock. The invariants that keep the
//! shards invisible to observers:
//!
//! * **Total order lives in the key, not the structure.** Every event
//!   carries a globally monotone sequence number allocated at `push`, and
//!   the pop order is defined as ascending `(time_s, seq)` — a total
//!   order over all events in the queue, regardless of which lane holds
//!   them. Lane placement is pure storage routing.
//! * **Merge order.** `pop` takes the minimum over the lane heads by
//!   `(time_s, seq)`; lanes are scanned in ascending lane index, and a
//!   later lane replaces the candidate only when *strictly* smaller, so
//!   the scan order cannot matter (two heads can never share a `seq`).
//!   Tie-breaks between equal times are therefore decided by `seq`
//!   alone — exactly the FIFO contract of the old global heap.
//! * **Replay determinism.** Because the pop sequence is a pure function
//!   of the pushed `(time_s, seq, payload)` set, resharding (any lane
//!   count, any routing function) is bit-invisible to replay: the PR 4–7
//!   golden digests hold for any `with_lanes` choice.
//! * **Batch drains.** All events sharing the earliest pending time form
//!   a *due batch*; [`EventQueue::pop_due_batch`] removes the per-lane
//!   runs and merges them by `seq`. A handler that processes a drained
//!   batch left-to-right observes exactly the one-at-a-time pop order
//!   (any event scheduled *while* processing carries a larger `seq` and
//!   therefore sorts after the drained batch, even at the same time);
//!   unprocessed members can go back via [`EventQueue::reinsert`], which
//!   preserves their original `seq` and hence their slot in the total
//!   order.
//! * **Parallel lane drains.** Each lane's contents can be extracted and
//!   sorted independently ([`EventQueue::into_lane_runs`]) — each run is
//!   already ascending in `(time_s, seq)` — and a k-way merge
//!   ([`merge_runs`]) reproduces the exact global pop order. This is
//!   what lets a fan-out drain lanes on worker threads and still hand
//!   the engine a bit-identical event sequence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of lanes a queue built with [`EventQueue::new`] shards into.
///
/// Eight stripes keeps each per-lane heap roughly an eighth of the
/// population's pending events (sequence routing is round-robin), cutting
/// the `O(log n)` sift depth per operation while staying small enough
/// that the head-merge scan in `pop` is a handful of comparisons.
pub const DEFAULT_LANES: usize = 8;

/// An event popped from the queue: when it fires, its insertion sequence
/// number, and the scheduled payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<T> {
    /// Simulated time in seconds at which the event fires.
    pub time_s: f64,
    /// Insertion sequence number (unique per queue, monotonically
    /// increasing; ties on `time_s` pop in `seq` order).
    pub seq: u64,
    /// The scheduled payload.
    pub payload: T,
}

/// Rejected schedule: event times must be finite and non-negative.
///
/// Returned by [`EventQueue::try_push`]; the panicking [`EventQueue::push`]
/// wraps the same check for call sites whose times are correct by
/// construction (the engine's delay models only emit finite sums).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidEventTime {
    /// The offending time, as given.
    pub time_s: f64,
}

impl std::fmt::Display for InvalidEventTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "events must be scheduled at a finite, non-negative time (got {})",
            self.time_s
        )
    }
}

impl std::error::Error for InvalidEventTime {}

/// Heap entry with inverted ordering so the `BinaryHeap` max-heap pops the
/// earliest `(time, seq)` first.
struct Entry<T> {
    time_s: f64,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    fn into_event(self) -> ScheduledEvent<T> {
        ScheduledEvent {
            time_s: self.time_s,
            seq: self.seq,
            payload: self.payload,
        }
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the max-heap's "largest" entry is the earliest event.
        // `total_cmp` is safe because `push` rejects non-finite times.
        other
            .time_s
            .total_cmp(&self.time_s)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A lane-sharded min-heap of timed events with deterministic FIFO
/// tie-breaking. See the [module docs](self) for the sharding invariants.
pub struct EventQueue<T> {
    lanes: Vec<BinaryHeap<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with [`DEFAULT_LANES`] lanes.
    pub fn new() -> Self {
        Self::with_lanes(DEFAULT_LANES)
    }

    /// Creates an empty queue sharded into `lanes` heaps (at least one).
    /// The lane count only shapes storage — pop order is identical for
    /// every choice.
    pub fn with_lanes(lanes: usize) -> Self {
        EventQueue {
            lanes: (0..lanes.max(1)).map(|_| BinaryHeap::new()).collect(),
            next_seq: 0,
        }
    }

    /// Number of storage lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(BinaryHeap::len).sum()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(BinaryHeap::is_empty)
    }

    /// Schedules `payload` at simulated second `time_s` (must be finite
    /// and non-negative), returning its sequence number.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or negative time; use
    /// [`EventQueue::try_push`] to handle the rejection as a value.
    pub fn push(&mut self, time_s: f64, payload: T) -> u64 {
        match self.try_push(time_s, payload) {
            Ok(seq) => seq,
            Err(err) => panic!("{err}"),
        }
    }

    /// Schedules `payload` at simulated second `time_s`, returning its
    /// sequence number, or [`InvalidEventTime`] when the time is
    /// non-finite or negative (in which case nothing is scheduled).
    pub fn try_push(&mut self, time_s: f64, payload: T) -> Result<u64, InvalidEventTime> {
        if !(time_s.is_finite() && time_s >= 0.0) {
            return Err(InvalidEventTime { time_s });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let lane = (seq % self.lanes.len() as u64) as usize;
        self.lanes[lane].push(Entry {
            time_s,
            seq,
            payload,
        });
        Ok(seq)
    }

    /// Puts a previously popped event back, preserving its sequence
    /// number — and therefore its exact slot in the pop order. Used by
    /// batch drains to return members they chose not to process.
    pub fn reinsert(&mut self, event: ScheduledEvent<T>) {
        let lane = (event.seq % self.lanes.len() as u64) as usize;
        self.lanes[lane].push(Entry {
            time_s: event.time_s,
            seq: event.seq,
            payload: event.payload,
        });
    }

    /// Index of the lane holding the globally earliest `(time, seq)`
    /// head, or `None` when every lane is empty. Later lanes win only on
    /// strict inequality, so the ascending scan order is immaterial.
    fn min_lane(&self) -> Option<usize> {
        let mut best: Option<(usize, f64, u64)> = None;
        for (lane, heap) in self.lanes.iter().enumerate() {
            let Some(head) = heap.peek() else { continue };
            let better = match &best {
                None => true,
                Some((_, time, seq)) => match head.time_s.total_cmp(time) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => head.seq < *seq,
                },
            };
            if better {
                best = Some((lane, head.time_s, head.seq));
            }
        }
        best.map(|(lane, _, _)| lane)
    }

    /// Removes and returns the earliest pending event (ties broken by
    /// insertion order), or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let lane = self.min_lane()?;
        self.lanes[lane].pop().map(Entry::into_event)
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        let lane = self.min_lane()?;
        self.lanes[lane].peek().map(|e| e.time_s)
    }

    /// Removes *every* event scheduled at the earliest pending time and
    /// appends them to `out` in pop order (ascending `seq`), returning
    /// how many were drained. Each lane's same-time run is popped once,
    /// then one sort by `seq` merges the runs — cheaper than `len` full
    /// head-merges when simultaneous fan-ins are wide (PR 7's
    /// population-scale rounds commission thousands of zero-delay
    /// events at one timestamp).
    pub fn pop_due_batch(&mut self, out: &mut Vec<ScheduledEvent<T>>) -> usize {
        let Some(lane) = self.min_lane() else {
            return 0;
        };
        let due = self.lanes[lane]
            .peek()
            .map(|e| e.time_s)
            .expect("min_lane returned a non-empty lane");
        let start = out.len();
        for heap in &mut self.lanes {
            while let Some(head) = heap.peek() {
                if head.time_s.total_cmp(&due) != Ordering::Equal {
                    break;
                }
                let entry = heap.pop().expect("peeked entry pops");
                out.push(entry.into_event());
            }
        }
        out[start..].sort_by_key(|e| e.seq);
        out.len() - start
    }

    /// Consumes the queue into one ascending `(time, seq)` run per lane.
    /// Each run can be produced on its own worker; [`merge_runs`] then
    /// reconstructs the exact global pop order.
    pub fn into_lane_runs(self) -> Vec<Vec<ScheduledEvent<T>>> {
        self.lanes
            .into_iter()
            .map(|heap| {
                let mut run: Vec<ScheduledEvent<T>> =
                    heap.into_vec().into_iter().map(Entry::into_event).collect();
                run.sort_by(|a, b| {
                    a.time_s
                        .total_cmp(&b.time_s)
                        .then_with(|| a.seq.cmp(&b.seq))
                });
                run
            })
            .collect()
    }

    /// [`EventQueue::into_lane_runs`] with the per-lane sorts fanned out
    /// over at most `workers` scoped threads (stripes of whole lanes per
    /// worker). Each lane's run is a pure function of that lane's
    /// contents, so the output — and any downstream [`merge_runs`] — is
    /// bit-identical at every worker count.
    pub fn into_lane_runs_parallel(self, workers: usize) -> Vec<Vec<ScheduledEvent<T>>>
    where
        T: Send,
    {
        let lanes = self.lanes.len();
        let workers = workers.max(1).min(lanes);
        if workers <= 1 {
            return self.into_lane_runs();
        }
        let mut slots: Vec<Vec<ScheduledEvent<T>>> = Vec::with_capacity(lanes);
        let heaps: Vec<BinaryHeap<Entry<T>>> = self.lanes;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            let mut rest = heaps;
            // Contiguous stripes, sized front-loaded like a balanced split.
            for w in 0..workers {
                let remaining_workers = workers - w;
                let take = rest.len().div_ceil(remaining_workers);
                let tail = rest.split_off(take);
                let stripe = std::mem::replace(&mut rest, tail);
                handles.push(scope.spawn(move || {
                    stripe
                        .into_iter()
                        .map(|heap| {
                            let mut run: Vec<ScheduledEvent<T>> =
                                heap.into_vec().into_iter().map(Entry::into_event).collect();
                            run.sort_by(|a, b| {
                                a.time_s
                                    .total_cmp(&b.time_s)
                                    .then_with(|| a.seq.cmp(&b.seq))
                            });
                            run
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                slots.extend(handle.join().expect("lane-drain worker panicked"));
            }
        });
        slots
    }

    /// Drops every pending event (the sequence counter keeps advancing so
    /// event identities stay unique across the run).
    pub fn clear(&mut self) {
        for heap in &mut self.lanes {
            heap.clear();
        }
    }
}

/// K-way merges per-lane runs (each ascending in `(time_s, seq)`, as
/// produced by [`EventQueue::into_lane_runs`]) into the global pop order.
pub fn merge_runs<T>(runs: Vec<Vec<ScheduledEvent<T>>>) -> Vec<ScheduledEvent<T>> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut cursors: Vec<std::iter::Peekable<std::vec::IntoIter<ScheduledEvent<T>>>> = runs
        .into_iter()
        .map(|run| run.into_iter().peekable())
        .collect();
    while merged.len() < total {
        let mut best: Option<(usize, f64, u64)> = None;
        for (index, cursor) in cursors.iter_mut().enumerate() {
            let Some(head) = cursor.peek() else { continue };
            let better = match &best {
                None => true,
                Some((_, time, seq)) => match head.time_s.total_cmp(time) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => head.seq < *seq,
                },
            };
            if better {
                best = Some((index, head.time_s, head.seq));
            }
        }
        let (index, _, _) = best.expect("total counts unmerged events");
        merged.push(cursors[index].next().expect("peeked head advances"));
    }
    merged
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("lanes", &self.lanes.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(1.5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sequence_numbers_survive_clear() {
        let mut q = EventQueue::new();
        let first = q.push(1.0, ());
        q.clear();
        assert!(q.is_empty());
        let second = q.push(1.0, ());
        assert!(second > first, "event identities stay unique across clear");
    }

    #[test]
    #[should_panic(expected = "finite, non-negative")]
    fn rejects_nan_times() {
        EventQueue::new().push(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "finite, non-negative")]
    fn rejects_negative_times() {
        EventQueue::new().push(-0.5, ());
    }

    #[test]
    fn try_push_returns_typed_error_without_scheduling() {
        let mut q = EventQueue::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0e-9] {
            let err = q.try_push(bad, ()).unwrap_err();
            assert!(err.time_s.is_nan() || err.time_s == bad);
            assert!(err.to_string().contains("finite, non-negative"));
        }
        assert!(q.is_empty(), "rejected pushes schedule nothing");
        // Rejections burn no sequence numbers: the next accepted push is 0.
        assert_eq!(q.try_push(0.0, ()), Ok(0));
    }

    /// Reference pop order: sort the pushed set by `(time, seq)`.
    fn reference_order(pushes: &[(f64, u32)]) -> Vec<(f64, u64, u32)> {
        let mut all: Vec<(f64, u64, u32)> = pushes
            .iter()
            .enumerate()
            .map(|(seq, &(t, p))| (t, seq as u64, p))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        all
    }

    /// A pseudo-random scenario with heavy time collisions.
    fn collision_pushes(count: u64) -> Vec<(f64, u32)> {
        (0..count)
            .map(|i| {
                let t = ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % 7) as f64 * 0.25;
                (t, i as u32)
            })
            .collect()
    }

    #[test]
    fn lane_counts_are_invisible_to_pop_order() {
        let pushes = collision_pushes(200);
        let expected = reference_order(&pushes);
        for lanes in [1, 2, 3, 8, 64] {
            let mut q = EventQueue::with_lanes(lanes);
            assert_eq!(q.lane_count(), lanes);
            for &(t, p) in &pushes {
                q.push(t, p);
            }
            let popped: Vec<(f64, u64, u32)> =
                std::iter::from_fn(|| q.pop().map(|e| (e.time_s, e.seq, e.payload))).collect();
            assert_eq!(popped, expected, "lanes={lanes}");
        }
    }

    #[test]
    fn due_batch_drains_exactly_the_earliest_timestamp() {
        let mut q = EventQueue::new();
        for &(t, p) in &collision_pushes(64) {
            q.push(t, p);
        }
        let mut serial = EventQueue::new();
        for &(t, p) in &collision_pushes(64) {
            serial.push(t, p);
        }
        let mut batched = Vec::new();
        let mut out = Vec::new();
        while q.pop_due_batch(&mut out) > 0 {
            let due = out[0].time_s;
            assert!(
                out.iter().all(|e| e.time_s == due),
                "one timestamp per batch"
            );
            assert!(out.windows(2).all(|w| w[0].seq < w[1].seq), "seq-sorted");
            batched.append(&mut out);
        }
        let popped: Vec<ScheduledEvent<u32>> = std::iter::from_fn(|| serial.pop()).collect();
        assert_eq!(batched, popped);
    }

    #[test]
    fn reinsert_preserves_the_original_slot() {
        let mut q = EventQueue::new();
        for &(t, p) in &collision_pushes(32) {
            q.push(t, p);
        }
        let expected: Vec<(f64, u64)> = {
            let mut clone = EventQueue::new();
            for &(t, p) in &collision_pushes(32) {
                clone.push(t, p);
            }
            std::iter::from_fn(|| clone.pop().map(|e: ScheduledEvent<u32>| (e.time_s, e.seq)))
                .collect()
        };
        // Drain a due batch, put the tail back, and keep popping: the
        // global order must be unchanged.
        let mut out = Vec::new();
        q.pop_due_batch(&mut out);
        let mut order = Vec::new();
        for (index, event) in out.into_iter().enumerate() {
            if index < 2 {
                order.push((event.time_s, event.seq));
            } else {
                q.reinsert(event);
            }
        }
        while let Some(e) = q.pop() {
            order.push((e.time_s, e.seq));
        }
        assert_eq!(order, expected);
    }

    #[test]
    fn parallel_lane_runs_match_serial_at_every_worker_count() {
        let pushes = collision_pushes(96);
        let serial = {
            let mut q = EventQueue::with_lanes(8);
            for &(t, p) in &pushes {
                q.push(t, p);
            }
            q.into_lane_runs()
        };
        for workers in [1, 2, 3, 8, 16] {
            let mut q = EventQueue::with_lanes(8);
            for &(t, p) in &pushes {
                q.push(t, p);
            }
            assert_eq!(
                q.into_lane_runs_parallel(workers),
                serial,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn lane_runs_merge_back_to_global_order() {
        let pushes = collision_pushes(120);
        let mut q = EventQueue::with_lanes(8);
        for &(t, p) in &pushes {
            q.push(t, p);
        }
        let runs = q.into_lane_runs();
        assert_eq!(runs.len(), 8);
        for run in &runs {
            assert!(run
                .windows(2)
                .all(|w| (w[0].time_s, w[0].seq) < (w[1].time_s, w[1].seq)));
        }
        let merged = merge_runs(runs);
        let expected = reference_order(&pushes);
        let got: Vec<(f64, u64, u32)> = merged
            .into_iter()
            .map(|e| (e.time_s, e.seq, e.payload))
            .collect();
        assert_eq!(got, expected);
    }
}
