//! # bfl-net
//!
//! Time and network simulation substrate.
//!
//! The paper's delay analysis (Section 4.6) decomposes a round into
//! `T(n, m) = T_local + T_up + T_ex + T_gl + T_bl`, where the upload and
//! exchange terms are dominated by communication: "the clients are often at
//! the edge of the network, and the quality of the channel is difficult to
//! guarantee". This crate provides the simulated clock the whole system
//! runs on, parametric per-link delay distributions (constant, uniform,
//! normal, exponential) with payload-size-dependent transfer times, the
//! discrete-event substrate of the asynchronous round engine — a
//! deterministic [`EventQueue`] ordered by `(simulated time, insertion
//! sequence)` plus per-client [`NodeProfile`]s (compute rate, uplink
//! latency, churn schedule) — and the
//! client↔miner topology (uniform random association per round, miner full
//! mesh).

#![warn(missing_docs)]

pub mod clock;
pub mod delay;
pub mod event;
pub mod fault;
pub mod profile;
pub mod topology;

pub use clock::SimClock;
pub use delay::{DelayDistribution, LinkModel};
pub use event::{merge_runs, EventQueue, InvalidEventTime, ScheduledEvent, DEFAULT_LANES};
pub use fault::{CrashSchedule, FaultPlan, LinkFaults, Partition, TimeWindow};
pub use profile::{ChurnSchedule, NodeProfile};
pub use topology::Topology;
