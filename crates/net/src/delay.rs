//! Link-delay distributions and payload-dependent transfer times.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A parametric distribution of one-way link latency in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayDistribution {
    /// Always exactly this many seconds.
    Constant(f64),
    /// Uniform on `[min, max]`.
    Uniform {
        /// Lower bound in seconds.
        min: f64,
        /// Upper bound in seconds.
        max: f64,
    },
    /// Normal with the given mean and standard deviation, truncated at zero.
    Normal {
        /// Mean in seconds.
        mean: f64,
        /// Standard deviation in seconds.
        std: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean in seconds.
        mean: f64,
    },
}

impl DelayDistribution {
    /// Samples a latency in seconds (never negative).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let value = match *self {
            DelayDistribution::Constant(v) => v,
            DelayDistribution::Uniform { min, max } => {
                assert!(min <= max, "uniform delay bounds are inverted");
                if min == max {
                    min
                } else {
                    rng.gen_range(min..max)
                }
            }
            DelayDistribution::Normal { mean, std } => {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + std * z
            }
            DelayDistribution::Exponential { mean } => {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                -mean * u.ln()
            }
        };
        value.max(0.0)
    }

    /// Validates the distribution's parameters, so configuration errors
    /// surface at build time instead of as mid-run panics in
    /// [`sample`](Self::sample).
    ///
    /// Every parameter must be finite; `Uniform` bounds must not be
    /// inverted, `Normal` needs a non-negative spread, and `Exponential`
    /// a non-negative mean. (Negative *locations* — a negative constant
    /// or normal mean — are tolerated: the sampler clamps them to zero.)
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            DelayDistribution::Constant(v) if !v.is_finite() => {
                Err(format!("constant delay must be finite, got {v}"))
            }
            DelayDistribution::Uniform { min, max } if !(min.is_finite() && max.is_finite()) => {
                Err(format!(
                    "uniform delay bounds must be finite, got [{min}, {max}]"
                ))
            }
            DelayDistribution::Uniform { min, max } if min > max => {
                Err(format!("uniform delay bounds are inverted: [{min}, {max}]"))
            }
            DelayDistribution::Normal { mean, std }
                if !(mean.is_finite() && std.is_finite() && std >= 0.0) =>
            {
                Err(format!(
                    "normal delay needs a finite mean and non-negative std, got N({mean}, {std})"
                ))
            }
            DelayDistribution::Exponential { mean } if !(mean.is_finite() && mean >= 0.0) => Err(
                format!("exponential delay needs a finite non-negative mean, got {mean}"),
            ),
            _ => Ok(()),
        }
    }

    /// Expected value of the distribution in seconds.
    pub fn mean(&self) -> f64 {
        match *self {
            DelayDistribution::Constant(v) => v.max(0.0),
            DelayDistribution::Uniform { min, max } => ((min + max) / 2.0).max(0.0),
            DelayDistribution::Normal { mean, .. } => mean.max(0.0),
            DelayDistribution::Exponential { mean } => mean.max(0.0),
        }
    }
}

/// A link model combining a latency distribution with a transfer rate, so
/// that larger payloads (for example a vanilla-BFL block that carries one
/// hundred local gradients) take proportionally longer to move.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Per-message latency distribution.
    pub latency: DelayDistribution,
    /// Sustained throughput in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl LinkModel {
    /// A typical wide-area edge uplink: tens of milliseconds of jittery
    /// latency and ~2 MB/s of goodput.
    pub fn edge_uplink() -> Self {
        LinkModel {
            latency: DelayDistribution::Normal {
                mean: 0.08,
                std: 0.03,
            },
            bandwidth_bytes_per_s: 2.0e6,
        }
    }

    /// A fast, stable miner-to-miner backbone link.
    pub fn miner_backbone() -> Self {
        LinkModel {
            latency: DelayDistribution::Constant(0.01),
            bandwidth_bytes_per_s: 50.0e6,
        }
    }

    /// Samples the time to move `payload_bytes` over this link.
    pub fn sample_transfer<R: Rng + ?Sized>(&self, payload_bytes: usize, rng: &mut R) -> f64 {
        assert!(
            self.bandwidth_bytes_per_s > 0.0,
            "bandwidth must be positive"
        );
        self.latency.sample(rng) + payload_bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Expected time to move `payload_bytes` over this link.
    pub fn expected_transfer(&self, payload_bytes: usize) -> f64 {
        self.latency.mean() + payload_bytes as f64 / self.bandwidth_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn constant_is_constant() {
        let mut r = rng();
        let d = DelayDistribution::Constant(0.5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 0.5);
        }
        assert_eq!(d.mean(), 0.5);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = rng();
        let d = DelayDistribution::Uniform { min: 0.1, max: 0.3 };
        for _ in 0..200 {
            let s = d.sample(&mut r);
            assert!((0.1..=0.3).contains(&s));
        }
        assert!((d.mean() - 0.2).abs() < 1e-12);
        // Degenerate range.
        let point = DelayDistribution::Uniform { min: 0.2, max: 0.2 };
        assert_eq!(point.sample(&mut r), 0.2);
    }

    #[test]
    fn samples_are_never_negative() {
        let mut r = rng();
        for d in [
            DelayDistribution::Normal {
                mean: 0.01,
                std: 0.5,
            },
            DelayDistribution::Exponential { mean: 0.2 },
            DelayDistribution::Constant(-1.0),
        ] {
            for _ in 0..200 {
                assert!(d.sample(&mut r) >= 0.0);
            }
        }
    }

    #[test]
    fn empirical_means_track_configured_means() {
        let mut r = rng();
        let cases = [
            DelayDistribution::Normal {
                mean: 0.5,
                std: 0.05,
            },
            DelayDistribution::Exponential { mean: 0.4 },
            DelayDistribution::Uniform { min: 0.2, max: 0.6 },
        ];
        for d in cases {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
            assert!(
                (mean - d.mean()).abs() < 0.03,
                "{d:?}: empirical {mean} vs expected {}",
                d.mean()
            );
        }
    }

    #[test]
    fn transfer_time_scales_with_payload() {
        let mut r = rng();
        let link = LinkModel {
            latency: DelayDistribution::Constant(0.05),
            bandwidth_bytes_per_s: 1_000_000.0,
        };
        let small = link.sample_transfer(1_000, &mut r);
        let large = link.sample_transfer(10_000_000, &mut r);
        assert!(large > small);
        assert!((link.expected_transfer(1_000_000) - 1.05).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Builds one distribution per variant from the drawn parameters,
        /// including deliberately hostile ones (negative constants and
        /// means) that the sampler's non-negativity contract must absorb.
        fn distribution_under_test(variant: usize, a: f64, b: f64) -> DelayDistribution {
            match variant % 4 {
                0 => DelayDistribution::Constant(a - 2.5),
                1 => DelayDistribution::Uniform {
                    min: a.min(b),
                    max: a.max(b),
                },
                2 => DelayDistribution::Normal {
                    mean: a - 2.5,
                    std: b * 0.6,
                },
                _ => DelayDistribution::Exponential { mean: a },
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn every_variant_samples_non_negative(
                variant in 0usize..4,
                a in 0.0f64..5.0,
                b in 0.0f64..5.0,
                seed in any::<u64>(),
            ) {
                let d = distribution_under_test(variant, a, b);
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..64 {
                    let s = d.sample(&mut rng);
                    prop_assert!(s >= 0.0, "{d:?} sampled {s}");
                    prop_assert!(s.is_finite(), "{d:?} sampled {s}");
                }
                prop_assert!(d.mean() >= 0.0);
            }

            #[test]
            fn uniform_stays_within_its_bounds(
                a in 0.0f64..10.0,
                b in 0.0f64..10.0,
                seed in any::<u64>(),
            ) {
                let (min, max) = (a.min(b), a.max(b));
                let d = DelayDistribution::Uniform { min, max };
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..64 {
                    let s = d.sample(&mut rng);
                    prop_assert!((min..=max).contains(&s), "{s} outside [{min}, {max}]");
                }
            }

            #[test]
            fn normal_honours_its_truncation_at_zero(
                mean in -1.0f64..1.0,
                std in 0.5f64..4.0,
                seed in any::<u64>(),
            ) {
                // Wide spreads around a near-zero mean would go negative
                // roughly half the time untruncated; the documented
                // contract clamps those draws to exactly zero.
                let d = DelayDistribution::Normal { mean, std };
                let mut rng = StdRng::seed_from_u64(seed);
                let mut clamped = 0usize;
                for _ in 0..256 {
                    let s = d.sample(&mut rng);
                    prop_assert!(s >= 0.0);
                    if s == 0.0 {
                        clamped += 1;
                    }
                }
                // With std >= 0.5 and |mean| <= 1, a 256-draw sample hits
                // the truncation with overwhelming probability.
                prop_assert!(clamped > 0, "no draw hit the zero truncation");
            }
        }
    }

    #[test]
    fn presets_are_sane() {
        let edge = LinkModel::edge_uplink();
        let backbone = LinkModel::miner_backbone();
        // The backbone moves a 1 MB payload much faster than the edge uplink.
        assert!(backbone.expected_transfer(1_000_000) < edge.expected_transfer(1_000_000));
    }
}
