//! Deterministic fault injection: lossy links, miner crashes, and
//! partitions of the miner mesh.
//!
//! The paper argues that in a loosely-coupled BFL deployment "forking is
//! inevitable" — messages get lost at the network edge, miners fail, and
//! the mesh can split. A [`FaultPlan`] describes those adversities as
//! plain deterministic data: per-link upload faults (drop / duplicate /
//! corrupt, each with its own rate and active [`TimeWindow`]), an
//! optional miner [`CrashSchedule`], and an optional [`Partition`] of the
//! miner mesh. The plan itself holds no randomness — the event engine
//! draws every fault coin-flip from a dedicated RNG stream seeded from
//! the scenario seed, so the same seed replays the same faults
//! bit-identically, and a zero-fault plan consumes zero draws.

use serde::{Deserialize, Serialize};

/// A closed-open interval of simulated seconds during which a fault is
/// active. The default window is effectively "always".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// First simulated second at which the fault applies.
    pub start_s: f64,
    /// Simulated second at which the fault stops applying (exclusive).
    pub end_s: f64,
}

impl Default for TimeWindow {
    fn default() -> Self {
        TimeWindow {
            start_s: 0.0,
            end_s: 1e18,
        }
    }
}

impl TimeWindow {
    /// True when simulated second `t` falls inside the window.
    pub fn contains(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s
    }

    /// Validates the window's bounds.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.start_s.is_finite() && self.start_s >= 0.0) {
            return Err(format!(
                "fault window start_s must be finite and non-negative, got {}",
                self.start_s
            ));
        }
        if !(self.end_s.is_finite() && self.end_s >= self.start_s) {
            return Err(format!(
                "fault window end_s must be finite and >= start_s, got {}",
                self.end_s
            ));
        }
        Ok(())
    }
}

/// Per-upload link faults on the client→miner path. Each rate is the
/// independent probability that the fault strikes one send attempt while
/// the window is active.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability that an upload is silently lost in transit.
    pub drop_rate: f64,
    /// Probability that an upload is delivered twice (the second copy
    /// arrives after an extra propagation delay).
    pub duplicate_rate: f64,
    /// Probability that an upload arrives with one payload byte flipped —
    /// the signature check at the mempool is the detector.
    pub corrupt_rate: f64,
    /// When the link faults apply.
    pub window: TimeWindow,
}

impl LinkFaults {
    /// True when any fault rate is non-zero.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0 || self.duplicate_rate > 0.0 || self.corrupt_rate > 0.0
    }

    /// Validates rates and window.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("drop_rate", self.drop_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("corrupt_rate", self.corrupt_rate),
        ] {
            if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                return Err(format!("fault {name} must lie in [0, 1], got {rate}"));
            }
        }
        self.window.validate()
    }
}

/// A scheduled miner failure: the miner goes down at `crash_at_s`,
/// loses its mempool, and comes back `down_for_s` seconds later, at
/// which point it resynchronises its replica from the surviving miners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashSchedule {
    /// Index of the miner that crashes.
    pub miner: usize,
    /// Simulated second of the crash.
    pub crash_at_s: f64,
    /// Seconds the miner stays down before recovering.
    pub down_for_s: f64,
}

impl CrashSchedule {
    /// True when the miner is down at simulated second `t`.
    pub fn is_down(&self, t: f64) -> bool {
        t >= self.crash_at_s && t < self.crash_at_s + self.down_for_s
    }

    /// Simulated second at which the miner recovers.
    pub fn recover_at_s(&self) -> f64 {
        self.crash_at_s + self.down_for_s
    }

    /// Validates the schedule's timing.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.crash_at_s.is_finite() && self.crash_at_s >= 0.0) {
            return Err(format!(
                "crash_at_s must be finite and non-negative, got {}",
                self.crash_at_s
            ));
        }
        if !(self.down_for_s.is_finite() && self.down_for_s > 0.0) {
            return Err(format!(
                "down_for_s must be finite and positive, got {}",
                self.down_for_s
            ));
        }
        Ok(())
    }
}

/// A split of the miner mesh into two components for an interval:
/// miners `[0, boundary)` form the primary component (it always contains
/// miner 0) and miners `[boundary, m)` form the secondary component.
/// While active, each component mines its own chain; at heal time the
/// fork is resolved by longest-chain adoption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Simulated second at which the mesh splits.
    pub start_s: f64,
    /// Seconds the partition lasts.
    pub duration_s: f64,
    /// First miner index of the secondary component (must satisfy
    /// `1 <= boundary < miners`).
    pub boundary: usize,
}

impl Partition {
    /// True while the mesh is split at simulated second `t`.
    pub fn is_active(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s()
    }

    /// Simulated second at which the partition heals.
    pub fn end_s(&self) -> f64 {
        self.start_s + self.duration_s
    }

    /// Component index (0 = primary, 1 = secondary) of a miner.
    pub fn component_of(&self, miner: usize) -> usize {
        usize::from(miner >= self.boundary)
    }

    /// Validates timing; the boundary is checked against the miner count
    /// by the scenario configuration, which knows it.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.start_s.is_finite() && self.start_s >= 0.0) {
            return Err(format!(
                "partition start_s must be finite and non-negative, got {}",
                self.start_s
            ));
        }
        if !(self.duration_s.is_finite() && self.duration_s > 0.0) {
            return Err(format!(
                "partition duration_s must be finite and positive, got {}",
                self.duration_s
            ));
        }
        if self.boundary == 0 {
            return Err("partition boundary must be >= 1 (component 0 owns miner 0)".into());
        }
        Ok(())
    }
}

/// The complete deterministic fault plan for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Faults on the client→miner upload links.
    pub uplink: LinkFaults,
    /// An optional scheduled miner crash.
    pub crash: Option<CrashSchedule>,
    /// An optional partition of the miner mesh.
    pub partition: Option<Partition>,
    /// Round deadline in simulated seconds: when faults leave a flexible
    /// quota unreachable, the round seals with whatever has arrived once
    /// the next pending arrival lies beyond `round start + deadline_s`.
    /// Zero disables the deadline.
    pub deadline_s: f64,
}

impl FaultPlan {
    /// True when the plan injects any fault at all. An inactive plan
    /// must leave the engine bit-identical to a run without one.
    pub fn is_active(&self) -> bool {
        self.uplink.is_active()
            || self.crash.is_some()
            || self.partition.is_some()
            || self.deadline_s > 0.0
    }

    /// Validates every part of the plan.
    pub fn validate(&self) -> Result<(), String> {
        self.uplink.validate()?;
        if let Some(crash) = &self.crash {
            crash.validate()?;
        }
        if let Some(partition) = &self.partition {
            partition.validate()?;
        }
        if !(self.deadline_s.is_finite() && self.deadline_s >= 0.0) {
            return Err(format!(
                "deadline_s must be finite and non-negative, got {}",
                self.deadline_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        plan.validate().unwrap();
        assert!(!plan.uplink.is_active());
    }

    #[test]
    fn window_contains_its_interval() {
        let w = TimeWindow {
            start_s: 2.0,
            end_s: 5.0,
        };
        w.validate().unwrap();
        assert!(!w.contains(1.9));
        assert!(w.contains(2.0));
        assert!(w.contains(4.999));
        assert!(!w.contains(5.0));
        // Default window is effectively always-on.
        assert!(TimeWindow::default().contains(1e12));
    }

    #[test]
    fn invalid_rates_and_windows_rejected() {
        let bad = LinkFaults {
            drop_rate: 1.5,
            ..LinkFaults::default()
        };
        assert!(bad.validate().unwrap_err().contains("drop_rate"));
        let bad = LinkFaults {
            corrupt_rate: f64::NAN,
            ..LinkFaults::default()
        };
        assert!(bad.validate().is_err());
        let bad_window = TimeWindow {
            start_s: 5.0,
            end_s: 2.0,
        };
        assert!(bad_window.validate().unwrap_err().contains("end_s"));
    }

    #[test]
    fn crash_schedule_down_interval() {
        let crash = CrashSchedule {
            miner: 1,
            crash_at_s: 10.0,
            down_for_s: 4.0,
        };
        crash.validate().unwrap();
        assert!(!crash.is_down(9.9));
        assert!(crash.is_down(10.0));
        assert!(crash.is_down(13.9));
        assert!(!crash.is_down(14.0));
        assert_eq!(crash.recover_at_s(), 14.0);
        let bad = CrashSchedule {
            down_for_s: 0.0,
            ..crash
        };
        assert!(bad.validate().unwrap_err().contains("down_for_s"));
    }

    #[test]
    fn partition_components_and_interval() {
        let p = Partition {
            start_s: 3.0,
            duration_s: 6.0,
            boundary: 1,
        };
        p.validate().unwrap();
        assert!(!p.is_active(2.9));
        assert!(p.is_active(3.0));
        assert!(p.is_active(8.9));
        assert!(!p.is_active(9.0));
        assert_eq!(p.end_s(), 9.0);
        assert_eq!(p.component_of(0), 0);
        assert_eq!(p.component_of(1), 1);
        assert_eq!(p.component_of(5), 1);
        let bad = Partition { boundary: 0, ..p };
        assert!(bad.validate().unwrap_err().contains("boundary"));
    }

    #[test]
    fn active_plans_detected() {
        let mut plan = FaultPlan::default();
        plan.uplink.drop_rate = 0.2;
        assert!(plan.is_active());
        plan.validate().unwrap();

        let crash_only = FaultPlan {
            crash: Some(CrashSchedule {
                miner: 0,
                crash_at_s: 1.0,
                down_for_s: 2.0,
            }),
            ..FaultPlan::default()
        };
        assert!(crash_only.is_active());

        let deadline_only = FaultPlan {
            deadline_s: 30.0,
            ..FaultPlan::default()
        };
        assert!(deadline_only.is_active());
        deadline_only.validate().unwrap();
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plan = FaultPlan {
            uplink: LinkFaults {
                drop_rate: 0.2,
                duplicate_rate: 0.05,
                corrupt_rate: 0.1,
                window: TimeWindow {
                    start_s: 1.0,
                    end_s: 50.0,
                },
            },
            crash: Some(CrashSchedule {
                miner: 1,
                crash_at_s: 5.0,
                down_for_s: 3.0,
            }),
            partition: Some(Partition {
                start_s: 2.0,
                duration_s: 4.0,
                boundary: 1,
            }),
            deadline_s: 20.0,
        };
        plan.validate().unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
