//! DBSCAN — density-based spatial clustering, the default algorithm of
//! FAIR-BFL's contribution identification.
//!
//! The implementation is the textbook region-growing formulation over a
//! precomputed pairwise distance matrix, which is exactly right for the
//! problem sizes Algorithm 2 encounters (tens to a few hundred gradient
//! vectors per round).

use crate::distance::{distance_matrix, DistanceMetric};
use crate::labels::ClusterLabels;
use std::collections::VecDeque;

/// DBSCAN parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbscanConfig {
    /// Neighbourhood radius ε.
    pub eps: f64,
    /// Minimum number of neighbours (including the point itself) required
    /// for a point to be a core point.
    pub min_points: usize,
    /// Distance metric.
    pub metric: DistanceMetric,
}

impl Default for DbscanConfig {
    fn default() -> Self {
        DbscanConfig {
            eps: 0.35,
            min_points: 2,
            metric: DistanceMetric::Cosine,
        }
    }
}

/// Runs DBSCAN over `vectors`, returning cluster labels (noise = `None`).
pub fn dbscan(vectors: &[Vec<f64>], config: &DbscanConfig) -> ClusterLabels {
    if vectors.is_empty() {
        return ClusterLabels::new(Vec::new());
    }
    dbscan_with_distances(&distance_matrix(vectors, config.metric), config)
}

/// DBSCAN over a precomputed pairwise distance matrix — the algorithm
/// only ever consumes distances, so callers that already hold the shared
/// Gram-derived matrix (Algorithm 2) skip recomputing it.
pub fn dbscan_with_distances(distances: &[Vec<f64>], config: &DbscanConfig) -> ClusterLabels {
    let n = distances.len();
    if n == 0 {
        return ClusterLabels::new(Vec::new());
    }
    assert!(config.eps > 0.0, "eps must be positive");
    assert!(config.min_points >= 1, "min_points must be at least 1");

    let neighbourhoods: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| distances[i][j] <= config.eps)
                .collect::<Vec<usize>>()
        })
        .collect();

    let mut assignments: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut next_cluster = 0usize;

    for point in 0..n {
        if visited[point] {
            continue;
        }
        visited[point] = true;
        if neighbourhoods[point].len() < config.min_points {
            // Provisionally noise; may later be absorbed as a border point.
            continue;
        }
        // Start a new cluster and grow it breadth-first.
        let cluster = next_cluster;
        next_cluster += 1;
        assignments[point] = Some(cluster);
        let mut queue: VecDeque<usize> = neighbourhoods[point].iter().copied().collect();
        while let Some(candidate) = queue.pop_front() {
            if assignments[candidate].is_none() {
                assignments[candidate] = Some(cluster);
            }
            if !visited[candidate] {
                visited[candidate] = true;
                if neighbourhoods[candidate].len() >= config.min_points {
                    queue.extend(neighbourhoods[candidate].iter().copied());
                }
            }
        }
    }

    ClusterLabels::new(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..6 {
            v.push(vec![1.0 + i as f64 * 0.02, 1.0]);
        }
        for i in 0..6 {
            v.push(vec![-1.0, -1.0 - i as f64 * 0.02]);
        }
        v
    }

    #[test]
    fn empty_input_yields_empty_labels() {
        let labels = dbscan(&[], &DbscanConfig::default());
        assert!(labels.is_empty());
    }

    #[test]
    fn two_blobs_form_two_clusters() {
        let labels = dbscan(&two_blobs(), &DbscanConfig::default());
        assert_eq!(labels.cluster_count(), 2);
        assert!(labels.same_cluster(0, 5));
        assert!(labels.same_cluster(6, 11));
        assert!(!labels.same_cluster(0, 6));
        assert!(labels.noise_points().is_empty());
    }

    #[test]
    fn an_outlier_is_marked_as_noise() {
        let mut data = two_blobs();
        // A vector orthogonal to both blobs, far from everything in cosine terms.
        data.push(vec![1.0, -1.0]);
        let labels = dbscan(
            &data,
            &DbscanConfig {
                eps: 0.2,
                min_points: 2,
                metric: DistanceMetric::Cosine,
            },
        );
        assert_eq!(labels.cluster_of(12), None, "outlier should be noise");
        assert_eq!(labels.cluster_count(), 2);
    }

    #[test]
    fn euclidean_metric_also_works() {
        let data = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let labels = dbscan(
            &data,
            &DbscanConfig {
                eps: 0.5,
                min_points: 2,
                metric: DistanceMetric::Euclidean,
            },
        );
        assert_eq!(labels.cluster_count(), 2);
        assert!(labels.same_cluster(0, 1));
        assert!(labels.same_cluster(3, 4));
        assert!(!labels.same_cluster(0, 3));
    }

    #[test]
    fn min_points_larger_than_any_neighbourhood_gives_all_noise() {
        let labels = dbscan(
            &two_blobs(),
            &DbscanConfig {
                eps: 0.01,
                min_points: 10,
                metric: DistanceMetric::Euclidean,
            },
        );
        assert_eq!(labels.cluster_count(), 0);
        assert_eq!(labels.noise_points().len(), 12);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn non_positive_eps_panics() {
        let _ = dbscan(
            &two_blobs(),
            &DbscanConfig {
                eps: 0.0,
                min_points: 2,
                metric: DistanceMetric::Cosine,
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn labels_cover_every_point(n in 1usize..30, eps in 0.05f64..1.5, seed in any::<u64>()) {
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            };
            let data: Vec<Vec<f64>> = (0..n).map(|_| vec![next(), next(), next()]).collect();
            let labels = dbscan(&data, &DbscanConfig { eps, min_points: 2, metric: DistanceMetric::Euclidean });
            prop_assert_eq!(labels.len(), n);
            // Every point is either in a cluster or noise; cluster ids are dense from 0.
            let count = labels.cluster_count();
            for i in 0..n {
                if let Some(c) = labels.cluster_of(i) {
                    prop_assert!(c < count);
                }
            }
        }

        #[test]
        fn identical_points_always_cluster_together(copies in 2usize..10) {
            let data: Vec<Vec<f64>> = (0..copies).map(|_| vec![1.0, 2.0, 3.0]).collect();
            let labels = dbscan(&data, &DbscanConfig::default());
            prop_assert_eq!(labels.cluster_count(), 1);
            for i in 1..copies {
                prop_assert!(labels.same_cluster(0, i));
            }
        }
    }
}
