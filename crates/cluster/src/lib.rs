//! # bfl-cluster
//!
//! Clustering substrate for FAIR-BFL's contribution identification
//! (Algorithm 2). The paper clusters the round's gradient set — the
//! uploaded client vectors plus the freshly aggregated global gradient —
//! and treats the cluster containing the global gradient as the
//! "high-contribution" group; everything else is low contribution (and, in
//! practice, mostly forged gradients from malicious clients).
//!
//! "Any suitable clustering algorithm can be used here as needed. However,
//! we use DBSCAN in experiments by default" — so [`mod@dbscan`] is the default,
//! with [`mod@kmeans`] and [`agglomerative`] provided as the alternatives the
//! ablation benches compare.

#![warn(missing_docs)]

pub mod agglomerative;
pub mod dbscan;
pub mod distance;
pub mod kmeans;
pub mod labels;
pub mod validation;

pub use dbscan::{dbscan, DbscanConfig};
pub use distance::{cross_distance_matrix, distance_matrix, DistanceMetric};
pub use kmeans::{kmeans, KmeansConfig};
pub use labels::ClusterLabels;

use bfl_ml::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Which clustering algorithm Algorithm 2 should run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClusteringAlgorithm {
    /// Density-based clustering (the paper's default).
    Dbscan {
        /// Neighbourhood radius ε in the chosen metric.
        eps: f64,
        /// Minimum neighbours (including the point itself) to form a core point.
        min_points: usize,
    },
    /// Lloyd's k-means.
    KMeans {
        /// Number of clusters.
        k: usize,
        /// Maximum Lloyd iterations.
        max_iterations: usize,
    },
    /// Single-linkage agglomerative clustering cut at a distance threshold.
    Agglomerative {
        /// Merge clusters until the closest pair is farther than this.
        distance_threshold: f64,
    },
}

impl ClusteringAlgorithm {
    /// The paper's default: DBSCAN with a cosine-distance neighbourhood.
    pub fn default_dbscan() -> Self {
        ClusteringAlgorithm::Dbscan {
            eps: 0.35,
            min_points: 2,
        }
    }

    /// Runs the selected algorithm over the given vectors with the given
    /// metric, returning per-vector cluster labels.
    pub fn run(&self, vectors: &[Vec<f64>], metric: DistanceMetric) -> ClusterLabels {
        if vectors.is_empty() {
            return ClusterLabels::new(Vec::new());
        }
        self.run_packed(&Matrix::from_rows(vectors), metric)
    }

    /// [`ClusteringAlgorithm::run`] over an already packed row-major
    /// vector set. DBSCAN and agglomerative clustering consume the shared
    /// Gram-derived distance matrix directly; k-means reuses the packed
    /// rows for its per-iteration assignment GEMMs.
    pub fn run_packed(&self, rows: &Matrix, metric: DistanceMetric) -> ClusterLabels {
        match *self {
            ClusteringAlgorithm::Dbscan { eps, min_points } => dbscan::dbscan_with_distances(
                &distance::distance_matrix_packed(rows, metric),
                &dbscan::DbscanConfig {
                    eps,
                    min_points,
                    metric,
                },
            ),
            ClusteringAlgorithm::KMeans { k, max_iterations } => kmeans::kmeans_packed(
                rows,
                &kmeans::KmeansConfig {
                    k,
                    max_iterations,
                    metric,
                    seed: 0x5eed,
                },
            ),
            ClusteringAlgorithm::Agglomerative { distance_threshold } => {
                agglomerative::agglomerative_with_distances(
                    &distance::distance_matrix_packed(rows, metric),
                    distance_threshold,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..5 {
            let t = i as f64 * 0.01;
            v.push(vec![1.0 + t, 1.0 - t]);
        }
        for i in 0..5 {
            let t = i as f64 * 0.01;
            v.push(vec![-1.0 - t, -1.0 + t]);
        }
        v
    }

    #[test]
    fn all_algorithms_separate_two_blobs() {
        let data = blobs();
        for algorithm in [
            ClusteringAlgorithm::default_dbscan(),
            ClusteringAlgorithm::KMeans {
                k: 2,
                max_iterations: 50,
            },
            ClusteringAlgorithm::Agglomerative {
                distance_threshold: 0.5,
            },
        ] {
            let labels = algorithm.run(&data, DistanceMetric::Cosine);
            assert!(
                labels.same_cluster(0, 4),
                "{algorithm:?}: first blob should be one cluster"
            );
            assert!(
                labels.same_cluster(5, 9),
                "{algorithm:?}: second blob should be one cluster"
            );
            assert!(
                !labels.same_cluster(0, 5),
                "{algorithm:?}: the blobs should be separate"
            );
        }
    }

    #[test]
    fn default_dbscan_parameters() {
        match ClusteringAlgorithm::default_dbscan() {
            ClusteringAlgorithm::Dbscan { eps, min_points } => {
                assert!(eps > 0.0 && eps < 1.0);
                assert!(min_points >= 2);
            }
            other => panic!("unexpected default {other:?}"),
        }
    }
}
