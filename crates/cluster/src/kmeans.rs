//! Lloyd's k-means, an alternative clustering backend for Algorithm 2.

use crate::distance::{cross_distance_matrix_packed, DistanceMetric};
use crate::labels::ClusterLabels;
use bfl_ml::tensor::Matrix;

/// k-means parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Metric used for the assignment step (centroids are always arithmetic
    /// means, as in spherical k-means when the metric is cosine).
    pub metric: DistanceMetric,
    /// Seed of the deterministic centroid initialization.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig {
            k: 2,
            max_iterations: 100,
            metric: DistanceMetric::Cosine,
            seed: 0x5eed,
        }
    }
}

/// Deterministic splitmix64, used to pick initial centroids without pulling
/// a full RNG dependency into the hot path.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs k-means over `vectors`. If there are fewer points than `k`, each
/// point gets its own cluster.
pub fn kmeans(vectors: &[Vec<f64>], config: &KmeansConfig) -> ClusterLabels {
    if vectors.is_empty() {
        return ClusterLabels::new(Vec::new());
    }
    kmeans_packed(&Matrix::from_rows(vectors), config)
}

/// [`kmeans`] over an already packed row-major point set; the assignment
/// step computes all point-to-centroid distances with one rectangular
/// Gram GEMM per Lloyd iteration instead of `n·k` vector traversals.
pub fn kmeans_packed(points: &Matrix, config: &KmeansConfig) -> ClusterLabels {
    let n = points.rows;
    if n == 0 {
        return ClusterLabels::new(Vec::new());
    }
    assert!(config.k >= 1, "k must be at least 1");
    let k = config.k.min(n);
    let dim = points.cols;

    // Initialize centroids with distinct random points (Forgy).
    let mut state = config.seed;
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    while chosen.len() < k {
        let candidate = (splitmix64(&mut state) % n as u64) as usize;
        if !chosen.contains(&candidate) {
            chosen.push(candidate);
        }
    }
    let mut centroids = Matrix::zeros(k, dim);
    for (c, &i) in chosen.iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(points.row(i));
    }
    let mut assignments = vec![0usize; n];

    for _ in 0..config.max_iterations.max(1) {
        // Assignment step.
        let mut changed = false;
        let distances = cross_distance_matrix_packed(points, &centroids, config.metric);
        for (i, row) in distances.iter().enumerate() {
            let mut best = 0usize;
            let mut best_distance = f64::INFINITY;
            for (c, &d) in row.iter().enumerate() {
                if d < best_distance {
                    best_distance = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }

        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(points.row(i).iter()) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with a random point.
                let pick = (splitmix64(&mut state) % n as u64) as usize;
                centroids.row_mut(c).copy_from_slice(points.row(pick));
                continue;
            }
            for s in sums[c].iter_mut() {
                *s /= counts[c] as f64;
            }
            centroids.row_mut(c).copy_from_slice(&sums[c]);
        }

        if !changed {
            break;
        }
    }

    ClusterLabels::new(assignments.into_iter().map(Some).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..8 {
            v.push(vec![2.0 + (i as f64) * 0.01, 2.0]);
            v.push(vec![-2.0, -2.0 - (i as f64) * 0.01]);
        }
        v
    }

    #[test]
    fn empty_input_yields_empty_labels() {
        assert!(kmeans(&[], &KmeansConfig::default()).is_empty());
    }

    #[test]
    fn separates_two_blobs() {
        let labels = kmeans(
            &two_blobs(),
            &KmeansConfig {
                k: 2,
                ..Default::default()
            },
        );
        assert_eq!(labels.cluster_count(), 2);
        // Even indices are blob A, odd indices blob B.
        assert!(labels.same_cluster(0, 2));
        assert!(labels.same_cluster(1, 3));
        assert!(!labels.same_cluster(0, 1));
        assert!(labels.noise_points().is_empty());
    }

    #[test]
    fn k_larger_than_points_gives_one_cluster_per_point() {
        let data = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = kmeans(
            &data,
            &KmeansConfig {
                k: 10,
                ..Default::default()
            },
        );
        assert_eq!(labels.len(), 3);
        assert!(labels.cluster_count() >= 1);
    }

    #[test]
    fn euclidean_metric_works_too() {
        let labels = kmeans(
            &two_blobs(),
            &KmeansConfig {
                k: 2,
                metric: DistanceMetric::Euclidean,
                ..Default::default()
            },
        );
        assert_eq!(labels.cluster_count(), 2);
        assert!(!labels.same_cluster(0, 1));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = two_blobs();
        let config = KmeansConfig {
            k: 2,
            ..Default::default()
        };
        assert_eq!(kmeans(&data, &config), kmeans(&data, &config));
    }

    #[test]
    fn single_cluster_when_k_is_one() {
        let labels = kmeans(
            &two_blobs(),
            &KmeansConfig {
                k: 1,
                ..Default::default()
            },
        );
        assert_eq!(labels.cluster_count(), 1);
    }
}
