//! Cluster label assignments returned by every algorithm in this crate.

use serde::{Deserialize, Serialize};

/// Per-point cluster assignment. `Some(id)` is membership in cluster `id`,
/// `None` marks a noise/outlier point (only DBSCAN produces those).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterLabels {
    assignments: Vec<Option<usize>>,
}

impl ClusterLabels {
    /// Wraps raw assignments.
    pub fn new(assignments: Vec<Option<usize>>) -> Self {
        ClusterLabels { assignments }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when there are no points.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Cluster of point `i` (`None` = noise).
    pub fn cluster_of(&self, i: usize) -> Option<usize> {
        self.assignments.get(i).copied().flatten()
    }

    /// True when points `i` and `j` are in the same (non-noise) cluster.
    pub fn same_cluster(&self, i: usize, j: usize) -> bool {
        match (self.cluster_of(i), self.cluster_of(j)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Indices of all points assigned to `cluster`.
    pub fn members_of(&self, cluster: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, c)| (*c == Some(cluster)).then_some(i))
            .collect()
    }

    /// Indices of noise points.
    pub fn noise_points(&self) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_none().then_some(i))
            .collect()
    }

    /// Number of distinct (non-noise) clusters.
    pub fn cluster_count(&self) -> usize {
        let mut ids: Vec<usize> = self.assignments.iter().filter_map(|c| *c).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Raw assignment slice.
    pub fn as_slice(&self) -> &[Option<usize>] {
        &self.assignments
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> ClusterLabels {
        ClusterLabels::new(vec![Some(0), Some(0), Some(1), None, Some(1)])
    }

    #[test]
    fn accessors_work() {
        let l = labels();
        assert_eq!(l.len(), 5);
        assert!(!l.is_empty());
        assert_eq!(l.cluster_of(0), Some(0));
        assert_eq!(l.cluster_of(3), None);
        assert_eq!(l.cluster_of(99), None);
        assert_eq!(l.cluster_count(), 2);
        assert_eq!(l.members_of(1), vec![2, 4]);
        assert_eq!(l.noise_points(), vec![3]);
        assert_eq!(l.as_slice().len(), 5);
    }

    #[test]
    fn same_cluster_semantics() {
        let l = labels();
        assert!(l.same_cluster(0, 1));
        assert!(l.same_cluster(2, 4));
        assert!(!l.same_cluster(0, 2));
        // Noise points are never in the same cluster as anything, including themselves.
        assert!(!l.same_cluster(3, 3));
        assert!(!l.same_cluster(3, 0));
    }
}
