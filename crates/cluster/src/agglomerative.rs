//! Single-linkage agglomerative clustering, a third backend for Algorithm 2.
//!
//! Starts from singleton clusters and repeatedly merges the closest pair
//! (single linkage: distance between clusters = minimum pairwise distance)
//! until the closest remaining pair is farther than the threshold.

use crate::distance::{distance_matrix, DistanceMetric};
use crate::labels::ClusterLabels;

/// Runs agglomerative clustering with the given merge `distance_threshold`.
pub fn agglomerative(
    vectors: &[Vec<f64>],
    distance_threshold: f64,
    metric: DistanceMetric,
) -> ClusterLabels {
    if vectors.is_empty() {
        return ClusterLabels::new(Vec::new());
    }
    agglomerative_with_distances(&distance_matrix(vectors, metric), distance_threshold)
}

/// Single-linkage clustering over a precomputed pairwise distance matrix
/// (shared with the other backends through the Gram GEMM path).
pub fn agglomerative_with_distances(
    distances: &[Vec<f64>],
    distance_threshold: f64,
) -> ClusterLabels {
    let n = distances.len();
    if n == 0 {
        return ClusterLabels::new(Vec::new());
    }
    assert!(distance_threshold >= 0.0, "threshold must be non-negative");

    // Union-find over points.
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        // Path compression.
        let mut current = x;
        while parent[current] != root {
            let next = parent[current];
            parent[current] = root;
            current = next;
        }
        root
    }

    // Candidate merges sorted by distance (single linkage over points is
    // exactly Kruskal's algorithm on the distance graph).
    let mut edges: Vec<(f64, usize, usize)> = Vec::with_capacity(n * (n - 1) / 2);
    for (i, row) in distances.iter().enumerate() {
        for (j, &d) in row.iter().enumerate().skip(i + 1) {
            edges.push((d, i, j));
        }
    }
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    for (d, i, j) in edges {
        if d > distance_threshold {
            break;
        }
        let ri = find(&mut parent, i);
        let rj = find(&mut parent, j);
        if ri != rj {
            parent[ri] = rj;
        }
    }

    // Relabel roots densely.
    let mut label_of_root = std::collections::BTreeMap::new();
    let mut assignments = Vec::with_capacity(n);
    for i in 0..n {
        let root = find(&mut parent, i);
        let next_label = label_of_root.len();
        let label = *label_of_root.entry(root).or_insert(next_label);
        assignments.push(Some(label));
    }
    ClusterLabels::new(assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 1.0],
            vec![1.05, 0.98],
            vec![0.95, 1.02],
            vec![-1.0, -1.0],
            vec![-1.02, -0.97],
        ]
    }

    #[test]
    fn empty_input_yields_empty_labels() {
        assert!(agglomerative(&[], 0.5, DistanceMetric::Cosine).is_empty());
    }

    #[test]
    fn separates_two_blobs() {
        let labels = agglomerative(&two_blobs(), 0.3, DistanceMetric::Cosine);
        assert_eq!(labels.cluster_count(), 2);
        assert!(labels.same_cluster(0, 1));
        assert!(labels.same_cluster(0, 2));
        assert!(labels.same_cluster(3, 4));
        assert!(!labels.same_cluster(0, 3));
    }

    #[test]
    fn zero_threshold_keeps_distinct_points_separate() {
        let labels = agglomerative(&two_blobs(), 0.0, DistanceMetric::Euclidean);
        assert_eq!(labels.cluster_count(), 5);
    }

    #[test]
    fn huge_threshold_merges_everything() {
        let labels = agglomerative(&two_blobs(), 1e9, DistanceMetric::Euclidean);
        assert_eq!(labels.cluster_count(), 1);
    }

    #[test]
    fn identical_points_merge_even_at_zero_threshold() {
        let data = vec![vec![1.0, 2.0], vec![1.0, 2.0], vec![5.0, 5.0]];
        let labels = agglomerative(&data, 0.0, DistanceMetric::Euclidean);
        assert!(labels.same_cluster(0, 1));
        assert!(!labels.same_cluster(0, 2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_threshold_panics() {
        let _ = agglomerative(&two_blobs(), -0.1, DistanceMetric::Cosine);
    }
}
