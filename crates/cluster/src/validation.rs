//! Clustering quality measures (silhouette score).

use crate::distance::{distance_matrix, DistanceMetric};
use crate::labels::ClusterLabels;

/// Mean silhouette coefficient over all clustered (non-noise) points, in
/// `[-1, 1]`; higher is better. Returns `None` when fewer than two clusters
/// exist or no point is clustered.
pub fn silhouette_score(
    vectors: &[Vec<f64>],
    labels: &ClusterLabels,
    metric: DistanceMetric,
) -> Option<f64> {
    if labels.cluster_count() < 2 {
        return None;
    }
    let distances = distance_matrix(vectors, metric);
    let n = vectors.len();
    let mut total = 0.0;
    let mut counted = 0usize;

    #[allow(clippy::needless_range_loop)] // `i` also indexes the distance matrix
    for i in 0..n {
        let Some(own) = labels.cluster_of(i) else {
            continue;
        };
        let own_members = labels.members_of(own);
        if own_members.len() <= 1 {
            // Silhouette of a singleton is defined as 0.
            counted += 1;
            continue;
        }
        let a: f64 = own_members
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| distances[i][j])
            .sum::<f64>()
            / (own_members.len() - 1) as f64;

        let mut b = f64::INFINITY;
        for other in 0..labels.cluster_count() {
            if other == own {
                continue;
            }
            let members = labels.members_of(other);
            if members.is_empty() {
                continue;
            }
            let mean: f64 =
                members.iter().map(|&j| distances[i][j]).sum::<f64>() / members.len() as f64;
            b = b.min(mean);
        }
        if b.is_finite() {
            total += (b - a) / a.max(b).max(1e-12);
        }
        counted += 1;
    }

    (counted > 0).then(|| total / counted as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{dbscan, DbscanConfig};

    #[test]
    fn well_separated_blobs_have_high_silhouette() {
        let mut data = Vec::new();
        for i in 0..6 {
            data.push(vec![1.0 + i as f64 * 0.01, 1.0]);
            data.push(vec![-1.0, -1.0 - i as f64 * 0.01]);
        }
        let labels = dbscan(&data, &DbscanConfig::default());
        let score = silhouette_score(&data, &labels, DistanceMetric::Cosine).unwrap();
        assert!(score > 0.8, "silhouette {score} should be near 1");
    }

    #[test]
    fn single_cluster_has_no_silhouette() {
        let data = vec![vec![1.0, 1.0], vec![1.01, 1.0], vec![1.0, 1.01]];
        let labels = dbscan(&data, &DbscanConfig::default());
        assert_eq!(labels.cluster_count(), 1);
        assert!(silhouette_score(&data, &labels, DistanceMetric::Cosine).is_none());
    }

    #[test]
    fn random_overlapping_points_score_lower_than_separated_ones() {
        let separated = vec![
            vec![1.0, 0.0],
            vec![0.99, 0.02],
            vec![0.0, 1.0],
            vec![0.02, 0.99],
        ];
        let overlapping = vec![
            vec![1.0, 0.9],
            vec![0.9, 1.0],
            vec![1.0, 1.0],
            vec![0.95, 0.95],
        ];
        let labels = ClusterLabels::new(vec![Some(0), Some(0), Some(1), Some(1)]);
        let good = silhouette_score(&separated, &labels, DistanceMetric::Cosine).unwrap();
        let bad = silhouette_score(&overlapping, &labels, DistanceMetric::Cosine).unwrap();
        assert!(good > bad);
    }
}
