//! Distance metrics and pairwise distance matrices.

use bfl_ml::gradient::{cosine_distance, l2_distance};
use serde::{Deserialize, Serialize};

/// Metric used to compare gradient vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Cosine distance `1 - cos(a, b)` (the paper's θ).
    Cosine,
    /// Euclidean (L2) distance.
    Euclidean,
}

impl DistanceMetric {
    /// Distance between two vectors under this metric.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceMetric::Cosine => cosine_distance(a, b),
            DistanceMetric::Euclidean => l2_distance(a, b),
        }
    }
}

/// Full symmetric pairwise distance matrix (row-major `n x n`).
pub fn distance_matrix(vectors: &[Vec<f64>], metric: DistanceMetric) -> Vec<Vec<f64>> {
    let n = vectors.len();
    let mut matrix = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = metric.distance(&vectors[i], &vectors[j]);
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn metrics_match_reference_implementations() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!((DistanceMetric::Cosine.distance(&a, &b) - 1.0).abs() < 1e-12);
        assert!((DistanceMetric::Euclidean.distance(&a, &b) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let vectors = vec![vec![1.0, 2.0], vec![3.0, -1.0], vec![0.5, 0.5]];
        for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
            let m = distance_matrix(&vectors, metric);
            for i in 0..3 {
                assert_eq!(m[i][i], 0.0);
                for j in 0..3 {
                    assert!((m[i][j] - m[j][i]).abs() < 1e-15);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn distances_are_non_negative(a in proptest::collection::vec(-10.0f64..10.0, 3..8),
                                      b in proptest::collection::vec(-10.0f64..10.0, 3..8)) {
            let n = a.len().min(b.len());
            for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
                prop_assert!(metric.distance(&a[..n], &b[..n]) >= 0.0);
            }
        }
    }
}
