//! Distance metrics and pairwise distance matrices.
//!
//! The pairwise matrix is the shared substrate of every clustering
//! backend (DBSCAN and agglomerative consume it directly; k-means uses
//! the rectangular [`cross_distance_matrix`] for its assignment step).
//! Instead of `k²` independent `O(d)` vector traversals, the vectors are
//! packed once into a row-major [`Matrix`] and a single Gram GEMM
//! (`G = V · Vᵀ`, [`bfl_ml::tensor::matmul_transpose_b_into`]) produces
//! every inner product; cosine and Euclidean distances then derive from
//! `G` and its diagonal:
//!
//! * cosine:    `d_ij = 1 − G_ij / √(G_ii · G_jj)`
//! * euclidean: `d_ij = √(G_ii + G_jj − 2 G_ij)`
//!
//! Identical rows produce bit-identical Gram entries (every output
//! element accumulates in the same ascending-`k` order), so identical
//! points keep exactly zero distance — single-linkage clustering at a
//! zero threshold depends on this. The quadratic per-pair path is
//! retained as [`distance_matrix_reference`] for the equivalence tests.
//!
//! Because everything funnels through that one Gram GEMM, this module
//! inherits the PR 10 AVX2+FMA tier (`bfl_ml::simd`) with no code of
//! its own: `gemm_nt` dispatches per [`bfl_ml::simd::active`], and the
//! vector tier reproduces the scalar accumulation order bit-for-bit —
//! so the identical-rows ⇒ zero-distance guarantee above holds
//! unchanged under either tier (Algorithm 2's θ scoring rides on it).

use bfl_ml::gradient::{cosine_distance, l2_distance};
use bfl_ml::tensor::{matmul_transpose_b_into, Matrix};
use serde::{Deserialize, Serialize};

/// Metric used to compare gradient vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Cosine distance `1 - cos(a, b)` (the paper's θ).
    Cosine,
    /// Euclidean (L2) distance.
    Euclidean,
}

impl DistanceMetric {
    /// Distance between two vectors under this metric.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            DistanceMetric::Cosine => cosine_distance(a, b),
            DistanceMetric::Euclidean => l2_distance(a, b),
        }
    }

    /// Distance derived from Gram-matrix entries (`g_ij` the inner
    /// product, `g_ii`/`g_jj` the squared norms), falling back to an
    /// exact pass over the two vectors where the Gram form loses
    /// precision.
    fn gram_distance(&self, a: &[f64], b: &[f64], g_ij: f64, g_ii: f64, g_jj: f64) -> f64 {
        match self {
            DistanceMetric::Cosine => {
                if g_ii <= 0.0 || g_jj <= 0.0 {
                    // Reference semantics: similarity with a zero vector is 0.
                    return 1.0;
                }
                let similarity = (g_ij / (g_ii.sqrt() * g_jj.sqrt())).clamp(-1.0, 1.0);
                1.0 - similarity
            }
            DistanceMetric::Euclidean => {
                // `d² = G_ii + G_jj − 2 G_ij` cancels catastrophically for
                // near-identical vectors: the subtraction's rounding error
                // is ~eps·(G_ii+G_jj), which can exceed d² itself. In that
                // zone recompute the distance exactly; elsewhere the Gram
                // form is accurate well past the 1e-9 equivalence bound.
                let d_squared = g_ii + g_jj - 2.0 * g_ij;
                if d_squared < 1e-9 * (g_ii + g_jj) {
                    return l2_distance(a, b);
                }
                d_squared.sqrt()
            }
        }
    }
}

fn pack(vectors: &[Vec<f64>]) -> Matrix {
    Matrix::from_rows(vectors)
}

/// Full symmetric pairwise distance matrix (row-major `n x n`), computed
/// through one Gram GEMM over the packed vector set.
pub fn distance_matrix(vectors: &[Vec<f64>], metric: DistanceMetric) -> Vec<Vec<f64>> {
    if vectors.is_empty() {
        return Vec::new();
    }
    distance_matrix_packed(&pack(vectors), metric)
}

/// [`distance_matrix`] over an already packed row-major vector set — the
/// form Algorithm 2 uses so the round's gradient set is packed exactly
/// once and shared by clustering and the θ weights.
pub fn distance_matrix_packed(rows: &Matrix, metric: DistanceMetric) -> Vec<Vec<f64>> {
    let n = rows.rows;
    if n == 0 {
        return Vec::new();
    }
    let mut gram = Matrix::zeros(0, 0);
    matmul_transpose_b_into(rows, rows, &mut gram);

    let mut matrix = vec![vec![0.0; n]; n];
    #[allow(clippy::needless_range_loop)] // triangular fill of both halves
    for i in 0..n {
        let g_ii = gram.get(i, i);
        for j in (i + 1)..n {
            let d = metric.gram_distance(
                rows.row(i),
                rows.row(j),
                gram.get(i, j),
                g_ii,
                gram.get(j, j),
            );
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    matrix
}

/// Per-pair reference implementation of [`distance_matrix`] (the
/// pre-batching `O(k²·d)` path), kept for equivalence tests.
pub fn distance_matrix_reference(vectors: &[Vec<f64>], metric: DistanceMetric) -> Vec<Vec<f64>> {
    let n = vectors.len();
    let mut matrix = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = metric.distance(&vectors[i], &vectors[j]);
            matrix[i][j] = d;
            matrix[j][i] = d;
        }
    }
    matrix
}

/// Rectangular distance matrix between two vector sets (`a.len() x
/// b.len()`), computed through one `A · Bᵀ` GEMM — the k-means
/// assignment step uses this for points against centroids.
pub fn cross_distance_matrix(
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    metric: DistanceMetric,
) -> Vec<Vec<f64>> {
    if a.is_empty() || b.is_empty() {
        return vec![Vec::new(); a.len()];
    }
    cross_distance_matrix_packed(&pack(a), &pack(b), metric)
}

/// [`cross_distance_matrix`] over already packed row sets.
pub fn cross_distance_matrix_packed(
    a: &Matrix,
    b: &Matrix,
    metric: DistanceMetric,
) -> Vec<Vec<f64>> {
    if a.rows == 0 || b.rows == 0 {
        return vec![Vec::new(); a.rows];
    }
    assert_eq!(a.cols, b.cols, "cross_distance_matrix dimension mismatch");
    let mut gram = Matrix::zeros(0, 0);
    matmul_transpose_b_into(a, b, &mut gram);

    let squared_norm = |m: &Matrix, i: usize| m.row(i).iter().map(|x| x * x).sum::<f64>();
    let norms_a: Vec<f64> = (0..a.rows).map(|i| squared_norm(a, i)).collect();
    let norms_b: Vec<f64> = (0..b.rows).map(|j| squared_norm(b, j)).collect();
    (0..a.rows)
        .map(|i| {
            (0..b.rows)
                .map(|j| {
                    metric.gram_distance(a.row(i), b.row(j), gram.get(i, j), norms_a[i], norms_b[j])
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn metrics_match_reference_implementations() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!((DistanceMetric::Cosine.distance(&a, &b) - 1.0).abs() < 1e-12);
        assert!((DistanceMetric::Euclidean.distance(&a, &b) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let vectors = vec![vec![1.0, 2.0], vec![3.0, -1.0], vec![0.5, 0.5]];
        for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
            let m = distance_matrix(&vectors, metric);
            for (i, row) in m.iter().enumerate() {
                assert_eq!(row[i], 0.0);
                for (j, &value) in row.iter().enumerate() {
                    assert!((value - m[j][i]).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn gram_path_matches_reference_on_randomized_vectors() {
        let mut state = 0x5eed_1234u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 20.0 - 10.0
        };
        let vectors: Vec<Vec<f64>> = (0..17).map(|_| (0..23).map(|_| next()).collect()).collect();
        for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
            let fast = distance_matrix(&vectors, metric);
            let reference = distance_matrix_reference(&vectors, metric);
            for (fast_row, reference_row) in fast.iter().zip(reference.iter()) {
                for (x, y) in fast_row.iter().zip(reference_row.iter()) {
                    assert!((x - y).abs() < 1e-9, "{x} vs {y} under {metric:?}");
                }
            }
        }
    }

    #[test]
    fn zero_vectors_keep_reference_semantics() {
        let vectors = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.0, 0.0]];
        let fast = distance_matrix(&vectors, DistanceMetric::Cosine);
        let reference = distance_matrix_reference(&vectors, DistanceMetric::Cosine);
        for i in 0..3 {
            for j in 0..3 {
                assert!((fast[i][j] - reference[i][j]).abs() < 1e-12);
            }
        }
        // A zero vector is at cosine distance 1 from everything (including
        // another zero vector), but 0 from itself on the diagonal.
        assert_eq!(fast[0][1], 1.0);
        assert_eq!(fast[0][2], 1.0);
        assert_eq!(fast[0][0], 0.0);
    }

    #[test]
    fn identical_points_have_exactly_zero_euclidean_distance() {
        // Bit-identical Gram entries make the cancellation exact — the
        // zero-threshold single-linkage merge relies on this.
        let vectors = vec![vec![1.5, -2.5, 3.25], vec![1.5, -2.5, 3.25]];
        let m = distance_matrix(&vectors, DistanceMetric::Euclidean);
        assert_eq!(m[0][1], 0.0);
        // Cosine is only zero up to `sqrt(x)·sqrt(x)` rounding, exactly
        // like the per-pair reference.
        let m = distance_matrix(&vectors, DistanceMetric::Cosine);
        assert!(m[0][1].abs() < 1e-12);
    }

    #[test]
    fn near_identical_vectors_keep_reference_precision() {
        // The Gram form of d² cancels catastrophically here; the guarded
        // fallback must agree with the reference to the usual bound.
        let base: Vec<f64> = (0..16).map(|i| (i as f64) * 0.7 - 5.0).collect();
        let mut nudged = base.clone();
        nudged[3] += 1e-10;
        let vectors = vec![base, nudged];
        for metric in [DistanceMetric::Euclidean, DistanceMetric::Cosine] {
            let fast = distance_matrix(&vectors, metric);
            let reference = distance_matrix_reference(&vectors, metric);
            assert!(
                (fast[0][1] - reference[0][1]).abs() < 1e-12,
                "{metric:?}: {} vs {}",
                fast[0][1],
                reference[0][1]
            );
        }
    }

    #[test]
    fn cross_matrix_matches_pairwise_distances() {
        let a = vec![vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 0.0]];
        let b = vec![vec![0.0, 1.0], vec![1.0, 1.0]];
        for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
            let m = cross_distance_matrix(&a, &b, metric);
            assert_eq!(m.len(), 3);
            for (i, row) in m.iter().enumerate() {
                assert_eq!(row.len(), 2);
                for (j, &d) in row.iter().enumerate() {
                    assert!((d - metric.distance(&a[i], &b[j])).abs() < 1e-12);
                }
            }
        }
        assert_eq!(
            cross_distance_matrix(&[], &b, DistanceMetric::Cosine).len(),
            0
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn distances_are_non_negative(a in proptest::collection::vec(-10.0f64..10.0, 3..8),
                                      b in proptest::collection::vec(-10.0f64..10.0, 3..8)) {
            let n = a.len().min(b.len());
            for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
                prop_assert!(metric.distance(&a[..n], &b[..n]) >= 0.0);
            }
        }

        #[test]
        fn gram_and_reference_agree_on_random_sets(seed in any::<u64>(), n in 2usize..12, d in 1usize..10) {
            let mut state = seed | 1;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
            };
            let vectors: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
            for metric in [DistanceMetric::Cosine, DistanceMetric::Euclidean] {
                let fast = distance_matrix(&vectors, metric);
                let reference = distance_matrix_reference(&vectors, metric);
                for i in 0..n {
                    for j in 0..n {
                        prop_assert!((fast[i][j] - reference[i][j]).abs() < 1e-9);
                    }
                }
            }
        }
    }
}
