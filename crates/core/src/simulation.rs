//! Run-level record types and the legacy one-shot simulation facade.
//!
//! The round loop itself lives in the stepwise engine
//! ([`crate::engine::SimulationRun`]); scenarios are composed and driven
//! through [`crate::scenario::Scenario`]. This module keeps the shared
//! result types ([`RoundOutcome`], [`SimulationResult`]) and
//! [`BflSimulation`], the original `run(&train, &test)` entry point —
//! now a thin wrapper over the engine, retained so existing drivers and
//! the figure/table binaries keep working unchanged.

use crate::config::BflConfig;
use crate::delay_model::DelayBreakdown;
use crate::detection::DetectionTable;
use crate::error::CoreError;
use crate::flexibility::FlexibilityMode;
use crate::reward::RewardEntry;
use crate::scenario::Scenario;
use bfl_chain::Blockchain;
use bfl_data::Dataset;
use bfl_fl::history::RunHistory;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The per-round key performance indicators observers and the experiment
/// harness consume directly, without re-deriving them from the event
/// trace.
///
/// Every engine fills the row: the synchronous and chain-only engines
/// report the round makespan with all event-driven counters at zero
/// (nothing queues, goes stale, or retries there), while the flexible
/// event engine additionally snapshots its mempool and the fault/staleness
/// counters accumulated since the previous seal.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KpiRow {
    /// Simulated wall-clock of the round, in seconds (the delay
    /// breakdown's total).
    pub makespan_s: f64,
    /// Uploads sitting in the runtime's arrival buffer at the moment the
    /// round sealed (0 outside the event engine).
    pub mempool_depth_at_seal: usize,
    /// Stale uploads the staleness policy carried into this round's block.
    pub stale_included: usize,
    /// Stale uploads discarded this round.
    pub stale_discarded: usize,
    /// Uploads lost to the fault plan's drop/partition decisions this
    /// round.
    pub dropped_uploads: usize,
    /// Upload retransmissions scheduled by the retry policy this round.
    pub retried_uploads: usize,
}

/// Everything recorded about one communication round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Communication round (1-based).
    pub round: usize,
    /// Per-procedure delay breakdown.
    pub breakdown: DelayBreakdown,
    /// Global-model accuracy on the held-out test set after the round.
    pub accuracy: f64,
    /// Mean final-epoch training loss across participants.
    pub train_loss: f64,
    /// Number of uploads that entered the aggregation.
    pub participants: usize,
    /// How many of those uploads were *stale* — commissioned in an
    /// earlier round and carried into this block by the staleness policy.
    /// Always zero in synchronous mode.
    pub stale_included: usize,
    /// Ground-truth attacker ids of the round.
    pub attackers: Vec<u64>,
    /// Clients dropped by the discard strategy this round.
    pub dropped: Vec<u64>,
    /// Number of clients labelled high contribution.
    pub high_contributors: usize,
    /// Total reward paid this round, in milli-units of the base.
    pub rewards_paid_milli: u64,
    /// The round's full reward list (what the block records), so
    /// observers can stream payouts without re-reading the ledger.
    pub rewards: Vec<RewardEntry>,
    /// Hash of the block sealed this round (when mining is active).
    pub block_hash: Option<String>,
    /// The round's KPI row (makespan, mempool depth, stale/drop/retry
    /// counters), typed so observers don't re-derive it from the trace.
    pub kpi: KpiRow,
}

/// The complete result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Accuracy/delay history in the shared [`RunHistory`] format.
    pub history: RunHistory,
    /// Detailed per-round outcomes.
    pub outcomes: Vec<RoundOutcome>,
    /// The canonical ledger (when the mode mines).
    pub chain: Option<Blockchain>,
    /// Attacker-detection table (Table 2 bookkeeping).
    pub detection: DetectionTable,
    /// Cumulative rewards per client, in milli-units.
    pub reward_totals: BTreeMap<u64, u64>,
    /// Final global parameters (empty for the chain-only mode).
    pub final_params: Vec<f64>,
    /// The flexibility mode the run used.
    pub mode: FlexibilityMode,
}

impl SimulationResult {
    /// Mean per-round delay in seconds.
    pub fn mean_delay(&self) -> f64 {
        self.history.mean_round_delay()
    }

    /// Final test accuracy, or `None` when no round completed.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.history.final_accuracy()
    }
}

/// The legacy one-shot FAIR-BFL driver, kept as a thin compatibility
/// wrapper over the Scenario API: `BflSimulation::new(config).run(..)`
/// is exactly `Scenario::from_config(config)?.run(..)` — the same
/// stepwise engine, stepped to completion.
#[derive(Debug, Clone)]
pub struct BflSimulation {
    /// The run configuration.
    pub config: BflConfig,
}

impl BflSimulation {
    /// Creates a simulation after validating the configuration, panicking
    /// on an invalid one (the original contract). Use
    /// [`Scenario::builder`] or [`Scenario::from_config`] for the
    /// non-panicking form.
    pub fn new(config: BflConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        BflSimulation { config }
    }

    /// Runs the configured number of communication rounds.
    pub fn run(&self, train: &Dataset, test: &Dataset) -> Result<SimulationResult, CoreError> {
        Scenario::from_config(self.config)?.run(train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;
    use crate::strategy::LowContributionStrategy;
    use bfl_data::synth_mnist::{SynthMnist, SynthMnistConfig};
    use bfl_fl::config::PartitionKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_data() -> (Dataset, Dataset) {
        let gen = SynthMnist::new(SynthMnistConfig {
            train_samples: 200,
            test_samples: 60,
            noise_std: 0.05,
            max_translation: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(11);
        gen.generate(&mut rng)
    }

    fn base_config(rounds: usize) -> BflConfig {
        let mut config = BflConfig::small_test(rounds);
        config.fl.partition = PartitionKind::Iid;
        config
    }

    #[test]
    fn full_bfl_run_produces_consistent_artifacts() {
        let (train, test) = tiny_data();
        let config = base_config(3);
        let result = BflSimulation::new(config).run(&train, &test).unwrap();

        assert_eq!(result.history.len(), 3);
        assert_eq!(result.outcomes.len(), 3);
        assert_eq!(result.mode, FlexibilityMode::FullBfl);
        // One block per round plus genesis, no empty blocks, valid chain.
        let chain = result.chain.as_ref().expect("full BFL mines");
        assert_eq!(chain.height(), 3);
        assert_eq!(chain.empty_block_count(), 0);
        chain.validate_all().unwrap();
        // The chain's latest global gradient matches the final parameters.
        let (round, payload) = chain.latest_global_gradient().unwrap();
        assert_eq!(round, 3);
        assert_eq!(
            bfl_ml::gradient::from_bytes(&payload).unwrap(),
            result.final_params
        );
        // Rewards recorded on chain agree with the totals we tracked, and
        // the per-round reward lists sum to the per-round totals.
        assert_eq!(chain.reward_totals(), result.reward_totals);
        for outcome in &result.outcomes {
            let listed: u64 = outcome.rewards.iter().map(|r| r.amount_milli).sum();
            assert_eq!(listed, outcome.rewards_paid_milli);
        }
        // Delays are positive and the clock is cumulative.
        assert!(result.history.rounds.iter().all(|r| r.round_delay_s > 0.0));
        let elapsed: Vec<f64> = result.history.rounds.iter().map(|r| r.elapsed_s).collect();
        assert!(elapsed.windows(2).all(|w| w[1] > w[0]));
        // Accuracy is meaningful by round 3 on the tiny IID task.
        assert!(result.final_accuracy().unwrap() > 0.5);
    }

    #[test]
    fn fl_only_mode_produces_no_chain_and_no_mining_delay() {
        let (train, test) = tiny_data();
        let mut config = base_config(2);
        config.mode = FlexibilityMode::FlOnly;
        let result = BflSimulation::new(config).run(&train, &test).unwrap();
        assert!(result.chain.is_none());
        assert!(result.outcomes.iter().all(|o| o.block_hash.is_none()));
        assert!(result
            .outcomes
            .iter()
            .all(|o| o.breakdown.t_bl == 0.0 && o.breakdown.t_ex == 0.0));
        assert!(result.final_accuracy().unwrap() > 0.3);
    }

    #[test]
    fn chain_only_mode_builds_a_ledger_without_learning() {
        let (train, test) = tiny_data();
        let mut config = base_config(2);
        config.mode = FlexibilityMode::ChainOnly;
        let result = BflSimulation::new(config).run(&train, &test).unwrap();
        let chain = result.chain.as_ref().unwrap();
        assert!(chain.height() >= 2, "at least one block per round");
        chain.validate_all().unwrap();
        // Chain-only rounds record the 0.0 accuracy sentinel per round —
        // the history is non-empty, so final_accuracy is Some(0.0).
        assert_eq!(result.final_accuracy(), Some(0.0));
        assert!(result.final_params.is_empty());
        assert!(result.outcomes.iter().all(|o| o.breakdown.t_local == 0.0));
    }

    #[test]
    fn full_bfl_is_slower_than_fl_only_but_faster_than_chain_baseline_at_scale() {
        let (train, test) = tiny_data();
        let mut fair = base_config(3);
        fair.fl.clients = 10;
        let mut fl_only = fair;
        fl_only.mode = FlexibilityMode::FlOnly;
        let mut chain_only = fair;
        chain_only.mode = FlexibilityMode::ChainOnly;
        // The pure-blockchain baseline records every one of the 100 workers'
        // transactions; model that scale for the delay comparison.
        chain_only.fl.clients = 100;

        let fair_result = BflSimulation::new(fair).run(&train, &test).unwrap();
        let fl_result = BflSimulation::new(fl_only).run(&train, &test).unwrap();
        let chain_result = BflSimulation::new(chain_only).run(&train, &test).unwrap();

        assert!(fair_result.mean_delay() > fl_result.mean_delay());
        assert!(chain_result.mean_delay() > fair_result.mean_delay());
    }

    #[test]
    fn discard_strategy_detects_sign_flip_attackers() {
        let (train, test) = tiny_data();
        let mut config = base_config(5);
        config.strategy = LowContributionStrategy::Discard;
        config.attack = AttackConfig::table2();
        config.fl.participation_ratio = 1.0;
        let result = BflSimulation::new(config).run(&train, &test).unwrap();

        assert_eq!(result.detection.len(), 5);
        let (total_attackers, caught) = result.detection.totals();
        assert!(
            total_attackers >= 5,
            "1-3 attackers per round over 5 rounds"
        );
        let rate = result.detection.average_detection_rate();
        assert!(
            rate > 0.6,
            "sign-flip attackers should be caught most of the time (rate {rate}, {caught}/{total_attackers})"
        );
        // Dropped clients are excluded from the aggregation and the reward
        // list by construction: high contributors and dropped (low)
        // contributors partition the round's participants, and a non-empty
        // round always keeps at least one contributor.
        for outcome in &result.outcomes {
            assert!(
                outcome.high_contributors + outcome.dropped.len() <= outcome.participants,
                "round {}: {} high + {} dropped exceeds {} participants",
                outcome.round,
                outcome.high_contributors,
                outcome.dropped.len(),
                outcome.participants
            );
            assert!(
                outcome.high_contributors > 0,
                "round {}: a non-empty round must keep at least one contributor",
                outcome.round
            );
        }
    }

    #[test]
    fn signature_verification_can_be_disabled() {
        let (train, test) = tiny_data();
        let mut config = base_config(2);
        config.verify_signatures = false;
        let result = BflSimulation::new(config).run(&train, &test).unwrap();
        assert_eq!(result.history.len(), 2);
    }

    #[test]
    fn parallel_mining_produces_an_identical_run() {
        let (train, test) = tiny_data();
        let serial = base_config(2);
        let mut parallel = serial;
        parallel.mining_threads = 0; // one worker per core
        let a = BflSimulation::new(serial).run(&train, &test).unwrap();
        let b = BflSimulation::new(parallel).run(&train, &test).unwrap();
        // The deterministic parallel nonce search seals the same blocks,
        // so the entire trajectory is bit-identical.
        assert_eq!(a.history, b.history);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(
            a.chain.as_ref().unwrap().tip().hash(),
            b.chain.as_ref().unwrap().tip().hash()
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let (train, test) = tiny_data();
        let config = base_config(3);
        let a = BflSimulation::new(config).run(&train, &test).unwrap();
        let b = BflSimulation::new(config).run(&train, &test).unwrap();
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.history, b.history);
        assert_eq!(a.reward_totals, b.reward_totals);
    }

    #[test]
    fn fair_aggregation_ablation_changes_the_trajectory() {
        let (train, test) = tiny_data();
        let mut fair = base_config(3);
        fair.fair_aggregation = true;
        let mut simple = base_config(3);
        simple.fair_aggregation = false;
        let a = BflSimulation::new(fair).run(&train, &test).unwrap();
        let b = BflSimulation::new(simple).run(&train, &test).unwrap();
        assert_ne!(a.final_params, b.final_params);
    }

    #[test]
    #[should_panic(expected = "invalid configuration")]
    fn legacy_constructor_still_panics_on_invalid_configs() {
        let _ = BflSimulation::new(BflConfig {
            miners: 0,
            ..Default::default()
        });
    }
}
