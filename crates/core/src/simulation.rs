//! End-to-end FAIR-BFL simulation: the round driver that composes the five
//! procedures under a flexibility mode, advances the simulated clock with
//! the delay model, and records everything the experiments need (accuracy
//! trajectories, per-procedure delays, contribution labels, rewards,
//! attacker detection, and the resulting ledger).

use crate::config::BflConfig;
use crate::delay_model::DelayBreakdown;
use crate::detection::{DetectionRow, DetectionTable};
use crate::error::CoreError;
use crate::flexibility::FlexibilityMode;
use crate::procedures::{exchange, global_update, local_update, mining, upload};
use bfl_chain::consensus::RoundConsensus;
use bfl_chain::mempool::Mempool;
use bfl_chain::miner::Miner;
use bfl_chain::{Blockchain, Transaction};
use bfl_crypto::{KeyStore, RsaKeyPair};
use bfl_data::Dataset;
use bfl_fl::attack::AttackKind;
use bfl_fl::client::Client;
use bfl_fl::history::{RoundRecord, RunHistory};
use bfl_fl::selection::{drop_stragglers, select_clients};
use bfl_fl::trainer::{FlAlgorithm, FlTrainer};
use bfl_ml::metrics::accuracy;
use bfl_ml::model::{AnyModel, Model};
use bfl_net::{SimClock, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Everything recorded about one communication round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Communication round (1-based).
    pub round: usize,
    /// Per-procedure delay breakdown.
    pub breakdown: DelayBreakdown,
    /// Global-model accuracy on the held-out test set after the round.
    pub accuracy: f64,
    /// Mean final-epoch training loss across participants.
    pub train_loss: f64,
    /// Number of uploads that entered the aggregation.
    pub participants: usize,
    /// Ground-truth attacker ids of the round.
    pub attackers: Vec<u64>,
    /// Clients dropped by the discard strategy this round.
    pub dropped: Vec<u64>,
    /// Number of clients labelled high contribution.
    pub high_contributors: usize,
    /// Total reward paid this round, in milli-units of the base.
    pub rewards_paid_milli: u64,
    /// Hash of the block sealed this round (when mining is active).
    pub block_hash: Option<String>,
}

/// The complete result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// Accuracy/delay history in the shared [`RunHistory`] format.
    pub history: RunHistory,
    /// Detailed per-round outcomes.
    pub outcomes: Vec<RoundOutcome>,
    /// The canonical ledger (when the mode mines).
    pub chain: Option<Blockchain>,
    /// Attacker-detection table (Table 2 bookkeeping).
    pub detection: DetectionTable,
    /// Cumulative rewards per client, in milli-units.
    pub reward_totals: BTreeMap<u64, u64>,
    /// Final global parameters (empty for the chain-only mode).
    pub final_params: Vec<f64>,
    /// The flexibility mode the run used.
    pub mode: FlexibilityMode,
}

impl SimulationResult {
    /// Mean per-round delay in seconds.
    pub fn mean_delay(&self) -> f64 {
        self.history.mean_round_delay()
    }

    /// Final test accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.history.final_accuracy()
    }
}

/// The FAIR-BFL simulation driver.
#[derive(Debug, Clone)]
pub struct BflSimulation {
    /// The run configuration.
    pub config: BflConfig,
}

impl BflSimulation {
    /// Creates a simulation after validating the configuration.
    pub fn new(config: BflConfig) -> Self {
        config.validate();
        BflSimulation { config }
    }

    /// Runs the configured number of communication rounds.
    pub fn run(&self, train: &Dataset, test: &Dataset) -> Result<SimulationResult, CoreError> {
        match self.config.mode {
            FlexibilityMode::ChainOnly => self.run_chain_only(),
            _ => self.run_learning(train, test),
        }
    }

    /// Chain-only mode: workers submit generic transactions, miners drain
    /// the mempool into blocks — the pure-blockchain baseline.
    fn run_chain_only(&self) -> Result<SimulationResult, CoreError> {
        let config = &self.config;
        let mut rng = StdRng::seed_from_u64(config.fl.seed);
        let miners: Vec<Miner> = (0..config.miners as u64)
            .map(|id| Miner::new(id, config.delay.miner_hash_rate))
            .collect();
        // Real mining uses a light difficulty so wall-clock time stays
        // negligible; the *simulated* delay comes from the delay model.
        let mut consensus = RoundConsensus::new(
            miners,
            bfl_chain::PowConfig::new(64).with_mining_threads(config.mining_threads),
        );
        consensus
            .replicas
            .iter_mut()
            .for_each(|c| c.max_block_bytes = config.delay.max_block_bytes);
        let mut mempool = Mempool::new();
        let mut clock = SimClock::new();
        let mut history = RunHistory::new();
        let mut outcomes = Vec::new();

        for round in 1..=config.fl.rounds {
            // Every worker submits one transaction.
            for worker in 0..config.fl.clients as u64 {
                mempool.submit(Transaction::local_gradient(
                    worker,
                    round as u64,
                    vec![0u8; config.delay.baseline_tx_bytes],
                ));
            }
            // Miners clear the backlog, one block at a time.
            let mut blocks = 0;
            while !mempool.is_empty() {
                let batch = mempool.drain_block(config.delay.max_block_bytes);
                consensus
                    .seal_round(batch, clock.now_millis(), &mut rng)
                    .map_err(CoreError::from)?;
                blocks += 1;
            }

            let breakdown =
                config
                    .delay
                    .blockchain_round(config.fl.clients, config.miners, &mut rng);
            clock.advance(breakdown.total());
            history.push(RoundRecord {
                round,
                accuracy: 0.0,
                train_loss: 0.0,
                round_delay_s: breakdown.total(),
                elapsed_s: clock.now_seconds(),
                participants: config.fl.clients,
            });
            outcomes.push(RoundOutcome {
                round,
                breakdown,
                accuracy: 0.0,
                train_loss: 0.0,
                participants: config.fl.clients,
                attackers: Vec::new(),
                dropped: Vec::new(),
                high_contributors: 0,
                rewards_paid_milli: 0,
                block_hash: Some(consensus.canonical_chain().tip().hash_hex()),
            });
            let _ = blocks;
        }

        Ok(SimulationResult {
            history,
            outcomes,
            chain: Some(consensus.canonical_chain().clone()),
            detection: DetectionTable::new(),
            reward_totals: BTreeMap::new(),
            final_params: Vec::new(),
            mode: config.mode,
        })
    }

    /// Learning modes: full FAIR-BFL or FL-only.
    fn run_learning(&self, train: &Dataset, test: &Dataset) -> Result<SimulationResult, CoreError> {
        let config = &self.config;
        let mut rng = StdRng::seed_from_u64(config.fl.seed);

        // Client population and data shards (reusing the FL trainer's
        // partitioning so baselines and FAIR-BFL see identical splits).
        let trainer = FlTrainer::new(config.fl, FlAlgorithm::FedAvg);
        let clients: Vec<Client> = trainer.build_clients(train, &mut rng);
        let local_config = {
            let mut local = config.fl.local;
            local.proximal_mu = config.fl.local.proximal_mu;
            local
        };

        // Key provisioning (Procedure-II's RSA identities). Keys come
        // from a dedicated RNG stream so the learning trajectory is
        // invariant to crypto details: how many candidates a prime
        // search consumes — or whether signatures are enabled at all —
        // must not reshuffle client selection and training randomness.
        let (keystore, keypairs): (Option<KeyStore>, Option<BTreeMap<u64, RsaKeyPair>>) =
            if config.verify_signatures {
                let mut key_rng = StdRng::seed_from_u64(config.fl.seed ^ 0x5EED_0F4B);
                let mut store = KeyStore::new();
                let ids: Vec<u64> = clients.iter().map(|c| c.id).collect();
                let pairs = store
                    .provision(&mut key_rng, &ids, config.rsa_modulus_bits)
                    .map_err(CoreError::from)?;
                (Some(store), Some(pairs))
            } else {
                (None, None)
            };

        // Consensus group (Procedure-V), only when the mode mines.
        let mut consensus = if config.mode.mines() {
            let miners: Vec<Miner> = (0..config.miners as u64)
                .map(|id| Miner::new(id, config.delay.miner_hash_rate))
                .collect();
            Some(RoundConsensus::new(
                miners,
                bfl_chain::PowConfig::new(64).with_mining_threads(config.mining_threads),
            ))
        } else {
            None
        };

        let topology = Topology::new(config.fl.clients, config.miners);
        let mut global_model: AnyModel = config.fl.model.build(&mut rng);
        let mut global_params = global_model.params();

        let mut clock = SimClock::new();
        let mut history = RunHistory::new();
        let mut outcomes = Vec::new();
        let mut detection = DetectionTable::new();
        let mut reward_totals: BTreeMap<u64, u64> = BTreeMap::new();
        // Clients currently sitting out after being discarded.
        let mut cooldown: BTreeMap<u64, usize> = BTreeMap::new();

        for round in 1..=config.fl.rounds {
            // Advance cooldowns.
            cooldown.retain(|_, remaining| {
                *remaining = remaining.saturating_sub(1);
                *remaining > 0
            });

            // Select participants among active (non-cooling-down) clients.
            let active: Vec<usize> = (0..clients.len())
                .filter(|i| !cooldown.contains_key(&clients[*i].id))
                .collect();
            let pool: &[usize] = if active.is_empty() { &[] } else { &active };
            let selected_positions = if pool.is_empty() {
                select_clients(clients.len(), config.fl.selected_per_round(), &mut rng)
            } else {
                select_clients(pool.len(), config.fl.selected_per_round(), &mut rng)
                    .into_iter()
                    .map(|i| pool[i])
                    .collect()
            };
            let selected_positions =
                drop_stragglers(&selected_positions, config.fl.drop_percent, &mut rng);

            // Designate attackers for this round. Designations live in a
            // side table aligned with `selected_positions`, so the client
            // population is never cloned per round.
            let mut attacks: Vec<Option<AttackKind>> = vec![None; selected_positions.len()];
            let mut attackers = Vec::new();
            if config.attack.enabled && !selected_positions.is_empty() {
                let max = config.attack.max_attackers.min(selected_positions.len());
                let min = config.attack.min_attackers.min(max);
                let count = if min == max {
                    min
                } else {
                    rng.gen_range(min..=max)
                };
                let mut order: Vec<usize> = (0..selected_positions.len()).collect();
                use rand::seq::SliceRandom;
                order.shuffle(&mut rng);
                for &i in order.iter().take(count) {
                    attacks[i] = Some(config.attack.kind);
                    attackers.push(clients[selected_positions[i]].id);
                }
                attackers.sort_unstable();
            }

            // Procedure-I: local learning.
            let round_seed = config.fl.seed ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let updates = local_update::run_local_updates_with_attacks(
                &clients,
                &selected_positions,
                &attacks,
                config.fl.model,
                &global_params,
                train,
                &local_config,
                round_seed,
            );
            let max_steps =
                local_update::max_local_steps(&clients, &selected_positions, &local_config);

            // Procedure-II: upload + verification.
            let uploads = upload::upload_gradients(
                &updates,
                &topology,
                keypairs.as_ref(),
                keystore.as_ref(),
                &mut rng,
            );

            // Procedure-III: miner exchange (skipped in FL-only mode, where
            // the single aggregator already holds every accepted upload).
            // Both paths consume the upload outcome, moving the round's
            // parameter vectors into the merged set instead of cloning.
            let merged = if config.mode.runs(crate::flexibility::Procedure::Exchange) {
                exchange::exchange_gradients(uploads, config.miners).merged
            } else {
                uploads.into_all_accepted()
            };
            if merged.is_empty() {
                return Err(CoreError::EmptyRound { round });
            }

            // Procedure-IV: global update + Algorithm 2.
            let mut global = global_update::compute_global_update(
                &merged,
                &config.clustering,
                config.metric,
                config.strategy,
                config.fair_aggregation,
                config.reward_base,
            );
            global_params = std::mem::take(&mut global.global_params);
            global_model.set_params(&global_params);

            // Procedure-V: mining and consensus.
            let block_hash = if let Some(consensus) = consensus.as_mut() {
                let outcome = mining::mine_round(
                    consensus,
                    round as u64,
                    &global_params,
                    &global.report.rewards,
                    clock.now_millis(),
                    &mut rng,
                )?;
                Some(outcome.block.hash_hex())
            } else {
                None
            };

            // Rewards bookkeeping.
            let mut rewards_paid = 0u64;
            for reward in &global.report.rewards {
                rewards_paid += reward.amount_milli;
                *reward_totals.entry(reward.client_id).or_insert(0) += reward.amount_milli;
            }

            // Discard strategy: dropped clients sit out the next few rounds
            // (the "clients selection" effect of Section 3.2).
            if config.strategy.discards() {
                for &id in &global.dropped {
                    cooldown.insert(id, config.discard_cooldown_rounds.max(1));
                }
            }

            // Delay accounting and the clock.
            let breakdown = match config.mode {
                FlexibilityMode::FullBfl => {
                    config
                        .delay
                        .fair_round(merged.len(), max_steps, config.miners, &mut rng)
                }
                FlexibilityMode::FlOnly => {
                    config
                        .delay
                        .federated_round(merged.len(), max_steps, &mut rng)
                }
                FlexibilityMode::ChainOnly => unreachable!("handled by run_chain_only"),
            };
            clock.advance(breakdown.total());

            // Evaluation.
            let test_accuracy = accuracy(&global_model, &test.features, &test.labels, None);
            let train_loss = updates
                .iter()
                .map(|u| u.stats.final_epoch_loss)
                .sum::<f64>()
                / updates.len().max(1) as f64;

            detection.push(DetectionRow::new(round, &attackers, &global.dropped));
            history.push(RoundRecord {
                round,
                accuracy: test_accuracy,
                train_loss,
                round_delay_s: breakdown.total(),
                elapsed_s: clock.now_seconds(),
                participants: merged.len(),
            });
            outcomes.push(RoundOutcome {
                round,
                breakdown,
                accuracy: test_accuracy,
                train_loss,
                participants: merged.len(),
                attackers,
                dropped: global.dropped.clone(),
                high_contributors: global.report.high_contribution.len(),
                rewards_paid_milli: rewards_paid,
                block_hash,
            });
        }

        Ok(SimulationResult {
            history,
            outcomes,
            chain: consensus.map(|c| c.canonical_chain().clone()),
            detection,
            reward_totals,
            final_params: global_params,
            mode: config.mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AttackConfig;
    use crate::strategy::LowContributionStrategy;
    use bfl_data::synth_mnist::{SynthMnist, SynthMnistConfig};
    use bfl_fl::config::PartitionKind;

    fn tiny_data() -> (Dataset, Dataset) {
        let gen = SynthMnist::new(SynthMnistConfig {
            train_samples: 200,
            test_samples: 60,
            noise_std: 0.05,
            max_translation: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(11);
        gen.generate(&mut rng)
    }

    fn base_config(rounds: usize) -> BflConfig {
        let mut config = BflConfig::small_test(rounds);
        config.fl.partition = PartitionKind::Iid;
        config
    }

    #[test]
    fn full_bfl_run_produces_consistent_artifacts() {
        let (train, test) = tiny_data();
        let config = base_config(3);
        let result = BflSimulation::new(config).run(&train, &test).unwrap();

        assert_eq!(result.history.len(), 3);
        assert_eq!(result.outcomes.len(), 3);
        assert_eq!(result.mode, FlexibilityMode::FullBfl);
        // One block per round plus genesis, no empty blocks, valid chain.
        let chain = result.chain.as_ref().expect("full BFL mines");
        assert_eq!(chain.height(), 3);
        assert_eq!(chain.empty_block_count(), 0);
        chain.validate_all().unwrap();
        // The chain's latest global gradient matches the final parameters.
        let (round, payload) = chain.latest_global_gradient().unwrap();
        assert_eq!(round, 3);
        assert_eq!(
            bfl_ml::gradient::from_bytes(&payload).unwrap(),
            result.final_params
        );
        // Rewards recorded on chain agree with the totals we tracked.
        assert_eq!(chain.reward_totals(), result.reward_totals);
        // Delays are positive and the clock is cumulative.
        assert!(result.history.rounds.iter().all(|r| r.round_delay_s > 0.0));
        let elapsed: Vec<f64> = result.history.rounds.iter().map(|r| r.elapsed_s).collect();
        assert!(elapsed.windows(2).all(|w| w[1] > w[0]));
        // Accuracy is meaningful by round 3 on the tiny IID task.
        assert!(result.final_accuracy() > 0.5);
    }

    #[test]
    fn fl_only_mode_produces_no_chain_and_no_mining_delay() {
        let (train, test) = tiny_data();
        let mut config = base_config(2);
        config.mode = FlexibilityMode::FlOnly;
        let result = BflSimulation::new(config).run(&train, &test).unwrap();
        assert!(result.chain.is_none());
        assert!(result.outcomes.iter().all(|o| o.block_hash.is_none()));
        assert!(result
            .outcomes
            .iter()
            .all(|o| o.breakdown.t_bl == 0.0 && o.breakdown.t_ex == 0.0));
        assert!(result.final_accuracy() > 0.3);
    }

    #[test]
    fn chain_only_mode_builds_a_ledger_without_learning() {
        let (train, test) = tiny_data();
        let mut config = base_config(2);
        config.mode = FlexibilityMode::ChainOnly;
        let result = BflSimulation::new(config).run(&train, &test).unwrap();
        let chain = result.chain.as_ref().unwrap();
        assert!(chain.height() >= 2, "at least one block per round");
        chain.validate_all().unwrap();
        assert_eq!(result.final_accuracy(), 0.0);
        assert!(result.final_params.is_empty());
        assert!(result.outcomes.iter().all(|o| o.breakdown.t_local == 0.0));
    }

    #[test]
    fn full_bfl_is_slower_than_fl_only_but_faster_than_chain_baseline_at_scale() {
        let (train, test) = tiny_data();
        let mut fair = base_config(3);
        fair.fl.clients = 10;
        let mut fl_only = fair;
        fl_only.mode = FlexibilityMode::FlOnly;
        let mut chain_only = fair;
        chain_only.mode = FlexibilityMode::ChainOnly;
        // The pure-blockchain baseline records every one of the 100 workers'
        // transactions; model that scale for the delay comparison.
        chain_only.fl.clients = 100;

        let fair_result = BflSimulation::new(fair).run(&train, &test).unwrap();
        let fl_result = BflSimulation::new(fl_only).run(&train, &test).unwrap();
        let chain_result = BflSimulation::new(chain_only).run(&train, &test).unwrap();

        assert!(fair_result.mean_delay() > fl_result.mean_delay());
        assert!(chain_result.mean_delay() > fair_result.mean_delay());
    }

    #[test]
    fn discard_strategy_detects_sign_flip_attackers() {
        let (train, test) = tiny_data();
        let mut config = base_config(5);
        config.strategy = LowContributionStrategy::Discard;
        config.attack = AttackConfig::table2();
        config.fl.participation_ratio = 1.0;
        let result = BflSimulation::new(config).run(&train, &test).unwrap();

        assert_eq!(result.detection.len(), 5);
        let (total_attackers, caught) = result.detection.totals();
        assert!(
            total_attackers >= 5,
            "1-3 attackers per round over 5 rounds"
        );
        let rate = result.detection.average_detection_rate();
        assert!(
            rate > 0.6,
            "sign-flip attackers should be caught most of the time (rate {rate}, {caught}/{total_attackers})"
        );
        // Dropped clients are excluded from the aggregation and the reward
        // list by construction: high contributors and dropped (low)
        // contributors partition the round's participants, and a non-empty
        // round always keeps at least one contributor.
        for outcome in &result.outcomes {
            assert!(
                outcome.high_contributors + outcome.dropped.len() <= outcome.participants,
                "round {}: {} high + {} dropped exceeds {} participants",
                outcome.round,
                outcome.high_contributors,
                outcome.dropped.len(),
                outcome.participants
            );
            assert!(
                outcome.high_contributors > 0,
                "round {}: a non-empty round must keep at least one contributor",
                outcome.round
            );
        }
    }

    #[test]
    fn signature_verification_can_be_disabled() {
        let (train, test) = tiny_data();
        let mut config = base_config(2);
        config.verify_signatures = false;
        let result = BflSimulation::new(config).run(&train, &test).unwrap();
        assert_eq!(result.history.len(), 2);
    }

    #[test]
    fn parallel_mining_produces_an_identical_run() {
        let (train, test) = tiny_data();
        let serial = base_config(2);
        let mut parallel = serial;
        parallel.mining_threads = 0; // one worker per core
        let a = BflSimulation::new(serial).run(&train, &test).unwrap();
        let b = BflSimulation::new(parallel).run(&train, &test).unwrap();
        // The deterministic parallel nonce search seals the same blocks,
        // so the entire trajectory is bit-identical.
        assert_eq!(a.history, b.history);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(
            a.chain.as_ref().unwrap().tip().hash(),
            b.chain.as_ref().unwrap().tip().hash()
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let (train, test) = tiny_data();
        let config = base_config(3);
        let a = BflSimulation::new(config).run(&train, &test).unwrap();
        let b = BflSimulation::new(config).run(&train, &test).unwrap();
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.history, b.history);
        assert_eq!(a.reward_totals, b.reward_totals);
    }

    #[test]
    fn fair_aggregation_ablation_changes_the_trajectory() {
        let (train, test) = tiny_data();
        let mut fair = base_config(3);
        fair.fair_aggregation = true;
        let mut simple = base_config(3);
        simple.fair_aggregation = false;
        let a = BflSimulation::new(fair).run(&train, &test).unwrap();
        let b = BflSimulation::new(simple).run(&train, &test).unwrap();
        assert_ne!(a.final_params, b.final_params);
    }
}
