//! Theorem 3.1 — the convergence bound of FAIR-BFL.
//!
//! Under L-smoothness, μ-strong convexity, bounded gradient variance and
//! bounded gradient norms (Assumptions 3-6), Algorithm 1 satisfies
//!
//! ```text
//! E[F(w_r)] − F* ≤ κ/(γ + r) · ( 2(B + C)/μ + μ(γ + 1)/2 · ‖w_1 − w*‖² )
//! ```
//!
//! with κ = L/μ, γ = max{8κ, E}, learning rate η_r = 2 / (μ(γ + r)), and
//! C = 4 E² G² / K where K is the number of clients sampled per round.
//! The bound decays as O(1/r) regardless of the data distribution (no IID
//! assumption is made). This module evaluates the bound so experiments can
//! overlay it on measured loss trajectories.

use serde::{Deserialize, Serialize};

/// Problem constants appearing in Assumptions 3-6 and Theorem 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoremParams {
    /// Smoothness constant L (Assumption 3).
    pub smoothness: f64,
    /// Strong-convexity constant μ (Assumption 4).
    pub strong_convexity: f64,
    /// Variance-related constant B aggregating the per-client variance
    /// bounds σ_i² (Assumption 5).
    pub variance_bound: f64,
    /// Uniform stochastic-gradient norm bound G (Assumption 6).
    pub gradient_bound: f64,
    /// Local epochs E.
    pub local_epochs: usize,
    /// Clients sampled per round K.
    pub clients_per_round: usize,
    /// Squared distance ‖w_1 − w*‖² of the initial model from the optimum.
    pub initial_distance_sq: f64,
}

impl Default for TheoremParams {
    fn default() -> Self {
        TheoremParams {
            smoothness: 1.0,
            strong_convexity: 0.1,
            variance_bound: 1.0,
            gradient_bound: 1.0,
            local_epochs: 5,
            clients_per_round: 10,
            initial_distance_sq: 10.0,
        }
    }
}

impl TheoremParams {
    /// Condition number κ = L/μ.
    pub fn kappa(&self) -> f64 {
        self.smoothness / self.strong_convexity
    }

    /// γ = max{8κ, E}.
    pub fn gamma(&self) -> f64 {
        (8.0 * self.kappa()).max(self.local_epochs as f64)
    }

    /// C = 4 E² G² / K (from Lemma A.1).
    pub fn sampling_variance(&self) -> f64 {
        4.0 * (self.local_epochs as f64).powi(2) * self.gradient_bound.powi(2)
            / self.clients_per_round.max(1) as f64
    }

    /// The decreasing learning rate η_r = 2 / (μ (γ + r)).
    pub fn learning_rate(&self, round: usize) -> f64 {
        2.0 / (self.strong_convexity * (self.gamma() + round as f64))
    }

    /// The Theorem 3.1 bound on E[F(w_r)] − F* after `round` rounds
    /// (rounds are 1-based).
    pub fn bound(&self, round: usize) -> f64 {
        assert!(round >= 1, "the bound is defined for rounds >= 1");
        let kappa = self.kappa();
        let gamma = self.gamma();
        let b_plus_c = self.variance_bound + self.sampling_variance();
        kappa / (gamma + round as f64)
            * (2.0 * b_plus_c / self.strong_convexity
                + self.strong_convexity * (gamma + 1.0) / 2.0 * self.initial_distance_sq)
    }

    /// The bound evaluated over `1..=rounds`, handy for plotting.
    pub fn bound_series(&self, rounds: usize) -> Vec<f64> {
        (1..=rounds).map(|r| self.bound(r)).collect()
    }

    /// Validates the assumptions' parameter ranges.
    pub fn validate(&self) {
        assert!(self.smoothness > 0.0, "L must be positive");
        assert!(self.strong_convexity > 0.0, "mu must be positive");
        assert!(
            self.smoothness >= self.strong_convexity,
            "L >= mu is required (kappa >= 1)"
        );
        assert!(self.variance_bound >= 0.0 && self.gradient_bound >= 0.0);
        assert!(self.local_epochs >= 1 && self.clients_per_round >= 1);
        assert!(self.initial_distance_sq >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_are_valid_and_consistent() {
        let p = TheoremParams::default();
        p.validate();
        assert!((p.kappa() - 10.0).abs() < 1e-12);
        assert!((p.gamma() - 80.0).abs() < 1e-12);
        assert!((p.sampling_variance() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn bound_decreases_monotonically_in_rounds() {
        let p = TheoremParams::default();
        let series = p.bound_series(200);
        assert_eq!(series.len(), 200);
        for window in series.windows(2) {
            assert!(window[1] < window[0]);
        }
        // O(1/r): doubling r roughly halves the bound for large r.
        let ratio = p.bound(400) / p.bound(200);
        assert!(ratio > 0.4 && ratio < 0.65, "ratio {ratio}");
    }

    #[test]
    fn learning_rate_is_decreasing_and_satisfies_eta_r_le_2_eta_r_plus_e() {
        let p = TheoremParams::default();
        for r in 1..100 {
            assert!(p.learning_rate(r + 1) < p.learning_rate(r));
            assert!(p.learning_rate(r) <= 2.0 * p.learning_rate(r + p.local_epochs));
        }
    }

    #[test]
    fn more_clients_per_round_tighten_the_bound() {
        let few = TheoremParams {
            clients_per_round: 2,
            ..Default::default()
        };
        let many = TheoremParams {
            clients_per_round: 50,
            ..Default::default()
        };
        assert!(many.bound(10) < few.bound(10));
    }

    #[test]
    fn worse_conditioning_loosens_the_bound() {
        let well = TheoremParams::default();
        let ill = TheoremParams {
            smoothness: 10.0,
            ..Default::default()
        };
        assert!(ill.bound(10) > well.bound(10));
    }

    #[test]
    #[should_panic(expected = "rounds >= 1")]
    fn round_zero_is_rejected() {
        let _ = TheoremParams::default().bound(0);
    }

    #[test]
    #[should_panic(expected = "kappa >= 1")]
    fn mu_larger_than_l_is_rejected() {
        let p = TheoremParams {
            smoothness: 0.05,
            strong_convexity: 0.1,
            ..Default::default()
        };
        p.validate();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn bound_is_positive_and_decreasing(l in 0.1f64..10.0, mu_frac in 0.01f64..1.0, rounds in 2usize..100) {
            let p = TheoremParams {
                smoothness: l,
                strong_convexity: l * mu_frac,
                ..Default::default()
            };
            p.validate();
            let early = p.bound(1);
            let late = p.bound(rounds);
            prop_assert!(early > 0.0 && late > 0.0);
            prop_assert!(late <= early);
        }
    }
}
