//! Errors surfaced by the FAIR-BFL framework.

use std::fmt;

/// Errors produced while driving a FAIR-BFL run.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The ledger rejected a block the simulation produced.
    Chain(bfl_chain::ChainError),
    /// A cryptographic operation (key provisioning, verification) failed.
    Crypto(bfl_crypto::CryptoError),
    /// The run configuration is inconsistent.
    InvalidConfig(String),
    /// A round produced no usable gradients (for example, every upload
    /// failed verification or was discarded).
    EmptyRound {
        /// The communication round that failed.
        round: usize,
    },
}

impl CoreError {
    /// Shorthand for an [`CoreError::InvalidConfig`] with the given message.
    pub fn invalid(message: impl Into<String>) -> Self {
        CoreError::InvalidConfig(message.into())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Chain(e) => write!(f, "ledger error: {e}"),
            CoreError::Crypto(e) => write!(f, "crypto error: {e}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::EmptyRound { round } => {
                write!(f, "round {round} ended with no usable gradients")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<bfl_chain::ChainError> for CoreError {
    fn from(e: bfl_chain::ChainError) -> Self {
        CoreError::Chain(e)
    }
}

impl From<bfl_crypto::CryptoError> for CoreError {
    fn from(e: bfl_crypto::CryptoError) -> Self {
        CoreError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let chain_err: CoreError = bfl_chain::ChainError::EmptyChain.into();
        assert!(matches!(chain_err, CoreError::Chain(_)));
        assert!(!chain_err.to_string().is_empty());

        let crypto_err: CoreError = bfl_crypto::CryptoError::InvalidSignature.into();
        assert!(matches!(crypto_err, CoreError::Crypto(_)));

        assert!(CoreError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        assert!(CoreError::EmptyRound { round: 3 }.to_string().contains('3'));
    }
}
