//! Flexibility by design (paper Section 4.6).
//!
//! FAIR-BFL's five procedures can be composed dynamically: removing
//! Procedures I and IV leaves a pure blockchain; removing Procedures III
//! and V leaves pure federated learning; running all five is the full
//! coupled system. [`FlexibilityMode`] selects the composition and exposes
//! exactly which procedures are active, which both the simulation driver
//! and the delay model consult.

use serde::{Deserialize, Serialize};

/// The five procedures of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Procedure {
    /// Procedure-I: local learning and update.
    LocalUpdate,
    /// Procedure-II: uploading the gradient for mining.
    Upload,
    /// Procedure-III: exchanging gradients among miners.
    Exchange,
    /// Procedure-IV: computing global updates (aggregation + Algorithm 2).
    GlobalUpdate,
    /// Procedure-V: block mining and consensus.
    Mining,
}

/// Which subset of the procedures a deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FlexibilityMode {
    /// All five procedures: the full FAIR-BFL system.
    #[default]
    FullBfl,
    /// Procedures I, II and IV only — "equivalent to the pure FL algorithm"
    /// (the orange dashed rectangle of Figure 3).
    FlOnly,
    /// Procedures II, III and V only — "boils down to a pure blockchain
    /// algorithm" (the purple dashed rectangle of Figure 3).
    ChainOnly,
}

impl FlexibilityMode {
    /// The procedures active under this mode, in execution order.
    ///
    /// Returns a static slice: the composition per mode is a compile-time
    /// constant, and this accessor sits on the per-procedure, per-round
    /// path (`runs()` is consulted for every procedure of every round), so
    /// it must not allocate.
    pub fn active_procedures(&self) -> &'static [Procedure] {
        match self {
            FlexibilityMode::FullBfl => &[
                Procedure::LocalUpdate,
                Procedure::Upload,
                Procedure::Exchange,
                Procedure::GlobalUpdate,
                Procedure::Mining,
            ],
            FlexibilityMode::FlOnly => &[
                Procedure::LocalUpdate,
                Procedure::Upload,
                Procedure::GlobalUpdate,
            ],
            FlexibilityMode::ChainOnly => {
                &[Procedure::Upload, Procedure::Exchange, Procedure::Mining]
            }
        }
    }

    /// True when the given procedure runs under this mode.
    pub fn runs(&self, procedure: Procedure) -> bool {
        self.active_procedures().contains(&procedure)
    }

    /// True when the mode involves learning (Procedure I).
    pub fn learns(&self) -> bool {
        self.runs(Procedure::LocalUpdate)
    }

    /// True when the mode produces blocks (Procedure V).
    pub fn mines(&self) -> bool {
        self.runs(Procedure::Mining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bfl_runs_everything() {
        let mode = FlexibilityMode::FullBfl;
        assert_eq!(mode.active_procedures().len(), 5);
        assert!(mode.learns());
        assert!(mode.mines());
    }

    #[test]
    fn fl_only_drops_exchange_and_mining() {
        let mode = FlexibilityMode::FlOnly;
        assert!(mode.runs(Procedure::LocalUpdate));
        assert!(mode.runs(Procedure::GlobalUpdate));
        assert!(!mode.runs(Procedure::Exchange));
        assert!(!mode.runs(Procedure::Mining));
        assert!(mode.learns());
        assert!(!mode.mines());
    }

    #[test]
    fn chain_only_drops_learning_and_aggregation() {
        let mode = FlexibilityMode::ChainOnly;
        assert!(!mode.runs(Procedure::LocalUpdate));
        assert!(!mode.runs(Procedure::GlobalUpdate));
        assert!(mode.runs(Procedure::Upload));
        assert!(mode.runs(Procedure::Exchange));
        assert!(mode.runs(Procedure::Mining));
        assert!(!mode.learns());
        assert!(mode.mines());
    }

    #[test]
    fn default_is_full_bfl() {
        assert_eq!(FlexibilityMode::default(), FlexibilityMode::FullBfl);
    }
}
