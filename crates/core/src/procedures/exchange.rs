//! Procedure-III: exchanging gradients among miners (paper Section 4.3).
//!
//! Every miner broadcasts its own gradient set and appends any transaction
//! it has not seen from the others; thanks to the tight coupling of
//! Assumption 1 there is no queuing, and at the end of the procedure every
//! miner holds the identical complete gradient set `W^k_{r+1}`.

use crate::procedures::upload::{UploadOutcome, VerifiedUpload};
use std::collections::BTreeMap;

/// The result of the exchange: every miner's now-identical gradient set.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeOutcome {
    /// The merged gradient set, ordered by client id.
    pub merged: Vec<VerifiedUpload>,
    /// Per-miner copies after the exchange (identical by construction; kept
    /// for invariant checking).
    pub per_miner: BTreeMap<usize, Vec<u64>>,
}

impl ExchangeOutcome {
    /// True when every miner ended up with the same set of client ids — the
    /// paper's stated postcondition of Procedure-III.
    pub fn all_miners_agree(&self) -> bool {
        let mut iter = self.per_miner.values();
        match iter.next() {
            None => true,
            Some(first) => iter.all(|ids| ids == first),
        }
    }
}

/// Runs Procedure-III over the per-miner upload sets for `miners` miners.
///
/// Miners that received no uploads still participate in the exchange and
/// end up with the full merged set. Consumes the upload outcome: the
/// merge moves each accepted upload (and its parameter vector) exactly
/// once instead of deep-cloning the round's gradient set.
pub fn exchange_gradients(uploads: UploadOutcome, miners: usize) -> ExchangeOutcome {
    let merged = uploads.into_all_accepted();
    let ids: Vec<u64> = merged.iter().map(|u| u.client_id).collect();
    let per_miner: BTreeMap<usize, Vec<u64>> =
        (0..miners.max(1)).map(|m| (m, ids.clone())).collect();
    ExchangeOutcome { merged, per_miner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_net::Topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uploads(clients: usize, miners: usize) -> UploadOutcome {
        use bfl_fl::client::LocalUpdate;
        use bfl_ml::optimizer::LocalTrainingStats;
        let updates: Vec<LocalUpdate> = (0..clients as u64)
            .map(|id| LocalUpdate {
                client_id: id,
                params: vec![id as f64],
                forged: false,
                stats: LocalTrainingStats {
                    steps: 1,
                    final_epoch_loss: 0.1,
                    update_norm: 1.0,
                },
            })
            .collect();
        let topology = Topology::new(clients.max(1), miners);
        let mut rng = StdRng::seed_from_u64(5);
        crate::procedures::upload::upload_gradients(&updates, &topology, None, None, &mut rng)
    }

    #[test]
    fn all_miners_end_with_the_same_complete_set() {
        let outcome = exchange_gradients(uploads(20, 4), 4);
        assert_eq!(outcome.merged.len(), 20);
        assert!(outcome.all_miners_agree());
        assert_eq!(outcome.per_miner.len(), 4);
        for ids in outcome.per_miner.values() {
            assert_eq!(ids.len(), 20);
        }
        // Merged set is ordered by client id with no duplicates.
        assert!(outcome
            .merged
            .windows(2)
            .all(|w| w[0].client_id < w[1].client_id));
    }

    #[test]
    fn empty_round_is_handled() {
        let outcome = exchange_gradients(UploadOutcome::default(), 3);
        assert!(outcome.merged.is_empty());
        assert!(outcome.all_miners_agree());
    }

    #[test]
    fn single_miner_degenerate_case() {
        let outcome = exchange_gradients(uploads(5, 1), 1);
        assert_eq!(outcome.merged.len(), 5);
        assert!(outcome.all_miners_agree());
    }
}
