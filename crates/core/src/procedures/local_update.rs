//! Procedure-I: local learning and update (paper Section 4.1).
//!
//! Every selected client reads the global gradient from the latest block,
//! runs `E` epochs of mini-batch SGD on its own shard, and produces its
//! updated parameter vector. Clients are independent, so the pass runs in
//! parallel — one fork/join task per participant, with each worker
//! reusing a single scratch workspace across every client in its chunk,
//! so the batched GEMM engine stays allocation-free for the whole round.

use bfl_data::Dataset;
use bfl_fl::attack::AttackKind;
use bfl_fl::client::{Client, LocalUpdate};
use bfl_ml::model::ModelKind;
use bfl_ml::optimizer::{local_step_count, LocalTrainingConfig};
use bfl_ml::par;
use bfl_ml::tensor::Scratch;

/// Runs Procedure-I for the given participants.
///
/// `participants` are indices into `clients`. Returns one [`LocalUpdate`]
/// per participant, in the same order. Each client forges (or not)
/// according to its own [`Client::attack`] field.
pub fn run_local_updates(
    clients: &[Client],
    participants: &[usize],
    model: ModelKind,
    global_params: &[f64],
    train: &Dataset,
    local: &LocalTrainingConfig,
    round_seed: u64,
) -> Vec<LocalUpdate> {
    par::par_map_with(participants, 1, Scratch::new, |scratch, _, &idx| {
        clients[idx].local_update_with_scratch(
            model,
            global_params,
            &train.features,
            &train.labels,
            local,
            round_seed,
            scratch,
        )
    })
}

/// [`run_local_updates`] with explicit per-participant attack
/// designations (aligned with `participants`), overriding each client's
/// own attack field. The round driver uses this to designate per-round
/// attackers without cloning the client population.
#[allow(clippy::too_many_arguments)]
pub fn run_local_updates_with_attacks(
    clients: &[Client],
    participants: &[usize],
    attacks: &[Option<AttackKind>],
    model: ModelKind,
    global_params: &[f64],
    train: &Dataset,
    local: &LocalTrainingConfig,
    round_seed: u64,
) -> Vec<LocalUpdate> {
    assert_eq!(
        participants.len(),
        attacks.len(),
        "one attack designation per participant required"
    );
    par::par_map_with(participants, 1, Scratch::new, |scratch, position, &idx| {
        clients[idx].local_update_as(
            attacks[position],
            model,
            global_params,
            &train.features,
            &train.labels,
            local,
            round_seed,
            scratch,
        )
    })
}

/// The number of SGD steps taken by the slowest participant — the quantity
/// T_local is proportional to (Section 4.1: complexity O(E·|D_i|/B)).
pub fn max_local_steps(
    clients: &[Client],
    participants: &[usize],
    local: &LocalTrainingConfig,
) -> usize {
    participants
        .iter()
        .map(|&idx| local_step_count(clients[idx].sample_count(), local))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_data::synth_mnist::{SynthMnist, SynthMnistConfig};
    use bfl_fl::attack::AttackKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Dataset, Vec<Client>, ModelKind) {
        let gen = SynthMnist::new(SynthMnistConfig {
            train_samples: 120,
            test_samples: 10,
            noise_std: 0.05,
            max_translation: 1.0,
        });
        let data = gen.generate_split(120, &mut StdRng::seed_from_u64(1));
        let clients = vec![
            Client::honest(0, (0..40).collect()),
            Client::honest(1, (40..80).collect()),
            Client::malicious(2, (80..120).collect(), AttackKind::SignFlip),
        ];
        let kind = ModelKind::SoftmaxRegression {
            features: 784,
            classes: 10,
        };
        (data, clients, kind)
    }

    #[test]
    fn produces_one_update_per_participant_in_order() {
        let (data, clients, kind) = setup();
        let local = LocalTrainingConfig {
            epochs: 1,
            batch_size: 10,
            learning_rate: 0.05,
            proximal_mu: 0.0,
        };
        let global = vec![0.0; kind.num_params()];
        let updates = run_local_updates(&clients, &[0, 2], kind, &global, &data, &local, 99);
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].client_id, 0);
        assert_eq!(updates[1].client_id, 2);
        assert!(!updates[0].forged);
        assert!(updates[1].forged);
    }

    #[test]
    fn parallel_execution_matches_sequential_results() {
        let (data, clients, kind) = setup();
        let local = LocalTrainingConfig {
            epochs: 1,
            batch_size: 10,
            learning_rate: 0.05,
            proximal_mu: 0.0,
        };
        let global = vec![0.0; kind.num_params()];
        let parallel = run_local_updates(&clients, &[0, 1, 2], kind, &global, &data, &local, 5);
        let sequential: Vec<_> = [0usize, 1, 2]
            .iter()
            .map(|&i| {
                clients[i].local_update(kind, &global, &data.features, &data.labels, &local, 5)
            })
            .collect();
        for (p, s) in parallel.iter().zip(sequential.iter()) {
            assert_eq!(p.params, s.params);
        }
    }

    #[test]
    fn attack_overrides_replace_the_clients_own_designation() {
        let (data, clients, kind) = setup();
        let local = LocalTrainingConfig {
            epochs: 1,
            batch_size: 10,
            learning_rate: 0.05,
            proximal_mu: 0.0,
        };
        let global = vec![0.0; kind.num_params()];
        // Client 0 is honest but gets designated; client 2 is malicious
        // but its designation is cleared for this round.
        let updates = run_local_updates_with_attacks(
            &clients,
            &[0, 2],
            &[Some(AttackKind::SignFlip), None],
            kind,
            &global,
            &data,
            &local,
            7,
        );
        assert!(updates[0].forged);
        assert!(!updates[1].forged);
        // The honest result matches what the client produces on its own.
        let own = clients[2].local_update(kind, &global, &data.features, &data.labels, &local, 7);
        assert_eq!(updates[1].stats.update_norm, own.stats.update_norm);
    }

    #[test]
    fn max_steps_uses_the_largest_shard() {
        let (_, clients, _) = setup();
        let local = LocalTrainingConfig {
            epochs: 5,
            batch_size: 10,
            ..Default::default()
        };
        // Every shard has 40 samples -> 4 batches x 5 epochs = 20 steps.
        assert_eq!(max_local_steps(&clients, &[0, 1, 2], &local), 20);
        assert_eq!(max_local_steps(&clients, &[], &local), 0);
    }
}
