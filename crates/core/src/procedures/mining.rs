//! Procedure-V: block mining and consensus (paper Section 4.5).
//!
//! The winning miner packs the round's global gradient (Assumption 2: the
//! block's *only* gradient payload) together with the reward list into a
//! new block, solves the PoW puzzle, and broadcasts; every miner verifies
//! and appends, so all replicas stay identical and no forks occur.

use crate::error::CoreError;
use crate::reward::{reward_transactions, RewardEntry};
use bfl_chain::consensus::{ConsensusOutcome, RoundConsensus};
use bfl_chain::Transaction;
use bfl_ml::gradient;
use rand::Rng;

/// Builds the round's transaction list: the single global-gradient
/// transaction plus one reward transaction per rewarded client.
pub fn build_block_transactions(
    miner_id: u64,
    round: u64,
    global_params: &[f64],
    rewards: &[RewardEntry],
) -> Vec<Transaction> {
    let mut transactions = vec![Transaction::global_gradient(
        miner_id,
        round,
        gradient::to_bytes(global_params),
    )];
    transactions.extend(reward_transactions(rewards, miner_id, round));
    transactions
}

/// Runs Procedure-V: seals one block carrying the global gradient and the
/// reward list through the synchronized consensus group.
pub fn mine_round<R: Rng + ?Sized>(
    consensus: &mut RoundConsensus,
    round: u64,
    global_params: &[f64],
    rewards: &[RewardEntry],
    timestamp_ms: u64,
    rng: &mut R,
) -> Result<ConsensusOutcome, CoreError> {
    // The transaction list is identical regardless of which miner wins, so
    // build it for the eventual winner after the competition is sampled
    // inside `seal_round`; the miner id recorded on the transactions is the
    // consensus group's first miner (the submitter field is bookkeeping, the
    // winner is recorded in the block header).
    let submitter = consensus.miners[0].id;
    let transactions = build_block_transactions(submitter, round, global_params, rewards);
    consensus
        .seal_round(transactions, timestamp_ms, rng)
        .map_err(CoreError::from)
}

/// Procedure-V for one mesh component: seals the component's block among
/// `members` only (see [`RoundConsensus::seal_round_among`]). Used by the
/// event engine when a crash or partition leaves part of the mesh
/// unreachable; the rest keeps its own tip until the fork heals.
pub fn mine_round_among<R: Rng + ?Sized>(
    consensus: &mut RoundConsensus,
    members: &[usize],
    round: u64,
    global_params: &[f64],
    rewards: &[RewardEntry],
    timestamp_ms: u64,
    rng: &mut R,
) -> Result<ConsensusOutcome, CoreError> {
    let submitter = consensus.miners[members[0]].id;
    let transactions = build_block_transactions(submitter, round, global_params, rewards);
    consensus
        .seal_round_among(members, transactions, timestamp_ms, rng)
        .map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::build_reward_list;
    use bfl_chain::miner::Miner;
    use bfl_chain::pow::PowConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn consensus(m: usize) -> RoundConsensus {
        let miners = (0..m as u64).map(|id| Miner::new(id, 1000.0)).collect();
        RoundConsensus::new(miners, PowConfig::new(8))
    }

    #[test]
    fn transactions_contain_global_gradient_and_rewards() {
        let rewards = build_reward_list(&[(1, 0.4), (2, 0.6)], 100.0);
        let txs = build_block_transactions(0, 7, &[1.0, 2.0, 3.0], &rewards);
        assert_eq!(txs.len(), 3);
        assert!(txs[0].is_gradient());
        assert_eq!(txs[0].round(), 7);
        assert!(!txs[1].is_gradient());
    }

    #[test]
    fn mined_block_records_the_global_gradient_readably() {
        let mut group = consensus(2);
        let mut rng = StdRng::seed_from_u64(1);
        let params = vec![0.5, -1.5, 2.25];
        let rewards = build_reward_list(&[(3, 1.0)], 10.0);
        let outcome = mine_round(&mut group, 1, &params, &rewards, 1000, &mut rng).unwrap();
        assert_eq!(outcome.height, 1);

        let chain = group.canonical_chain();
        let (round, payload) = chain.latest_global_gradient().unwrap();
        assert_eq!(round, 1);
        assert_eq!(gradient::from_bytes(&payload).unwrap(), params);
        // Rewards are on chain too.
        assert_eq!(chain.reward_totals()[&3], 10_000);
    }

    #[test]
    fn repeated_rounds_never_fork_and_never_produce_empty_blocks() {
        let mut group = consensus(3);
        let mut rng = StdRng::seed_from_u64(2);
        for round in 1..=5u64 {
            let params = vec![round as f64; 4];
            mine_round(&mut group, round, &params, &[], round * 500, &mut rng).unwrap();
            assert_eq!(group.agreed_height(), Some(round));
        }
        assert_eq!(group.canonical_chain().empty_block_count(), 0);
        group.canonical_chain().validate_all().unwrap();
    }
}
