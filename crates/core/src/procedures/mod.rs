//! The five procedures of Algorithm 1, one module each.
//!
//! Each procedure is a pure function over explicit inputs so it can be
//! tested in isolation and composed freely by [`crate::simulation`] (and
//! recomposed by the flexibility modes, which simply skip the procedures
//! they do not need).

pub mod exchange;
pub mod global_update;
pub mod local_update;
pub mod mining;
pub mod upload;
