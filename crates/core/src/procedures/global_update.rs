//! Procedure-IV: computing global updates (paper Section 4.4).
//!
//! The miners first compute the round's anchor gradient (the simple
//! average of Algorithm 1 line 24 under the default mean anchor), then run
//! Algorithm 2 on the gradient set to identify contributions and build the
//! reward list, and finally produce the round's effective global
//! parameters — with Equation 1's fair (contribution-weighted) aggregation
//! by default, or plain averaging when the fair-aggregation ablation is
//! disabled. Every policy choice arrives through [`GlobalUpdatePolicy`],
//! the Scenario API's seam for this procedure.

use crate::aggregation::{contribution_weights, WEIGHT_FLOOR};
use crate::contribution::{identify_contributions_with, ContributionReport};
use crate::policy::{AggregationAnchor, RewardPolicy};
use crate::procedures::upload::VerifiedUpload;
use crate::strategy::LowContributionStrategy;
use bfl_cluster::{ClusteringAlgorithm, DistanceMetric};
use bfl_ml::gradient::weighted_average_refs;

/// The policy bundle Procedure-IV runs under — one round's view of the
/// scenario configuration plus the pluggable reward policy.
pub struct GlobalUpdatePolicy<'a> {
    /// Clustering backend for Algorithm 2.
    pub clustering: &'a ClusteringAlgorithm,
    /// Distance metric for clustering and θ scores.
    pub metric: DistanceMetric,
    /// Keep or discard low contributors.
    pub strategy: LowContributionStrategy,
    /// Equation 1 fair aggregation (`true`) or plain averaging (`false`).
    pub fair_aggregation: bool,
    /// The anchor gradient Algorithm 2 measures against.
    pub anchor: AggregationAnchor,
    /// The communication round (1-based), forwarded to the reward policy.
    pub round: usize,
    /// How θ scores become paid rewards.
    pub reward: &'a dyn RewardPolicy,
}

/// The result of Procedure-IV.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalUpdateOutcome {
    /// Algorithm 2's report (contribution labels, rewards, anchor gradient).
    pub report: ContributionReport,
    /// The parameters recorded in the block and used by clients next round.
    pub global_params: Vec<f64>,
    /// Clients whose gradients were excluded from the aggregation.
    pub dropped: Vec<u64>,
}

/// Runs Procedure-IV over the merged gradient set.
pub fn compute_global_update(
    merged: &[VerifiedUpload],
    policy: &GlobalUpdatePolicy<'_>,
) -> GlobalUpdateOutcome {
    assert!(!merged.is_empty(), "Procedure-IV needs at least one upload");
    // Borrow the uploads straight out of the exchange result — Algorithm 2
    // and Equation 1 below never need their own copies.
    let uploads: Vec<(u64, &[f64])> = merged
        .iter()
        .map(|u| (u.client_id, u.params.as_slice()))
        .collect();

    let report = identify_contributions_with(
        &uploads,
        policy.clustering,
        policy.metric,
        policy.strategy,
        policy.anchor,
        policy.round,
        policy.reward,
    );
    let dropped = report.dropped_clients(policy.strategy);

    // Determine which uploads participate in the final aggregation.
    let kept: Vec<&(u64, &[f64])> = uploads
        .iter()
        .filter(|(id, _)| !dropped.contains(id))
        .collect();
    let kept: Vec<&(u64, &[f64])> = if kept.is_empty() {
        uploads.iter().collect()
    } else {
        kept
    };

    let global_params = if policy.fair_aggregation {
        // Equation 1: weights from the θ scores of the kept clients.
        let scores: Vec<f64> = kept
            .iter()
            .map(|(id, _)| {
                report
                    .high_contribution
                    .iter()
                    .find(|(hid, _)| hid == id)
                    .map(|(_, theta)| *theta)
                    .unwrap_or(WEIGHT_FLOOR)
            })
            .collect();
        let weights = contribution_weights(&scores);
        let vectors: Vec<&[f64]> = kept.iter().map(|(_, g)| *g).collect();
        weighted_average_refs(&vectors, &weights)
    } else {
        report.effective_global.clone()
    };

    GlobalUpdateOutcome {
        report,
        global_params,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ProportionalReward;

    fn upload(client_id: u64, params: Vec<f64>, forged: bool) -> VerifiedUpload {
        VerifiedUpload {
            client_id,
            miner: 0,
            params,
            forged,
        }
    }

    fn honest_set() -> Vec<VerifiedUpload> {
        (0..6)
            .map(|i| {
                let t = i as f64 * 0.01;
                upload(i, vec![1.0 + t, 0.5 - t, 0.25], false)
            })
            .collect()
    }

    fn dbscan() -> ClusteringAlgorithm {
        ClusteringAlgorithm::default_dbscan()
    }

    /// The paper-default policy over the given clustering backend.
    fn policy<'a>(
        clustering: &'a ClusteringAlgorithm,
        strategy: LowContributionStrategy,
        fair_aggregation: bool,
        reward: &'a ProportionalReward,
    ) -> GlobalUpdatePolicy<'a> {
        GlobalUpdatePolicy {
            clustering,
            metric: DistanceMetric::Cosine,
            strategy,
            fair_aggregation,
            anchor: AggregationAnchor::Mean,
            round: 1,
            reward,
        }
    }

    const BASE_100: ProportionalReward = ProportionalReward { base: 100.0 };

    #[test]
    #[should_panic(expected = "at least one upload")]
    fn empty_merged_set_panics() {
        let clustering = dbscan();
        let _ = compute_global_update(
            &[],
            &policy(&clustering, LowContributionStrategy::Keep, true, &BASE_100),
        );
    }

    #[test]
    fn honest_round_keeps_everyone_and_aggregates_sensibly() {
        let merged = honest_set();
        let clustering = dbscan();
        let outcome = compute_global_update(
            &merged,
            &policy(&clustering, LowContributionStrategy::Keep, true, &BASE_100),
        );
        assert!(outcome.dropped.is_empty());
        assert_eq!(outcome.report.high_contribution.len(), 6);
        assert_eq!(outcome.global_params.len(), 3);
        // The aggregate lies inside the convex hull of the uploads.
        assert!(outcome.global_params[0] > 0.9 && outcome.global_params[0] < 1.1);
    }

    #[test]
    fn forged_uploads_are_dropped_under_discard_and_aggregation_recovers() {
        let mut merged = honest_set();
        merged.push(upload(10, vec![-1.0, -0.5, -0.25], true));
        merged.push(upload(11, vec![-1.02, -0.49, -0.26], true));

        let clustering = dbscan();
        let keep = compute_global_update(
            &merged,
            &policy(&clustering, LowContributionStrategy::Keep, true, &BASE_100),
        );
        let discard = compute_global_update(
            &merged,
            &policy(
                &clustering,
                LowContributionStrategy::Discard,
                true,
                &BASE_100,
            ),
        );
        assert!(keep.dropped.is_empty());
        assert_eq!(discard.dropped, vec![10, 11]);
        // Discarding the forged gradients pulls the aggregate back towards
        // the honest direction.
        assert!(discard.global_params[0] > keep.global_params[0]);
        assert!(discard.global_params[0] > 0.9);
    }

    #[test]
    fn fair_aggregation_differs_from_simple_average_when_contributions_differ() {
        // Two honest groups at different distances from the mean.
        let merged = vec![
            upload(0, vec![1.0, 0.0], false),
            upload(1, vec![1.0, 0.05], false),
            upload(2, vec![0.8, 0.6], false),
        ];
        let clustering = ClusteringAlgorithm::Agglomerative {
            distance_threshold: 2.0,
        };
        let fair = compute_global_update(
            &merged,
            &policy(&clustering, LowContributionStrategy::Keep, true, &BASE_100),
        );
        let simple = compute_global_update(
            &merged,
            &policy(&clustering, LowContributionStrategy::Keep, false, &BASE_100),
        );
        assert_ne!(fair.global_params, simple.global_params);
        // Both remain within the hull.
        for params in [&fair.global_params, &simple.global_params] {
            assert!(params[0] <= 1.0 + 1e-9 && params[0] >= 0.8 - 1e-9);
        }
    }

    #[test]
    fn rewards_cover_exactly_the_high_contributors() {
        let mut merged = honest_set();
        merged.push(upload(20, vec![-1.0, -0.5, -0.25], true));
        let clustering = dbscan();
        let reward = ProportionalReward { base: 50.0 };
        let outcome = compute_global_update(
            &merged,
            &policy(&clustering, LowContributionStrategy::Discard, true, &reward),
        );
        let rewarded: Vec<u64> = outcome.report.rewards.iter().map(|r| r.client_id).collect();
        assert_eq!(rewarded.len(), 6);
        assert!(!rewarded.contains(&20));
        let total: u64 = outcome.report.rewards.iter().map(|r| r.amount_milli).sum();
        assert!((total as i64 - 50_000).abs() <= 6);
    }

    #[test]
    fn median_anchor_drops_a_mean_corrupting_attacker() {
        // Six honest uploads plus one -8x-scaled deviating attacker; the
        // median anchor isolates it where the mean anchor cannot.
        let mut merged = honest_set();
        merged.push(upload(30, vec![-8.4, -6.4, 0.4], true));
        let clustering = dbscan();
        let mut robust = policy(
            &clustering,
            LowContributionStrategy::Discard,
            true,
            &BASE_100,
        );
        robust.anchor = AggregationAnchor::Median;
        let outcome = compute_global_update(&merged, &robust);
        assert_eq!(outcome.dropped, vec![30]);
        assert!(outcome.global_params[0] > 0.9);
    }
}
