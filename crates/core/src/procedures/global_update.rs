//! Procedure-IV: computing global updates (paper Section 4.4).
//!
//! The miners first compute the simple-average global gradient (Algorithm 1
//! line 24), then run Algorithm 2 on the gradient set to identify
//! contributions and build the reward list, and finally produce the
//! round's effective global parameters — with Equation 1's fair
//! (contribution-weighted) aggregation by default, or plain averaging when
//! the fair-aggregation ablation is disabled.

use crate::aggregation::{contribution_weights, WEIGHT_FLOOR};
use crate::contribution::{identify_contributions_refs, ContributionReport};
use crate::procedures::upload::VerifiedUpload;
use crate::strategy::LowContributionStrategy;
use bfl_cluster::{ClusteringAlgorithm, DistanceMetric};
use bfl_ml::gradient::weighted_average_refs;

/// The result of Procedure-IV.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalUpdateOutcome {
    /// Algorithm 2's report (contribution labels, rewards, global gradient).
    pub report: ContributionReport,
    /// The parameters recorded in the block and used by clients next round.
    pub global_params: Vec<f64>,
    /// Clients whose gradients were excluded from the aggregation.
    pub dropped: Vec<u64>,
}

/// Runs Procedure-IV over the merged gradient set.
pub fn compute_global_update(
    merged: &[VerifiedUpload],
    clustering: &ClusteringAlgorithm,
    metric: DistanceMetric,
    strategy: LowContributionStrategy,
    fair_aggregation: bool,
    reward_base: f64,
) -> GlobalUpdateOutcome {
    assert!(!merged.is_empty(), "Procedure-IV needs at least one upload");
    // Borrow the uploads straight out of the exchange result — Algorithm 2
    // and Equation 1 below never need their own copies.
    let uploads: Vec<(u64, &[f64])> = merged
        .iter()
        .map(|u| (u.client_id, u.params.as_slice()))
        .collect();

    let report = identify_contributions_refs(&uploads, clustering, metric, strategy, reward_base);
    let dropped = report.dropped_clients(strategy);

    // Determine which uploads participate in the final aggregation.
    let kept: Vec<&(u64, &[f64])> = uploads
        .iter()
        .filter(|(id, _)| !dropped.contains(id))
        .collect();
    let kept: Vec<&(u64, &[f64])> = if kept.is_empty() {
        uploads.iter().collect()
    } else {
        kept
    };

    let global_params = if fair_aggregation {
        // Equation 1: weights from the θ scores of the kept clients.
        let scores: Vec<f64> = kept
            .iter()
            .map(|(id, _)| {
                report
                    .high_contribution
                    .iter()
                    .find(|(hid, _)| hid == id)
                    .map(|(_, theta)| *theta)
                    .unwrap_or(WEIGHT_FLOOR)
            })
            .collect();
        let weights = contribution_weights(&scores);
        let vectors: Vec<&[f64]> = kept.iter().map(|(_, g)| *g).collect();
        weighted_average_refs(&vectors, &weights)
    } else {
        report.effective_global.clone()
    };

    GlobalUpdateOutcome {
        report,
        global_params,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(client_id: u64, params: Vec<f64>, forged: bool) -> VerifiedUpload {
        VerifiedUpload {
            client_id,
            miner: 0,
            params,
            forged,
        }
    }

    fn honest_set() -> Vec<VerifiedUpload> {
        (0..6)
            .map(|i| {
                let t = i as f64 * 0.01;
                upload(i, vec![1.0 + t, 0.5 - t, 0.25], false)
            })
            .collect()
    }

    fn dbscan() -> ClusteringAlgorithm {
        ClusteringAlgorithm::default_dbscan()
    }

    #[test]
    #[should_panic(expected = "at least one upload")]
    fn empty_merged_set_panics() {
        let _ = compute_global_update(
            &[],
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            true,
            100.0,
        );
    }

    #[test]
    fn honest_round_keeps_everyone_and_aggregates_sensibly() {
        let merged = honest_set();
        let outcome = compute_global_update(
            &merged,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            true,
            100.0,
        );
        assert!(outcome.dropped.is_empty());
        assert_eq!(outcome.report.high_contribution.len(), 6);
        assert_eq!(outcome.global_params.len(), 3);
        // The aggregate lies inside the convex hull of the uploads.
        assert!(outcome.global_params[0] > 0.9 && outcome.global_params[0] < 1.1);
    }

    #[test]
    fn forged_uploads_are_dropped_under_discard_and_aggregation_recovers() {
        let mut merged = honest_set();
        merged.push(upload(10, vec![-1.0, -0.5, -0.25], true));
        merged.push(upload(11, vec![-1.02, -0.49, -0.26], true));

        let keep = compute_global_update(
            &merged,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            true,
            100.0,
        );
        let discard = compute_global_update(
            &merged,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Discard,
            true,
            100.0,
        );
        assert!(keep.dropped.is_empty());
        assert_eq!(discard.dropped, vec![10, 11]);
        // Discarding the forged gradients pulls the aggregate back towards
        // the honest direction.
        assert!(discard.global_params[0] > keep.global_params[0]);
        assert!(discard.global_params[0] > 0.9);
    }

    #[test]
    fn fair_aggregation_differs_from_simple_average_when_contributions_differ() {
        // Two honest groups at different distances from the mean.
        let merged = vec![
            upload(0, vec![1.0, 0.0], false),
            upload(1, vec![1.0, 0.05], false),
            upload(2, vec![0.8, 0.6], false),
        ];
        let fair = compute_global_update(
            &merged,
            &ClusteringAlgorithm::Agglomerative {
                distance_threshold: 2.0,
            },
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            true,
            100.0,
        );
        let simple = compute_global_update(
            &merged,
            &ClusteringAlgorithm::Agglomerative {
                distance_threshold: 2.0,
            },
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            false,
            100.0,
        );
        assert_ne!(fair.global_params, simple.global_params);
        // Both remain within the hull.
        for params in [&fair.global_params, &simple.global_params] {
            assert!(params[0] <= 1.0 + 1e-9 && params[0] >= 0.8 - 1e-9);
        }
    }

    #[test]
    fn rewards_cover_exactly_the_high_contributors() {
        let mut merged = honest_set();
        merged.push(upload(20, vec![-1.0, -0.5, -0.25], true));
        let outcome = compute_global_update(
            &merged,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Discard,
            true,
            50.0,
        );
        let rewarded: Vec<u64> = outcome.report.rewards.iter().map(|r| r.client_id).collect();
        assert_eq!(rewarded.len(), 6);
        assert!(!rewarded.contains(&20));
        let total: u64 = outcome.report.rewards.iter().map(|r| r.amount_milli).sum();
        assert!((total as i64 - 50_000).abs() <= 6);
    }
}
