//! Procedure-II: uploading the gradient for mining (paper Section 4.2).
//!
//! Each selected client associates with a uniformly random miner and
//! uploads its updated gradient, signed with its RSA private key; the miner
//! verifies the signature against the registered public key before
//! accepting the transaction (Figure 2). Uploads that fail verification are
//! rejected and never enter the round's gradient set.

use bfl_crypto::signature::sign_message;
use bfl_crypto::{KeyStore, RsaKeyPair};
use bfl_fl::client::LocalUpdate;
use bfl_ml::gradient;
use bfl_net::Topology;
use rand::Rng;
use std::collections::BTreeMap;

/// An upload accepted by a miner after signature verification.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedUpload {
    /// The uploading client.
    pub client_id: u64,
    /// The miner the client associated with.
    pub miner: usize,
    /// The uploaded parameter vector.
    pub params: Vec<f64>,
    /// Whether the upload was forged by a malicious client (ground truth,
    /// carried only for experiment bookkeeping — the miners cannot see it).
    pub forged: bool,
}

/// Outcome of Procedure-II for one round.
#[derive(Debug, Clone, Default)]
pub struct UploadOutcome {
    /// Uploads that passed verification, grouped per miner.
    pub per_miner: BTreeMap<usize, Vec<VerifiedUpload>>,
    /// Client ids whose uploads failed signature verification.
    pub rejected: Vec<u64>,
}

impl UploadOutcome {
    /// All accepted uploads across miners, ordered by client id.
    pub fn all_accepted(&self) -> Vec<VerifiedUpload> {
        let mut all: Vec<VerifiedUpload> = self
            .per_miner
            .values()
            .flat_map(|uploads| uploads.iter().cloned())
            .collect();
        all.sort_by_key(|u| u.client_id);
        all
    }

    /// Number of accepted uploads.
    pub fn accepted_count(&self) -> usize {
        self.per_miner.values().map(Vec::len).sum()
    }
}

/// Runs Procedure-II: associates every update with a random miner, signs
/// the payload with the client's key, verifies at the miner, and groups the
/// accepted uploads per miner.
///
/// When `keys`/`keypairs` are `None` signature handling is skipped (the
/// "verification off" ablation) and every upload is accepted.
pub fn upload_gradients<R: Rng + ?Sized>(
    updates: &[LocalUpdate],
    topology: &Topology,
    keypairs: Option<&BTreeMap<u64, RsaKeyPair>>,
    keystore: Option<&KeyStore>,
    rng: &mut R,
) -> UploadOutcome {
    let client_ids: Vec<u64> = updates.iter().map(|u| u.client_id).collect();
    let assignment = topology.associate_clients(&client_ids, rng);

    let mut outcome = UploadOutcome::default();
    for (update, &miner) in updates.iter().zip(assignment.iter()) {
        let accepted = match (keypairs, keystore) {
            (Some(pairs), Some(store)) => match pairs.get(&update.client_id) {
                Some(pair) => {
                    let payload = gradient::to_bytes(&update.params);
                    let envelope = sign_message(update.client_id, &payload, &pair.private);
                    store.verify(&envelope).is_ok()
                }
                None => false,
            },
            _ => true,
        };
        if accepted {
            outcome
                .per_miner
                .entry(miner)
                .or_default()
                .push(VerifiedUpload {
                    client_id: update.client_id,
                    miner,
                    params: update.params.clone(),
                    forged: update.forged,
                });
        } else {
            outcome.rejected.push(update.client_id);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_ml::optimizer::LocalTrainingStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn update(client_id: u64) -> LocalUpdate {
        LocalUpdate {
            client_id,
            params: vec![client_id as f64, 1.0, 2.0],
            forged: false,
            stats: LocalTrainingStats {
                steps: 1,
                final_epoch_loss: 0.5,
                update_norm: 1.0,
            },
        }
    }

    #[test]
    fn unsigned_mode_accepts_everything() {
        let updates: Vec<LocalUpdate> = (0..5).map(update).collect();
        let topology = Topology::new(100, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = upload_gradients(&updates, &topology, None, None, &mut rng);
        assert_eq!(outcome.accepted_count(), 5);
        assert!(outcome.rejected.is_empty());
        let all = outcome.all_accepted();
        assert_eq!(all.len(), 5);
        // Ordered by client id and assigned to valid miners.
        assert!(all.windows(2).all(|w| w[0].client_id < w[1].client_id));
        assert!(all.iter().all(|u| u.miner < 3));
    }

    #[test]
    fn signed_mode_accepts_registered_clients_and_rejects_unknown() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = store.provision(&mut rng, &[0, 1, 2], 256).unwrap();

        // Client 4 has no registered key; its upload must be rejected.
        let updates: Vec<LocalUpdate> = vec![update(0), update(1), update(2), update(4)];
        let topology = Topology::new(100, 2);
        let outcome = upload_gradients(&updates, &topology, Some(&pairs), Some(&store), &mut rng);
        assert_eq!(outcome.accepted_count(), 3);
        assert_eq!(outcome.rejected, vec![4]);
    }

    #[test]
    fn uploads_spread_across_miners() {
        let updates: Vec<LocalUpdate> = (0..200).map(update).collect();
        let topology = Topology::new(200, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = upload_gradients(&updates, &topology, None, None, &mut rng);
        assert_eq!(
            outcome.per_miner.len(),
            4,
            "all miners should receive some uploads"
        );
        for uploads in outcome.per_miner.values() {
            assert!(uploads.len() > 20);
        }
    }
}
