//! Procedure-II: uploading the gradient for mining (paper Section 4.2).
//!
//! Each selected client associates with a uniformly random miner and
//! uploads its updated gradient, signed with its RSA private key; the miner
//! verifies the signature against the registered public key before
//! accepting the transaction (Figure 2). Uploads that fail verification are
//! rejected and never enter the round's gradient set.
//!
//! Signing and verification are independent across uploads (each client
//! signs with its own key; each miner checks against the registered
//! public key), so the round's crypto fans out across the machine's
//! cores through [`bfl_ml::par`]: miner association is drawn from the
//! round RNG *before* the fan-out and results are stitched back in
//! upload order, so a parallel round is bit-identical to a serial one.

use bfl_crypto::signature::sign_message;
use bfl_crypto::{BatchVerifier, KeyStore, RsaKeyPair};
use bfl_fl::client::LocalUpdate;
use bfl_ml::gradient;
use bfl_ml::par;
use bfl_net::Topology;
use rand::Rng;
use std::collections::BTreeMap;

/// An upload accepted by a miner after signature verification.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedUpload {
    /// The uploading client.
    pub client_id: u64,
    /// The miner the client associated with.
    pub miner: usize,
    /// The uploaded parameter vector.
    pub params: Vec<f64>,
    /// Whether the upload was forged by a malicious client (ground truth,
    /// carried only for experiment bookkeeping — the miners cannot see it).
    pub forged: bool,
}

/// Outcome of Procedure-II for one round.
#[derive(Debug, Clone, Default)]
pub struct UploadOutcome {
    /// Uploads that passed verification, grouped per miner.
    pub per_miner: BTreeMap<usize, Vec<VerifiedUpload>>,
    /// Client ids whose uploads failed signature verification.
    pub rejected: Vec<u64>,
}

impl UploadOutcome {
    /// All accepted uploads across miners, ordered by client id.
    ///
    /// Consumes the outcome so the merge moves the uploads (with their
    /// full parameter vectors) instead of deep-cloning every one.
    pub fn into_all_accepted(self) -> Vec<VerifiedUpload> {
        let mut all: Vec<VerifiedUpload> = self.per_miner.into_values().flatten().collect();
        all.sort_by_key(|u| u.client_id);
        all
    }

    /// Number of accepted uploads.
    pub fn accepted_count(&self) -> usize {
        self.per_miner.values().map(Vec::len).sum()
    }
}

/// Per-upload verdict of the signing/verification fan-out, in the same
/// order as the round's updates.
enum Verdict {
    Accepted(VerifiedUpload),
    Rejected(u64),
}

/// Runs Procedure-II: associates every update with a random miner, signs
/// the payload with the client's key, verifies at the miner, and groups the
/// accepted uploads per miner.
///
/// When `keys`/`keypairs` are `None` signature handling is skipped (the
/// "verification off" ablation) and every upload is accepted.
pub fn upload_gradients<R: Rng + ?Sized>(
    updates: &[LocalUpdate],
    topology: &Topology,
    keypairs: Option<&BTreeMap<u64, RsaKeyPair>>,
    keystore: Option<&KeyStore>,
    rng: &mut R,
) -> UploadOutcome {
    let client_ids: Vec<u64> = updates.iter().map(|u| u.client_id).collect();
    let assignment = topology.associate_clients(&client_ids, rng);
    let items: Vec<(&LocalUpdate, usize)> =
        updates.iter().zip(assignment.iter().copied()).collect();

    let verdicts: Vec<Verdict> = match (keypairs, keystore) {
        (Some(pairs), Some(store)) => {
            // One RSA sign plus one verify per upload: the round's serial
            // chain of modexps becomes a parallel batch. Each task only
            // reads shared state (keys, store), and results come back in
            // input order, so acceptance, rejection order and per-miner
            // grouping match the serial loop exactly. Each worker carries
            // its own `BatchVerifier`, amortising one Montgomery workspace
            // across every upload it checks — per-upload decisions are
            // identical to `store.verify`, so sharing the workspace cannot
            // change outcomes.
            par::par_map_with(
                &items,
                1,
                BatchVerifier::new,
                |verifier, _, &(update, miner)| match pairs.get(&update.client_id) {
                    Some(pair) => {
                        let payload = gradient::to_bytes(&update.params);
                        let envelope = sign_message(update.client_id, &payload, &pair.private);
                        if store.verify_cached(&envelope, verifier).is_ok() {
                            Verdict::Accepted(verified(update, miner))
                        } else {
                            Verdict::Rejected(update.client_id)
                        }
                    }
                    None => Verdict::Rejected(update.client_id),
                },
            )
        }
        // Signature handling off: nothing to compute per upload, so the
        // fan-out would only pay thread overhead.
        _ => items
            .iter()
            .map(|&(update, miner)| Verdict::Accepted(verified(update, miner)))
            .collect(),
    };

    let mut outcome = UploadOutcome::default();
    for verdict in verdicts {
        match verdict {
            Verdict::Accepted(upload) => outcome
                .per_miner
                .entry(upload.miner)
                .or_default()
                .push(upload),
            Verdict::Rejected(client_id) => outcome.rejected.push(client_id),
        }
    }
    outcome
}

fn verified(update: &LocalUpdate, miner: usize) -> VerifiedUpload {
    VerifiedUpload {
        client_id: update.client_id,
        miner,
        params: update.params.clone(),
        forged: update.forged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_ml::optimizer::LocalTrainingStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn update(client_id: u64) -> LocalUpdate {
        LocalUpdate {
            client_id,
            params: vec![client_id as f64, 1.0, 2.0],
            forged: false,
            stats: LocalTrainingStats {
                steps: 1,
                final_epoch_loss: 0.5,
                update_norm: 1.0,
            },
        }
    }

    #[test]
    fn unsigned_mode_accepts_everything() {
        let updates: Vec<LocalUpdate> = (0..5).map(update).collect();
        let topology = Topology::new(100, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = upload_gradients(&updates, &topology, None, None, &mut rng);
        assert_eq!(outcome.accepted_count(), 5);
        assert!(outcome.rejected.is_empty());
        let all = outcome.into_all_accepted();
        assert_eq!(all.len(), 5);
        // Ordered by client id and assigned to valid miners.
        assert!(all.windows(2).all(|w| w[0].client_id < w[1].client_id));
        assert!(all.iter().all(|u| u.miner < 3));
    }

    #[test]
    fn signed_mode_accepts_registered_clients_and_rejects_unknown() {
        let mut store = KeyStore::new();
        let mut rng = StdRng::seed_from_u64(2);
        let pairs = store.provision(&mut rng, &[0, 1, 2], 256).unwrap();

        // Client 4 has no registered key; its upload must be rejected.
        let updates: Vec<LocalUpdate> = vec![update(0), update(1), update(2), update(4)];
        let topology = Topology::new(100, 2);
        let outcome = upload_gradients(&updates, &topology, Some(&pairs), Some(&store), &mut rng);
        assert_eq!(outcome.accepted_count(), 3);
        assert_eq!(outcome.rejected, vec![4]);
    }

    #[test]
    fn parallel_signed_round_matches_unsigned_grouping() {
        // The signed (parallel) and unsigned (serial) paths must produce
        // the same association and ordering for the same RNG stream —
        // the fan-out may not reorder or drop accepted uploads.
        let mut store = KeyStore::new();
        let mut key_rng = StdRng::seed_from_u64(7);
        let ids: Vec<u64> = (0..12).collect();
        let pairs = store.provision(&mut key_rng, &ids, 256).unwrap();
        let updates: Vec<LocalUpdate> = ids.iter().map(|&id| update(id)).collect();
        let topology = Topology::new(12, 3);

        let mut rng_signed = StdRng::seed_from_u64(42);
        let signed = upload_gradients(
            &updates,
            &topology,
            Some(&pairs),
            Some(&store),
            &mut rng_signed,
        );
        let mut rng_unsigned = StdRng::seed_from_u64(42);
        let unsigned = upload_gradients(&updates, &topology, None, None, &mut rng_unsigned);

        assert!(signed.rejected.is_empty());
        assert_eq!(signed.per_miner.len(), unsigned.per_miner.len());
        for (miner, uploads) in &signed.per_miner {
            assert_eq!(uploads, &unsigned.per_miner[miner], "miner {miner}");
        }
    }

    #[test]
    fn uploads_spread_across_miners() {
        let updates: Vec<LocalUpdate> = (0..200).map(update).collect();
        let topology = Topology::new(200, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = upload_gradients(&updates, &topology, None, None, &mut rng);
        assert_eq!(
            outcome.per_miner.len(),
            4,
            "all miners should receive some uploads"
        );
        for uploads in outcome.per_miner.values() {
            assert!(uploads.len() > 20);
        }
    }
}
