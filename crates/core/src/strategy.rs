//! The two low-contribution strategies of Algorithm 2.
//!
//! "There are two strategies: i) keep all gradients; ii) discard
//! low-contributing local gradients and recalculate the global updates."
//! The discard strategy doubles as the malicious-client defence and as an
//! implicit client-selection mechanism (Section 3.2), and is what the
//! "FAIR-Discard" curves in Figure 7 and the Table 2 experiment use.

use serde::{Deserialize, Serialize};

/// What to do with clients labelled low-contribution by Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LowContributionStrategy {
    /// Keep every gradient in the aggregation (the plain "FAIR" curves).
    #[default]
    Keep,
    /// Drop low-contribution gradients and recompute the global update from
    /// the high-contribution set only ("FAIR-Discard").
    Discard,
}

impl LowContributionStrategy {
    /// True when low-contribution gradients are removed from the round.
    pub fn discards(&self) -> bool {
        matches!(self, LowContributionStrategy::Discard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_keep() {
        assert_eq!(
            LowContributionStrategy::default(),
            LowContributionStrategy::Keep
        );
        assert!(!LowContributionStrategy::Keep.discards());
        assert!(LowContributionStrategy::Discard.discards());
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&LowContributionStrategy::Discard).unwrap();
        let back: LowContributionStrategy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, LowContributionStrategy::Discard);
    }
}
