//! Fair aggregation (paper Equation 1).
//!
//! Simple averaging "treats all clients' gradients equally", but clients do
//! not contribute equally; FAIR-BFL instead aggregates with weights
//! `p_i = θ_i / Σ_k θ_k`, where `θ_i` is the cosine distance between client
//! `i`'s upload and the round's (simple-average) global gradient. The
//! weights form a probability simplex, so the fair aggregate stays inside
//! the convex hull of the uploads — which is what Theorem 3.1's analysis
//! relies on.

use bfl_ml::gradient::{cosine_distance, weighted_average, GradientVector};

/// Minimum weight floor. A client whose upload coincides exactly with the
/// global gradient has θ = 0; the floor keeps it from being zeroed out of
/// the aggregation entirely (and keeps the weight vector strictly positive).
pub const WEIGHT_FLOOR: f64 = 1e-9;

/// Computes the raw contribution scores θ_i = cosine distance between each
/// upload and the reference (global) gradient.
pub fn contribution_scores(updates: &[GradientVector], global: &[f64]) -> Vec<f64> {
    updates
        .iter()
        .map(|u| cosine_distance(u, global).max(WEIGHT_FLOOR))
        .collect()
}

/// Normalizes raw scores into Equation 1's weights `p_i = θ_i / Σ θ_k`.
pub fn contribution_weights(scores: &[f64]) -> Vec<f64> {
    assert!(!scores.is_empty(), "cannot normalize zero scores");
    assert!(
        scores.iter().all(|&s| s >= 0.0),
        "scores must be non-negative"
    );
    let total: f64 = scores.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / scores.len() as f64; scores.len()];
    }
    scores.iter().map(|&s| s / total).collect()
}

/// Equation 1: aggregates the uploads with contribution weights derived
/// from their cosine distance to `reference` (normally the simple-average
/// global gradient of the round).
pub fn fair_aggregate(updates: &[GradientVector], reference: &[f64]) -> GradientVector {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    let scores = contribution_scores(updates, reference);
    let weights = contribution_weights(&scores);
    weighted_average(updates, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfl_ml::gradient::average;
    use proptest::prelude::*;

    #[test]
    fn weights_form_a_simplex() {
        let scores = vec![0.1, 0.4, 0.5, 0.0];
        let weights = contribution_weights(&scores);
        let sum: f64 = weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(weights.iter().all(|&w| (0.0..=1.0).contains(&w)));
        // Proportionality.
        assert!((weights[2] / weights[1] - 0.5 / 0.4).abs() < 1e-9);
    }

    #[test]
    fn all_zero_scores_fall_back_to_uniform() {
        let weights = contribution_weights(&[0.0, 0.0]);
        assert_eq!(weights, vec![0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_scores_are_rejected() {
        let _ = contribution_weights(&[0.5, -0.1]);
    }

    #[test]
    fn identical_updates_aggregate_to_themselves() {
        let update = vec![1.0, -2.0, 0.5];
        let updates = vec![update.clone(), update.clone(), update.clone()];
        let global = average(&updates);
        let fair = fair_aggregate(&updates, &global);
        for (a, b) in fair.iter().zip(update.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn farther_updates_get_larger_weights() {
        // Reference points along +x; one update is aligned (tiny θ), the
        // other is orthogonal (θ = 1). Equation 1 gives the distant one the
        // dominant weight, pulling the aggregate towards it.
        let aligned = vec![1.0, 0.0];
        let orthogonal = vec![0.0, 1.0];
        let reference = vec![1.0, 0.0];
        let scores = contribution_scores(&[aligned.clone(), orthogonal.clone()], &reference);
        assert!(scores[1] > scores[0]);
        let weights = contribution_weights(&scores);
        assert!(weights[1] > 0.9);
        let fair = fair_aggregate(&[aligned, orthogonal], &reference);
        assert!(fair[1] > fair[0]);
    }

    #[test]
    fn scores_use_weight_floor_for_exact_matches() {
        let scores = contribution_scores(&[vec![2.0, 0.0]], &[1.0, 0.0]);
        assert_eq!(scores[0], WEIGHT_FLOOR);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn fair_aggregate_stays_in_convex_hull(values in proptest::collection::vec(-100.0f64..100.0, 2..10)) {
            let updates: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
            let reference = average(&updates);
            let fair = fair_aggregate(&updates, &reference);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(fair[0] >= lo - 1e-9 && fair[0] <= hi + 1e-9);
        }

        #[test]
        fn weights_always_sum_to_one(scores in proptest::collection::vec(0.0f64..10.0, 1..20)) {
            let weights = contribution_weights(&scores);
            let sum: f64 = weights.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
