//! FAIR-BFL run configuration.

use crate::delay_model::DelayModel;
use crate::error::CoreError;
use crate::flexibility::FlexibilityMode;
use crate::policy::AggregationAnchor;
use crate::strategy::LowContributionStrategy;
use bfl_cluster::{ClusteringAlgorithm, DistanceMetric};
use bfl_fl::attack::AttackKind;
use bfl_fl::config::FlConfig;
use serde::{Deserialize, Serialize};

/// How malicious clients are injected into a run (the Table 2 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Whether any attackers are injected at all.
    pub enabled: bool,
    /// Minimum number of attackers designated per round.
    pub min_attackers: usize,
    /// Maximum number of attackers designated per round.
    pub max_attackers: usize,
    /// The forgery the attackers apply.
    pub kind: AttackKind,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            enabled: false,
            min_attackers: 1,
            max_attackers: 3,
            kind: AttackKind::default_poisoning(),
        }
    }
}

impl AttackConfig {
    /// The Table 2 setting: 1-3 attackers per round, gradient forging.
    pub fn table2() -> Self {
        AttackConfig {
            enabled: true,
            min_attackers: 1,
            max_attackers: 3,
            kind: AttackKind::default_poisoning(),
        }
    }
}

/// Complete configuration of a FAIR-BFL (or degraded-mode) run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BflConfig {
    /// Learning-side configuration (clients, rounds, model, partition, seed).
    pub fl: FlConfig,
    /// Number of miners `m` (paper default: 2).
    pub miners: usize,
    /// Which procedures run (full BFL, FL-only, chain-only).
    pub mode: FlexibilityMode,
    /// Low-contribution strategy (keep or discard).
    pub strategy: LowContributionStrategy,
    /// Clustering backend for Algorithm 2 (DBSCAN by default).
    pub clustering: ClusteringAlgorithm,
    /// Distance metric for clustering and θ scores.
    pub metric: DistanceMetric,
    /// The anchor gradient Algorithm 2 clusters against and measures θ
    /// from (the paper's plain mean by default; median/trimmed-mean resist
    /// anchor-corrupting scaling attackers).
    pub anchor: AggregationAnchor,
    /// Whether the final aggregation uses Equation 1's contribution weights
    /// (`true`) or plain simple averaging (`false`, an ablation).
    pub fair_aggregation: bool,
    /// Per-round reward pool (the `base` of Algorithm 2).
    pub reward_base: f64,
    /// Delay-model calibration.
    pub delay: DelayModel,
    /// Malicious-client injection.
    pub attack: AttackConfig,
    /// Whether miners verify RSA signatures on uploads.
    pub verify_signatures: bool,
    /// RSA modulus size used when provisioning client keys.
    pub rsa_modulus_bits: usize,
    /// Rounds a discarded client sits out before becoming selectable again
    /// (the "clients selection" effect of the discard strategy).
    pub discard_cooldown_rounds: usize,
    /// Worker threads the PoW nonce search uses when sealing a block:
    /// `1` keeps the serial loop, `0` uses one worker per core, any other
    /// value is the exact count. The parallel search is deterministic, so
    /// this changes wall-clock time but never the mined chain.
    pub mining_threads: usize,
}

impl Default for BflConfig {
    fn default() -> Self {
        BflConfig {
            fl: FlConfig::default(),
            miners: 2,
            mode: FlexibilityMode::FullBfl,
            strategy: LowContributionStrategy::Keep,
            clustering: ClusteringAlgorithm::default_dbscan(),
            metric: DistanceMetric::Cosine,
            anchor: AggregationAnchor::Mean,
            fair_aggregation: true,
            reward_base: 100.0,
            delay: DelayModel::default(),
            attack: AttackConfig::default(),
            verify_signatures: true,
            rsa_modulus_bits: 256,
            discard_cooldown_rounds: 3,
            mining_threads: 1,
        }
    }
}

impl BflConfig {
    /// Validates the configuration, returning
    /// [`CoreError::InvalidConfig`] describing the first inconsistency.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.fl.validate().map_err(CoreError::invalid)?;
        if self.miners < 1 {
            return Err(CoreError::invalid("need at least one miner"));
        }
        if self.reward_base < 0.0 {
            return Err(CoreError::invalid("reward base must be non-negative"));
        }
        if self.rsa_modulus_bits < bfl_crypto::rsa::MIN_MODULUS_BITS {
            return Err(CoreError::invalid(format!(
                "RSA modulus too small: {} bits (minimum {})",
                self.rsa_modulus_bits,
                bfl_crypto::rsa::MIN_MODULUS_BITS
            )));
        }
        self.anchor.validate()?;
        if self.attack.enabled {
            if self.attack.min_attackers > self.attack.max_attackers {
                return Err(CoreError::invalid("attacker range inverted"));
            }
            if self.attack.max_attackers > self.fl.clients {
                return Err(CoreError::invalid("more attackers than clients"));
            }
        }
        Ok(())
    }

    /// A configuration scaled down for fast unit/integration tests: ten
    /// clients, a handful of rounds, one local epoch.
    pub fn small_test(rounds: usize) -> Self {
        let mut config = BflConfig::default();
        config.fl.clients = 10;
        config.fl.participation_ratio = 0.5;
        config.fl.rounds = rounds;
        config.fl.local.epochs = 1;
        config.fl.local.batch_size = 10;
        config.fl.local.learning_rate = 0.05;
        config.fl.seed = 7;
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let config = BflConfig::default();
        config.validate().unwrap();
        assert_eq!(config.miners, 2);
        assert_eq!(config.fl.clients, 100);
        assert_eq!(config.fl.rounds, 100);
        assert!(config.fair_aggregation);
        assert_eq!(config.strategy, LowContributionStrategy::Keep);
        assert!(matches!(
            config.clustering,
            ClusteringAlgorithm::Dbscan { .. }
        ));
        assert!(!config.attack.enabled);
    }

    #[test]
    fn table2_attack_config() {
        let attack = AttackConfig::table2();
        assert!(attack.enabled);
        assert_eq!(attack.min_attackers, 1);
        assert_eq!(attack.max_attackers, 3);
    }

    #[test]
    fn small_test_config_is_valid() {
        let config = BflConfig::small_test(3);
        config.validate().unwrap();
        assert_eq!(config.fl.rounds, 3);
        assert_eq!(config.fl.clients, 10);
    }

    /// Asserts validation rejects `config` with an
    /// [`CoreError::InvalidConfig`] mentioning `needle`.
    fn assert_rejected(config: BflConfig, needle: &str) {
        match config.validate() {
            Err(CoreError::InvalidConfig(msg)) => {
                assert!(msg.contains(needle), "error `{msg}` mentions `{needle}`")
            }
            other => panic!("expected InvalidConfig({needle}), got {other:?}"),
        }
    }

    #[test]
    fn zero_miners_rejected() {
        assert_rejected(
            BflConfig {
                miners: 0,
                ..Default::default()
            },
            "at least one miner",
        );
    }

    #[test]
    fn negative_reward_base_rejected() {
        assert_rejected(
            BflConfig {
                reward_base: -1.0,
                ..Default::default()
            },
            "reward base",
        );
    }

    #[test]
    fn tiny_rsa_modulus_rejected() {
        assert_rejected(
            BflConfig {
                rsa_modulus_bits: 8,
                ..Default::default()
            },
            "RSA modulus too small",
        );
    }

    #[test]
    fn invalid_anchor_rejected() {
        assert_rejected(
            BflConfig {
                anchor: AggregationAnchor::TrimmedMean { trim_ratio: 0.9 },
                ..Default::default()
            },
            "trim_ratio",
        );
    }

    #[test]
    fn inverted_attacker_range_rejected() {
        let mut config = BflConfig::small_test(1);
        config.attack = AttackConfig {
            enabled: true,
            min_attackers: 3,
            max_attackers: 1,
            kind: AttackKind::SignFlip,
        };
        assert_rejected(config, "attacker range inverted");
    }

    #[test]
    fn too_many_attackers_rejected() {
        let mut config = BflConfig::small_test(1);
        config.attack = AttackConfig {
            enabled: true,
            min_attackers: 1,
            max_attackers: 50,
            kind: AttackKind::SignFlip,
        };
        assert_rejected(config, "more attackers than clients");
    }

    #[test]
    fn invalid_fl_settings_surface_as_invalid_config() {
        let mut config = BflConfig::default();
        config.fl.clients = 0;
        assert_rejected(config, "at least one client");
    }

    #[test]
    fn serde_round_trip() {
        let config = BflConfig::default();
        let json = serde_json::to_string(&config).unwrap();
        let back: BflConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
