//! FAIR-BFL run configuration.

use crate::delay_model::DelayModel;
use crate::error::CoreError;
use crate::flexibility::FlexibilityMode;
use crate::policy::{AggregationAnchor, ReorgPolicy, RetryPolicy, StalenessPolicy};
use crate::strategy::LowContributionStrategy;
use bfl_cluster::{ClusteringAlgorithm, DistanceMetric};
use bfl_fl::attack::AttackKind;
use bfl_fl::config::FlConfig;
use bfl_net::{ChurnSchedule, DelayDistribution, FaultPlan, NodeProfile};
use serde::{Deserialize, Serialize};

/// When a round's block is sealed: the paper's flexible block size.
///
/// Vanilla BFL waits for *every* selected client before a block can be
/// mined, so one straggler gates the whole round. FAIR-BFL's flexibility
/// redesign lets a block aggregate a flexible number of local updates:
/// under [`SyncMode::FlexibleQuota`] the round engine runs on a
/// discrete-event scheduler and Procedures IV/V fire as soon as `quota`
/// uploads have arrived; the rest become stale and are handled by the
/// configured [`StalenessPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SyncMode {
    /// Lockstep rounds: every selected client reports before Procedure IV
    /// runs. This is the PR 4 engine, unchanged and bit-identical.
    #[default]
    Synchronous,
    /// Event-driven rounds: the block seals once `quota` uploads have
    /// arrived (capped at the number of outstanding uploads, so a small
    /// round still completes).
    FlexibleQuota {
        /// Uploads a block waits for before Procedures IV/V fire (>= 1).
        quota: usize,
    },
}

impl SyncMode {
    /// True for the lockstep mode.
    pub fn is_synchronous(&self) -> bool {
        matches!(self, SyncMode::Synchronous)
    }

    /// Validates the mode's parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            SyncMode::FlexibleQuota { quota: 0 } => Err(CoreError::invalid(
                "flexible block quota must be at least one upload",
            )),
            _ => Ok(()),
        }
    }

    /// Short display name (used by sweep labels and reports).
    pub fn name(&self) -> &'static str {
        match self {
            SyncMode::Synchronous => "synchronous",
            SyncMode::FlexibleQuota { .. } => "flexible-quota",
        }
    }
}

/// Parametric description of the client population's heterogeneity, from
/// which per-client [`NodeProfile`]s are derived deterministically (no
/// RNG: straggler and churn assignments are pure functions of the client
/// index, so a scenario value fully determines the population).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileConfig {
    /// Compute-time multiplier of the slowest straggler (>= 1; stragglers
    /// interpolate between the baseline rate and this).
    pub straggler_slowdown: f64,
    /// Fraction of clients that are stragglers, in `[0, 1]`. The slow
    /// tail is assigned to the *highest* client indices.
    pub straggler_fraction: f64,
    /// Per-upload one-way uplink latency of every client.
    pub uplink: DelayDistribution,
    /// Fraction of clients that churn (periodically leave and rejoin), in
    /// `[0, 1]`. Churners are assigned to the *lowest* client indices,
    /// with staggered first departures.
    pub churn_fraction: f64,
    /// Simulated seconds a churning client stays online between
    /// departures (> 0 whenever `churn_fraction > 0`).
    pub churn_online_s: f64,
    /// Simulated seconds a churning client stays offline per departure
    /// (> 0 whenever `churn_fraction > 0`).
    pub churn_offline_s: f64,
}

impl Default for ProfileConfig {
    /// The degenerate population: uniform compute, zero uplink latency,
    /// no churn — the event engine's behaviour collapses toward the
    /// synchronous one.
    fn default() -> Self {
        ProfileConfig {
            straggler_slowdown: 1.0,
            straggler_fraction: 0.0,
            uplink: DelayDistribution::Constant(0.0),
            churn_fraction: 0.0,
            churn_online_s: 60.0,
            churn_offline_s: 30.0,
        }
    }
}

impl ProfileConfig {
    /// Validates the profile parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.straggler_slowdown.is_finite() && self.straggler_slowdown >= 1.0) {
            return Err(CoreError::invalid(format!(
                "straggler_slowdown must be finite and >= 1, got {}",
                self.straggler_slowdown
            )));
        }
        for (name, fraction) in [
            ("straggler_fraction", self.straggler_fraction),
            ("churn_fraction", self.churn_fraction),
        ] {
            if !(0.0..=1.0).contains(&fraction) || !fraction.is_finite() {
                return Err(CoreError::invalid(format!(
                    "{name} must be in [0, 1], got {fraction}"
                )));
            }
        }
        self.uplink.validate().map_err(CoreError::invalid)?;
        if self.churn_fraction > 0.0 {
            // Delegate the churn-window checks to the schedule the
            // profiles will actually be built with, so the canonical
            // rules live in one place (`bfl_net::ChurnSchedule`).
            ChurnSchedule::Periodic {
                first_leave_s: 0.0,
                offline_s: self.churn_offline_s,
                online_s: self.churn_online_s,
            }
            .validate()
            .map_err(CoreError::invalid)?;
        }
        Ok(())
    }

    /// Derives the per-client profile population for `clients` clients.
    ///
    /// Deterministic by construction: client `i` of `n` is a straggler
    /// iff `i >= n - round(straggler_fraction · n)` (multipliers ramp
    /// linearly up to `straggler_slowdown`), and a churner iff
    /// `i < round(churn_fraction · n)` (first departures staggered across
    /// the online period so the population never vanishes at once).
    pub fn build_profiles(&self, clients: usize) -> Vec<NodeProfile> {
        (0..clients).map(|i| self.profile_of(i, clients)).collect()
    }

    /// Derives client `i`'s profile out of a population of `clients`
    /// without materializing the rest — the pure per-index function
    /// [`build_profiles`](Self::build_profiles) maps over, exposed so the
    /// event engine can serve million-client populations from an
    /// O(1)-memory oracle. `profile_of(i, n) == build_profiles(n)[i]`
    /// bit-for-bit.
    pub fn profile_of(&self, i: usize, clients: usize) -> NodeProfile {
        let stragglers = ((clients as f64) * self.straggler_fraction).round() as usize;
        let churners = ((clients as f64) * self.churn_fraction).round() as usize;
        let compute_multiplier = if stragglers > 0 && i >= clients - stragglers {
            // Rank within the straggler tail, 1-based; the last
            // client gets the full slowdown.
            let rank = (i - (clients - stragglers) + 1) as f64;
            1.0 + (self.straggler_slowdown - 1.0) * rank / stragglers as f64
        } else {
            1.0
        };
        let churn = if i < churners {
            ChurnSchedule::Periodic {
                first_leave_s: self.churn_online_s * (1.0 + i as f64) / (churners as f64 + 1.0),
                offline_s: self.churn_offline_s,
                online_s: self.churn_online_s,
            }
        } else {
            ChurnSchedule::AlwaysOn
        };
        NodeProfile {
            compute_multiplier,
            uplink: self.uplink,
            churn,
        }
    }
}

/// How per-client run state (data shard, RSA key pair) is provisioned.
///
/// Eager provisioning builds the whole population up front — O(population)
/// memory and keygen work. Lazy provisioning derives each client on first
/// selection from pure per-index RNG streams ([`bfl_fl::implicit`],
/// [`bfl_crypto::LazyKeyVault`]) and caches at most `cache_budget` of them,
/// so a round costs O(participants) regardless of population size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ProvisioningMode {
    /// Materialize every client (and, when signing, every key pair) at run
    /// start. The PR 4–6 behaviour, bit-identical.
    #[default]
    Eager,
    /// Derive clients and keys on demand; requires
    /// [`PartitionKind::ImplicitIid`](bfl_fl::config::PartitionKind).
    Lazy {
        /// Maximum clients/key pairs kept cached (>= selected per round).
        cache_budget: usize,
    },
}

impl ProvisioningMode {
    /// True for the lazy mode.
    pub fn is_lazy(&self) -> bool {
        matches!(self, ProvisioningMode::Lazy { .. })
    }
}

/// How Procedure IV consumes a round's uploads.
///
/// The materialized mode buffers every admitted upload until the quota is
/// met and runs Algorithm 2 once over the full set — O(quota) gradient
/// vectors held at peak. The streaming mode folds completed chunks into
/// running fair-aggregation accumulators as they arrive, holding at most
/// `chunk` gradients at a time, so a 10k-participant round no longer needs
/// 10k × dim floats of residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Buffer the full round, aggregate once. The PR 4–6 behaviour,
    /// bit-identical.
    #[default]
    Materialized,
    /// Fold uploads chunk-by-chunk on the event engine. Algorithm 2's
    /// clustering and θ scores are computed per chunk (the chunk acts as
    /// the committee), contribution weights compose linearly across chunks
    /// because Equation 1 is a weighted mean, and rewards are settled once
    /// per round over the concatenated θ scores.
    Streaming {
        /// Uploads folded per chunk (>= 1).
        chunk: usize,
    },
}

impl AggregationMode {
    /// True for the streaming mode.
    pub fn is_streaming(&self) -> bool {
        matches!(self, AggregationMode::Streaming { .. })
    }
}

/// How malicious clients are injected into a run (the Table 2 experiment).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackConfig {
    /// Whether any attackers are injected at all.
    pub enabled: bool,
    /// Minimum number of attackers designated per round.
    pub min_attackers: usize,
    /// Maximum number of attackers designated per round.
    pub max_attackers: usize,
    /// The forgery the attackers apply.
    pub kind: AttackKind,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            enabled: false,
            min_attackers: 1,
            max_attackers: 3,
            kind: AttackKind::default_poisoning(),
        }
    }
}

impl AttackConfig {
    /// The Table 2 setting: 1-3 attackers per round, gradient forging.
    pub fn table2() -> Self {
        AttackConfig {
            enabled: true,
            min_attackers: 1,
            max_attackers: 3,
            kind: AttackKind::default_poisoning(),
        }
    }
}

/// Complete configuration of a FAIR-BFL (or degraded-mode) run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BflConfig {
    /// Learning-side configuration (clients, rounds, model, partition, seed).
    pub fl: FlConfig,
    /// Number of miners `m` (paper default: 2).
    pub miners: usize,
    /// Which procedures run (full BFL, FL-only, chain-only).
    pub mode: FlexibilityMode,
    /// Low-contribution strategy (keep or discard).
    pub strategy: LowContributionStrategy,
    /// Clustering backend for Algorithm 2 (DBSCAN by default).
    pub clustering: ClusteringAlgorithm,
    /// Distance metric for clustering and θ scores.
    pub metric: DistanceMetric,
    /// The anchor gradient Algorithm 2 clusters against and measures θ
    /// from (the paper's plain mean by default; median/trimmed-mean resist
    /// anchor-corrupting scaling attackers).
    pub anchor: AggregationAnchor,
    /// Whether the final aggregation uses Equation 1's contribution weights
    /// (`true`) or plain simple averaging (`false`, an ablation).
    pub fair_aggregation: bool,
    /// Per-round reward pool (the `base` of Algorithm 2).
    pub reward_base: f64,
    /// Delay-model calibration.
    pub delay: DelayModel,
    /// Malicious-client injection.
    pub attack: AttackConfig,
    /// Whether miners verify RSA signatures on uploads.
    pub verify_signatures: bool,
    /// RSA modulus size used when provisioning client keys.
    pub rsa_modulus_bits: usize,
    /// Rounds a discarded client sits out before becoming selectable again
    /// (the "clients selection" effect of the discard strategy).
    pub discard_cooldown_rounds: usize,
    /// Worker threads the PoW nonce search uses when sealing a block:
    /// `1` keeps the serial loop, `0` uses one worker per core, any other
    /// value is the exact count. The parallel search is deterministic, so
    /// this changes wall-clock time but never the mined chain.
    pub mining_threads: usize,
    /// When a round's block seals: lockstep ([`SyncMode::Synchronous`],
    /// the PR 4 engine) or after a flexible quota of uploads has arrived
    /// on the discrete-event scheduler.
    pub sync: SyncMode,
    /// What the event engine does with uploads that arrive after their
    /// round's block was sealed (ignored in synchronous mode, which never
    /// produces stale uploads).
    pub staleness: StalenessPolicy,
    /// The client population's heterogeneity (compute spread, uplink
    /// latency, churn), consulted only by the event-driven engine.
    pub profiles: ProfileConfig,
    /// Deterministic fault injection (link drops/duplicates/corruption,
    /// miner crashes, mesh partitions), consulted only by the event-driven
    /// engine. The default plan injects nothing and leaves runs
    /// bit-identical to a fault-free engine.
    pub fault: FaultPlan,
    /// What a client does when its upload is lost (link drop, corruption,
    /// crashed miner): give up for the round, or resend with exponential
    /// backoff.
    pub retry: RetryPolicy,
    /// What becomes of uploads stranded on the losing branch of a healed
    /// fork (discard, or salvage through the staleness policy).
    pub reorg: ReorgPolicy,
    /// Eager (whole-population) or lazy (on-first-selection, budgeted)
    /// provisioning of client shards and RSA key pairs.
    pub provisioning: ProvisioningMode,
    /// Materialized (full-round buffer) or streaming (chunked fold)
    /// Procedure-IV aggregation; streaming needs the event engine.
    pub aggregation: AggregationMode,
}

impl Default for BflConfig {
    fn default() -> Self {
        BflConfig {
            fl: FlConfig::default(),
            miners: 2,
            mode: FlexibilityMode::FullBfl,
            strategy: LowContributionStrategy::Keep,
            clustering: ClusteringAlgorithm::default_dbscan(),
            metric: DistanceMetric::Cosine,
            anchor: AggregationAnchor::Mean,
            fair_aggregation: true,
            reward_base: 100.0,
            delay: DelayModel::default(),
            attack: AttackConfig::default(),
            verify_signatures: true,
            rsa_modulus_bits: 256,
            discard_cooldown_rounds: 3,
            mining_threads: 1,
            sync: SyncMode::Synchronous,
            staleness: StalenessPolicy::Discard,
            profiles: ProfileConfig::default(),
            fault: FaultPlan::default(),
            retry: RetryPolicy::None,
            reorg: ReorgPolicy::Discard,
            provisioning: ProvisioningMode::Eager,
            aggregation: AggregationMode::Materialized,
        }
    }
}

impl BflConfig {
    /// Validates the configuration, returning
    /// [`CoreError::InvalidConfig`] describing the first inconsistency.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.fl.validate().map_err(CoreError::invalid)?;
        if self.miners < 1 {
            return Err(CoreError::invalid("need at least one miner"));
        }
        if self.reward_base < 0.0 {
            return Err(CoreError::invalid("reward base must be non-negative"));
        }
        if self.rsa_modulus_bits < bfl_crypto::rsa::MIN_MODULUS_BITS {
            return Err(CoreError::invalid(format!(
                "RSA modulus too small: {} bits (minimum {})",
                self.rsa_modulus_bits,
                bfl_crypto::rsa::MIN_MODULUS_BITS
            )));
        }
        self.anchor.validate()?;
        self.sync.validate()?;
        self.staleness.validate()?;
        self.profiles.validate()?;
        self.fault.validate().map_err(CoreError::invalid)?;
        self.retry.validate()?;
        if let Some(crash) = &self.fault.crash {
            if crash.miner >= self.miners {
                return Err(CoreError::invalid(format!(
                    "crash miner index {} out of range (have {} miners)",
                    crash.miner, self.miners
                )));
            }
        }
        if let Some(partition) = &self.fault.partition {
            if partition.boundary >= self.miners {
                return Err(CoreError::invalid(format!(
                    "partition boundary {} must split {} miners into two non-empty components",
                    partition.boundary, self.miners
                )));
            }
        }
        if self.fault.is_active() && self.sync.is_synchronous() {
            return Err(CoreError::invalid(
                "fault injection requires the event-driven engine; set a flexible quota",
            ));
        }
        if !self.sync.is_synchronous() && self.mode == FlexibilityMode::ChainOnly {
            return Err(CoreError::invalid(
                "flexible block quotas apply to learning modes; chain-only rounds have no \
                 upload quota",
            ));
        }
        if self.attack.enabled {
            if self.attack.min_attackers > self.attack.max_attackers {
                return Err(CoreError::invalid("attacker range inverted"));
            }
            if self.attack.max_attackers > self.fl.clients {
                return Err(CoreError::invalid("more attackers than clients"));
            }
        }
        if let ProvisioningMode::Lazy { cache_budget } = self.provisioning {
            if !matches!(
                self.fl.partition,
                bfl_fl::config::PartitionKind::ImplicitIid { .. }
            ) {
                return Err(CoreError::invalid(
                    "lazy provisioning needs an implicit partition (PartitionKind::ImplicitIid); \
                     materialized partitions are provisioned eagerly",
                ));
            }
            if cache_budget < self.fl.selected_per_round() {
                return Err(CoreError::invalid(format!(
                    "lazy cache budget {} is smaller than the {} clients selected per round",
                    cache_budget,
                    self.fl.selected_per_round()
                )));
            }
        }
        if let AggregationMode::Streaming { chunk } = self.aggregation {
            if chunk == 0 {
                return Err(CoreError::invalid("streaming chunk must be at least one"));
            }
            if self.sync.is_synchronous() {
                return Err(CoreError::invalid(
                    "streaming aggregation requires the event-driven engine; set a flexible quota",
                ));
            }
            if self.anchor != AggregationAnchor::Mean {
                return Err(CoreError::invalid(
                    "streaming aggregation composes only the Mean anchor across chunks; \
                     robust anchors need the materialized mode",
                ));
            }
            if self.fault.crash.is_some() || self.fault.partition.is_some() {
                return Err(CoreError::invalid(
                    "streaming aggregation cannot un-fold uploads purged by miner crashes or \
                     stranded by partitions; use the materialized mode with those faults",
                ));
            }
        }
        Ok(())
    }

    /// A configuration scaled down for fast unit/integration tests: ten
    /// clients, a handful of rounds, one local epoch.
    pub fn small_test(rounds: usize) -> Self {
        let mut config = BflConfig::default();
        config.fl.clients = 10;
        config.fl.participation_ratio = 0.5;
        config.fl.rounds = rounds;
        config.fl.local.epochs = 1;
        config.fl.local.batch_size = 10;
        config.fl.local.learning_rate = 0.05;
        config.fl.seed = 7;
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let config = BflConfig::default();
        config.validate().unwrap();
        assert_eq!(config.miners, 2);
        assert_eq!(config.fl.clients, 100);
        assert_eq!(config.fl.rounds, 100);
        assert!(config.fair_aggregation);
        assert_eq!(config.strategy, LowContributionStrategy::Keep);
        assert!(matches!(
            config.clustering,
            ClusteringAlgorithm::Dbscan { .. }
        ));
        assert!(!config.attack.enabled);
    }

    #[test]
    fn table2_attack_config() {
        let attack = AttackConfig::table2();
        assert!(attack.enabled);
        assert_eq!(attack.min_attackers, 1);
        assert_eq!(attack.max_attackers, 3);
    }

    #[test]
    fn small_test_config_is_valid() {
        let config = BflConfig::small_test(3);
        config.validate().unwrap();
        assert_eq!(config.fl.rounds, 3);
        assert_eq!(config.fl.clients, 10);
    }

    /// Asserts validation rejects `config` with an
    /// [`CoreError::InvalidConfig`] mentioning `needle`.
    fn assert_rejected(config: BflConfig, needle: &str) {
        match config.validate() {
            Err(CoreError::InvalidConfig(msg)) => {
                assert!(msg.contains(needle), "error `{msg}` mentions `{needle}`")
            }
            other => panic!("expected InvalidConfig({needle}), got {other:?}"),
        }
    }

    #[test]
    fn zero_miners_rejected() {
        assert_rejected(
            BflConfig {
                miners: 0,
                ..Default::default()
            },
            "at least one miner",
        );
    }

    #[test]
    fn negative_reward_base_rejected() {
        assert_rejected(
            BflConfig {
                reward_base: -1.0,
                ..Default::default()
            },
            "reward base",
        );
    }

    #[test]
    fn tiny_rsa_modulus_rejected() {
        assert_rejected(
            BflConfig {
                rsa_modulus_bits: 8,
                ..Default::default()
            },
            "RSA modulus too small",
        );
    }

    #[test]
    fn invalid_anchor_rejected() {
        assert_rejected(
            BflConfig {
                anchor: AggregationAnchor::TrimmedMean { trim_ratio: 0.9 },
                ..Default::default()
            },
            "trim_ratio",
        );
    }

    #[test]
    fn inverted_attacker_range_rejected() {
        let mut config = BflConfig::small_test(1);
        config.attack = AttackConfig {
            enabled: true,
            min_attackers: 3,
            max_attackers: 1,
            kind: AttackKind::SignFlip,
        };
        assert_rejected(config, "attacker range inverted");
    }

    #[test]
    fn too_many_attackers_rejected() {
        let mut config = BflConfig::small_test(1);
        config.attack = AttackConfig {
            enabled: true,
            min_attackers: 1,
            max_attackers: 50,
            kind: AttackKind::SignFlip,
        };
        assert_rejected(config, "more attackers than clients");
    }

    #[test]
    fn invalid_fl_settings_surface_as_invalid_config() {
        let mut config = BflConfig::default();
        config.fl.clients = 0;
        assert_rejected(config, "at least one client");
    }

    #[test]
    fn serde_round_trip() {
        let mut config = BflConfig {
            sync: SyncMode::FlexibleQuota { quota: 4 },
            staleness: StalenessPolicy::DecayedInclude { decay: 0.5 },
            ..Default::default()
        };
        config.profiles.straggler_fraction = 0.3;
        config.profiles.straggler_slowdown = 4.0;
        let json = serde_json::to_string(&config).unwrap();
        let back: BflConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn defaults_keep_the_synchronous_engine() {
        let config = BflConfig::default();
        assert_eq!(config.sync, SyncMode::Synchronous);
        assert!(config.sync.is_synchronous());
        assert_eq!(config.staleness, StalenessPolicy::Discard);
        assert_eq!(config.profiles, ProfileConfig::default());
        assert_eq!(config.sync.name(), "synchronous");
        assert_eq!(
            SyncMode::FlexibleQuota { quota: 3 }.name(),
            "flexible-quota"
        );
    }

    #[test]
    fn zero_quota_rejected() {
        assert_rejected(
            BflConfig {
                sync: SyncMode::FlexibleQuota { quota: 0 },
                ..Default::default()
            },
            "quota",
        );
    }

    #[test]
    fn chain_only_mode_rejects_flexible_quotas() {
        assert_rejected(
            BflConfig {
                mode: FlexibilityMode::ChainOnly,
                sync: SyncMode::FlexibleQuota { quota: 2 },
                ..Default::default()
            },
            "chain-only",
        );
    }

    #[test]
    fn invalid_staleness_and_profiles_rejected() {
        assert_rejected(
            BflConfig {
                staleness: StalenessPolicy::DecayedInclude { decay: 2.0 },
                ..Default::default()
            },
            "staleness decay",
        );
        let mut config = BflConfig::default();
        config.profiles.straggler_slowdown = 0.5;
        assert_rejected(config, "straggler_slowdown");
        let mut config = BflConfig::default();
        config.profiles.churn_fraction = 1.5;
        assert_rejected(config, "churn_fraction");
        let mut config = BflConfig::default();
        config.profiles.churn_fraction = 0.5;
        config.profiles.churn_offline_s = 0.0;
        assert_rejected(config, "offline_s");
        let mut config = BflConfig::default();
        config.profiles.uplink = DelayDistribution::Uniform { min: 0.4, max: 0.1 };
        assert_rejected(config, "inverted");
    }

    #[test]
    fn fault_plans_validate_against_the_topology_and_engine() {
        use bfl_net::{CrashSchedule, Partition};

        // Crash index must name an existing miner.
        let mut config = BflConfig::small_test(1);
        config.sync = SyncMode::FlexibleQuota { quota: 3 };
        config.fault.crash = Some(CrashSchedule {
            miner: 5,
            crash_at_s: 1.0,
            down_for_s: 2.0,
        });
        assert_rejected(config, "crash miner index");

        // Partition boundary must leave both components non-empty.
        let mut config = BflConfig::small_test(1);
        config.sync = SyncMode::FlexibleQuota { quota: 3 };
        config.fault.partition = Some(Partition {
            start_s: 0.0,
            duration_s: 5.0,
            boundary: 2,
        });
        assert_rejected(config, "partition boundary");

        // An active plan needs the event engine.
        let mut config = BflConfig::small_test(1);
        config.fault.uplink.drop_rate = 0.2;
        assert_rejected(config, "event-driven engine");

        // Bad rates are caught by the plan's own validation.
        let mut config = BflConfig::small_test(1);
        config.sync = SyncMode::FlexibleQuota { quota: 3 };
        config.fault.uplink.drop_rate = 1.5;
        assert_rejected(config, "drop_rate");

        // Retry parameters are validated too.
        let mut config = BflConfig::small_test(1);
        config.retry = RetryPolicy::Backoff {
            max_attempts: 0,
            timeout_s: 1.0,
            base_s: 1.0,
            factor: 2.0,
            jitter_s: 0.0,
        };
        assert_rejected(config, "max_attempts");

        // A valid plan on the event engine passes.
        let mut config = BflConfig::small_test(1);
        config.sync = SyncMode::FlexibleQuota { quota: 3 };
        config.fault.uplink.drop_rate = 0.2;
        config.fault.partition = Some(Partition {
            start_s: 0.0,
            duration_s: 5.0,
            boundary: 1,
        });
        config.retry = RetryPolicy::Backoff {
            max_attempts: 3,
            timeout_s: 1.0,
            base_s: 0.5,
            factor: 2.0,
            jitter_s: 0.1,
        };
        config.reorg = ReorgPolicy::Salvage;
        config.validate().unwrap();
    }

    #[test]
    fn provisioning_and_aggregation_modes_validate() {
        use bfl_fl::config::PartitionKind;

        // Lazy provisioning needs an implicit partition...
        let mut config = BflConfig::small_test(1);
        config.provisioning = ProvisioningMode::Lazy { cache_budget: 64 };
        assert_rejected(config, "implicit partition");

        // ...and a budget covering the per-round selection.
        let mut config = BflConfig::small_test(1);
        config.fl.partition = PartitionKind::ImplicitIid {
            samples_per_client: 8,
        };
        config.provisioning = ProvisioningMode::Lazy { cache_budget: 2 };
        assert_rejected(config, "cache budget");

        // Streaming needs the event engine and the Mean anchor, and
        // refuses crash/partition faults.
        let mut config = BflConfig::small_test(1);
        config.aggregation = AggregationMode::Streaming { chunk: 4 };
        assert_rejected(config, "event-driven engine");

        let mut config = BflConfig::small_test(1);
        config.sync = SyncMode::FlexibleQuota { quota: 3 };
        config.aggregation = AggregationMode::Streaming { chunk: 0 };
        assert_rejected(config, "chunk");

        let mut config = BflConfig::small_test(1);
        config.sync = SyncMode::FlexibleQuota { quota: 3 };
        config.anchor = AggregationAnchor::Median;
        config.aggregation = AggregationMode::Streaming { chunk: 4 };
        assert_rejected(config, "Mean anchor");

        let mut config = BflConfig::small_test(1);
        config.sync = SyncMode::FlexibleQuota { quota: 3 };
        config.aggregation = AggregationMode::Streaming { chunk: 4 };
        config.fault.crash = Some(bfl_net::CrashSchedule {
            miner: 0,
            crash_at_s: 1.0,
            down_for_s: 2.0,
        });
        assert_rejected(config, "crash");

        // The valid combination passes, and the implicit shard size is
        // checked through the FL validation.
        let mut config = BflConfig::small_test(1);
        config.fl.partition = PartitionKind::ImplicitIid {
            samples_per_client: 8,
        };
        config.provisioning = ProvisioningMode::Lazy { cache_budget: 16 };
        config.sync = SyncMode::FlexibleQuota { quota: 3 };
        config.aggregation = AggregationMode::Streaming { chunk: 4 };
        config.validate().unwrap();

        let mut config = BflConfig::small_test(1);
        config.fl.partition = PartitionKind::ImplicitIid {
            samples_per_client: 0,
        };
        assert_rejected(config, "samples_per_client");

        // Serde: the new fields round-trip.
        let json = serde_json::to_string(&BflConfig::default()).unwrap();
        let back: BflConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.provisioning, ProvisioningMode::Eager);
        assert_eq!(back.aggregation, AggregationMode::Materialized);
    }

    #[test]
    fn profile_of_matches_build_profiles_bit_for_bit() {
        let profiles = ProfileConfig {
            straggler_slowdown: 6.0,
            straggler_fraction: 0.25,
            churn_fraction: 0.4,
            churn_online_s: 120.0,
            churn_offline_s: 40.0,
            uplink: DelayDistribution::Uniform { min: 0.1, max: 0.9 },
        };
        for n in [1usize, 7, 32] {
            let built = profiles.build_profiles(n);
            for (i, expected) in built.iter().enumerate() {
                assert_eq!(profiles.profile_of(i, n), *expected, "client {i} of {n}");
            }
        }
    }

    #[test]
    fn profile_population_is_deterministic_and_shaped() {
        let profiles = ProfileConfig {
            straggler_slowdown: 8.0,
            straggler_fraction: 0.3,
            churn_fraction: 0.2,
            churn_online_s: 100.0,
            churn_offline_s: 50.0,
            ..ProfileConfig::default()
        };
        profiles.validate().unwrap();
        let population = profiles.build_profiles(10);
        assert_eq!(population, profiles.build_profiles(10));
        assert_eq!(population.len(), 10);
        // The slow tail sits at the highest indices, ramping up to the
        // configured slowdown.
        assert_eq!(population[0].compute_multiplier, 1.0);
        assert_eq!(population[6].compute_multiplier, 1.0);
        assert!(population[7].compute_multiplier > 1.0);
        assert!(population[8].compute_multiplier > population[7].compute_multiplier);
        assert_eq!(population[9].compute_multiplier, 8.0);
        // Churners sit at the lowest indices with staggered departures.
        assert!(matches!(
            population[0].churn,
            bfl_net::ChurnSchedule::Periodic { .. }
        ));
        assert!(matches!(
            population[1].churn,
            bfl_net::ChurnSchedule::Periodic { .. }
        ));
        assert!(matches!(
            population[2].churn,
            bfl_net::ChurnSchedule::AlwaysOn
        ));
        if let (
            bfl_net::ChurnSchedule::Periodic {
                first_leave_s: a, ..
            },
            bfl_net::ChurnSchedule::Periodic {
                first_leave_s: b, ..
            },
        ) = (population[0].churn, population[1].churn)
        {
            assert!(a < b, "departures are staggered");
        }
        // The degenerate default population is uniform and always online.
        let uniform = ProfileConfig::default().build_profiles(5);
        assert!(uniform.iter().all(|p| *p == NodeProfile::uniform()));
    }
}
