//! The per-procedure delay decomposition of Section 4.6.
//!
//! `T(n, m) = T_local + T_up + T_ex + T_gl + T_bl`, where
//!
//! * `T_local` — Procedure-I local SGD, proportional to the number of SGD
//!   steps `E·|D_i|/B` of the slowest selected client (clients run in
//!   parallel, so the maximum matters).
//! * `T_up`   — Procedure-II uploads: one uplink transfer per participant
//!   plus the miner-side per-upload processing (RSA verification, queue
//!   handling), which is serialized at the miner.
//! * `T_ex`   — Procedure-III miner gradient exchange over the (small)
//!   miner mesh; "normally the number of miners will be scarce ... T_ex is
//!   insignificant".
//! * `T_gl`   — Procedure-IV aggregation plus Algorithm 2 clustering,
//!   `O(clustering)` in the number of gradient vectors.
//! * `T_bl`   — Procedure-V mining competition, expected `difficulty /
//!   (total hash rate)` seconds, plus consensus broadcast.
//!
//! The *vanilla* baselines additionally pay costs FAIR-BFL avoids by
//! design: the pure-blockchain baseline records every worker's transaction,
//! so when the per-round transaction volume crosses the block-size limit it
//! queues across multiple blocks (Figure 6a), and with more miners it pays
//! fork-resolution overhead (Figure 6b). FedAvg/FedProx pay only
//! `T_local + T_up` plus a small server aggregation cost.

use bfl_chain::fork::ForkModel;
use bfl_chain::miner::{expected_competition_time, Miner};
use bfl_chain::pow::PowConfig;
use bfl_net::delay::LinkModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which system a round delay is being computed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SystemKind {
    /// Full FAIR-BFL (all five procedures).
    FairBfl,
    /// FedAvg or FedProx: Procedures I, II and a plain server aggregation.
    FederatedOnly,
    /// The pure-blockchain baseline: Procedures II, III, V over generic
    /// transactions, with block-size queuing and forking.
    PureBlockchain,
}

/// Per-procedure breakdown of one round's simulated delay, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DelayBreakdown {
    /// Procedure-I local training time.
    pub t_local: f64,
    /// Procedure-II upload + verification time.
    pub t_up: f64,
    /// Procedure-III miner exchange time.
    pub t_ex: f64,
    /// Procedure-IV aggregation + clustering time.
    pub t_gl: f64,
    /// Procedure-V mining + consensus time.
    pub t_bl: f64,
    /// Extra block intervals spent clearing a transaction backlog
    /// (vanilla blockchain only).
    pub t_queue: f64,
    /// Extra time spent resolving forks (vanilla blockchain only).
    pub t_fork: f64,
}

impl DelayBreakdown {
    /// Total round delay in seconds.
    pub fn total(&self) -> f64 {
        self.t_local + self.t_up + self.t_ex + self.t_gl + self.t_bl + self.t_queue + self.t_fork
    }
}

/// Calibrated parameters of the delay model. Defaults reproduce the
/// qualitative ordering of the paper's Figures 4a, 6a, 6b and 7a
/// (Blockchain > FAIR > FedAvg > FAIR-Discard at the default scale, with
/// the blockchain/FAIR crossover near n ≈ 100 workers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayModel {
    /// Seconds of client compute per SGD step (one mini-batch).
    pub local_step_seconds: f64,
    /// Client → miner uplink characteristics.
    pub uplink: LinkModel,
    /// Miner ↔ miner backbone characteristics.
    pub miner_link: LinkModel,
    /// Miner-side processing per accepted upload (signature verification,
    /// deduplication), serialized at the miner.
    pub upload_processing_s: f64,
    /// Clustering cost per gradient vector in Algorithm 2.
    pub clustering_seconds_per_vector: f64,
    /// Fixed cost of the aggregation itself (Equation 1 / simple average).
    pub aggregation_seconds: f64,
    /// Hash rate of each miner in hashes per second.
    pub miner_hash_rate: f64,
    /// Proof-of-work difficulty (expected hashes per block).
    pub pow_difficulty: u64,
    /// Consensus broadcast/validation overhead added to every mined block.
    pub consensus_overhead_s: f64,
    /// Fork model for the vanilla baseline.
    pub fork: ForkModel,
    /// Block size limit in bytes.
    pub max_block_bytes: usize,
    /// Serialized size of one model/gradient payload in bytes.
    pub gradient_bytes: usize,
    /// Transaction size of the pure-blockchain baseline in bytes.
    pub baseline_tx_bytes: usize,
    /// Per-transaction processing time of the pure-blockchain baseline.
    pub baseline_tx_process_s: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel {
            local_step_seconds: 0.083,
            uplink: LinkModel::edge_uplink(),
            miner_link: LinkModel::miner_backbone(),
            upload_processing_s: 0.35,
            clustering_seconds_per_vector: 0.08,
            aggregation_seconds: 0.1,
            miner_hash_rate: 1000.0,
            pow_difficulty: 1600,
            consensus_overhead_s: 0.1,
            fork: ForkModel::new(0.3, 2.0),
            max_block_bytes: 512 * 1024,
            gradient_bytes: 7850 * 8,
            baseline_tx_bytes: 5000,
            baseline_tx_process_s: 0.07,
        }
    }
}

impl DelayModel {
    /// The PoW configuration implied by the model.
    pub fn pow_config(&self) -> PowConfig {
        PowConfig::new(self.pow_difficulty)
    }

    fn miners(&self, count: usize) -> Vec<Miner> {
        (0..count.max(1) as u64)
            .map(|id| Miner::new(id, self.miner_hash_rate))
            .collect()
    }

    /// Procedure-I delay: the slowest participant's local pass.
    pub fn t_local(&self, max_local_steps: usize) -> f64 {
        self.local_step_seconds * max_local_steps as f64
    }

    /// Procedure-II delay for `participants` gradient uploads.
    pub fn t_up<R: Rng + ?Sized>(&self, participants: usize, rng: &mut R) -> f64 {
        if participants == 0 {
            return 0.0;
        }
        // Uploads happen in parallel; the slowest transfer gates the round,
        // then the receiving miners process each accepted upload.
        let slowest_transfer = (0..participants)
            .map(|_| self.uplink.sample_transfer(self.gradient_bytes, rng))
            .fold(0.0f64, f64::max);
        slowest_transfer + participants as f64 * self.upload_processing_s
    }

    /// Procedure-III delay: each miner broadcasts its gradient set to the
    /// other miners over the backbone.
    pub fn t_ex<R: Rng + ?Sized>(&self, participants: usize, miners: usize, rng: &mut R) -> f64 {
        if miners <= 1 || participants == 0 {
            return 0.0;
        }
        let payload = participants * self.gradient_bytes / miners.max(1);
        (miners - 1) as f64 * self.miner_link.sample_transfer(payload, rng) / miners as f64
            + self.miner_link.sample_transfer(payload, rng)
    }

    /// Procedure-IV delay: aggregation plus Algorithm 2 clustering over
    /// `vectors` gradient vectors (participants + the global gradient).
    pub fn t_gl(&self, vectors: usize) -> f64 {
        self.aggregation_seconds + self.clustering_seconds_per_vector * vectors as f64
    }

    /// Procedure-V delay: the sampled mining competition plus consensus
    /// broadcast overhead.
    pub fn t_bl<R: Rng + ?Sized>(&self, miners: usize, rng: &mut R) -> f64 {
        let fleet = self.miners(miners);
        let outcome = bfl_chain::miner::sample_competition(&fleet, &self.pow_config(), rng);
        outcome.time_seconds + self.consensus_overhead_s
    }

    /// Expected (not sampled) Procedure-V delay.
    pub fn expected_t_bl(&self, miners: usize) -> f64 {
        expected_competition_time(&self.miners(miners), &self.pow_config())
            + self.consensus_overhead_s
    }

    /// Full FAIR-BFL round delay.
    ///
    /// * `participants` — clients whose uploads are processed this round
    ///   (after any discard-driven deselection).
    /// * `max_local_steps` — SGD steps of the slowest participant.
    /// * `miners` — number of miners.
    pub fn fair_round<R: Rng + ?Sized>(
        &self,
        participants: usize,
        max_local_steps: usize,
        miners: usize,
        rng: &mut R,
    ) -> DelayBreakdown {
        DelayBreakdown {
            t_local: self.t_local(max_local_steps),
            t_up: self.t_up(participants, rng),
            t_ex: self.t_ex(participants, miners, rng),
            t_gl: self.t_gl(participants + 1),
            t_bl: self.t_bl(miners, rng),
            t_queue: 0.0,
            t_fork: 0.0,
        }
    }

    /// FedAvg / FedProx round delay: local training, uploads, and a plain
    /// server-side aggregation — no exchange, no mining.
    pub fn federated_round<R: Rng + ?Sized>(
        &self,
        participants: usize,
        max_local_steps: usize,
        rng: &mut R,
    ) -> DelayBreakdown {
        DelayBreakdown {
            t_local: self.t_local(max_local_steps),
            t_up: self.t_up(participants, rng),
            t_ex: 0.0,
            t_gl: self.aggregation_seconds,
            t_bl: 0.0,
            t_queue: 0.0,
            t_fork: 0.0,
        }
    }

    /// Pure-blockchain baseline round delay for `workers` transaction
    /// submitters and `miners` miners.
    ///
    /// Every worker submits one transaction; miners process each, exchange,
    /// and mine as many blocks as the backlog requires. More workers means
    /// queuing once the volume crosses the block size; more miners means
    /// forking.
    pub fn blockchain_round<R: Rng + ?Sized>(
        &self,
        workers: usize,
        miners: usize,
        rng: &mut R,
    ) -> DelayBreakdown {
        let slowest_submit = (0..workers.max(1))
            .map(|_| self.uplink.sample_transfer(self.baseline_tx_bytes, rng))
            .fold(0.0f64, f64::max);
        let t_up = slowest_submit + workers as f64 * self.baseline_tx_process_s;

        let t_ex = if miners > 1 {
            self.miner_link
                .sample_transfer(workers * self.baseline_tx_bytes, rng)
        } else {
            0.0
        };

        // Blocks needed to clear the round's transactions.
        let total_bytes = workers * (self.baseline_tx_bytes + 96);
        let capacity = self.max_block_bytes.saturating_sub(104).max(1);
        let blocks_needed = total_bytes.div_ceil(capacity).max(1);

        let t_bl = self.t_bl(miners, rng);
        let t_queue = (blocks_needed - 1) as f64 * self.expected_t_bl(miners);

        // Fork resolution overhead (per produced block).
        let fleet = self.miners(miners);
        let block_interval = self.expected_t_bl(miners);
        let t_fork = blocks_needed as f64
            * self
                .fork
                .expected_fork_delay(&fleet, &self.pow_config(), block_interval);

        DelayBreakdown {
            t_local: 0.0,
            t_up,
            t_ex,
            t_gl: 0.0,
            t_bl,
            t_queue,
            t_fork,
        }
    }

    /// Dispatches on the system kind with the given scale parameters.
    pub fn round_for_system<R: Rng + ?Sized>(
        &self,
        system: SystemKind,
        participants: usize,
        max_local_steps: usize,
        workers: usize,
        miners: usize,
        rng: &mut R,
    ) -> DelayBreakdown {
        match system {
            SystemKind::FairBfl => self.fair_round(participants, max_local_steps, miners, rng),
            SystemKind::FederatedOnly => self.federated_round(participants, max_local_steps, rng),
            SystemKind::PureBlockchain => self.blockchain_round(workers, miners, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDE1A)
    }

    fn mean_total<F: FnMut(&mut StdRng) -> DelayBreakdown>(mut f: F) -> f64 {
        let mut r = rng();
        let n = 200;
        (0..n).map(|_| f(&mut r).total()).sum::<f64>() / n as f64
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = DelayBreakdown {
            t_local: 1.0,
            t_up: 2.0,
            t_ex: 0.5,
            t_gl: 0.25,
            t_bl: 3.0,
            t_queue: 1.5,
            t_fork: 0.75,
        };
        assert!((b.total() - 9.0).abs() < 1e-12);
        assert_eq!(DelayBreakdown::default().total(), 0.0);
    }

    #[test]
    fn paper_ordering_at_default_scale() {
        // n = 100 workers, 10 participants, 30 local steps, m = 2 miners:
        // FedAvg < FAIR < Blockchain (Figure 4a).
        let model = DelayModel::default();
        let fedavg = mean_total(|r| model.federated_round(10, 30, r));
        let fair = mean_total(|r| model.fair_round(10, 30, 2, r));
        let blockchain = mean_total(|r| model.blockchain_round(100, 2, r));
        assert!(
            fedavg < fair && fair < blockchain,
            "ordering violated: fedavg {fedavg:.2}, fair {fair:.2}, blockchain {blockchain:.2}"
        );
        // All in a plausible seconds range.
        assert!(fedavg > 2.0 && blockchain < 30.0);
    }

    #[test]
    fn discarding_participants_reduces_fair_delay_below_fedavg() {
        // Figure 7a: FAIR-Discard (fewer participants) ends up below FedAvg
        // (full participation).
        let model = DelayModel::default();
        let fedavg_full = mean_total(|r| model.federated_round(10, 30, r));
        let fair_discarded = mean_total(|r| model.fair_round(4, 30, 2, r));
        assert!(
            fair_discarded < fedavg_full,
            "FAIR with 4 participants ({fair_discarded:.2}) should undercut FedAvg with 10 ({fedavg_full:.2})"
        );
    }

    #[test]
    fn blockchain_delay_grows_with_workers_and_crosses_fair() {
        // Figure 6a: blockchain rises with n; FAIR stays flat; crossover
        // below n = 120.
        let model = DelayModel::default();
        let fair = mean_total(|r| model.fair_round(10, 30, 2, r));
        let mut previous = 0.0;
        let mut crossed = false;
        for &n in &[20usize, 40, 60, 80, 100, 120] {
            let blockchain = mean_total(|r| model.blockchain_round(n, 2, r));
            assert!(
                blockchain > previous,
                "blockchain delay must increase with workers (n={n}: {blockchain:.2} <= {previous:.2})"
            );
            if blockchain > fair {
                crossed = true;
            }
            previous = blockchain;
        }
        assert!(crossed, "blockchain delay never crossed FAIR ({fair:.2})");
        // At the small end, blockchain is cheaper than FAIR.
        let small = mean_total(|r| model.blockchain_round(20, 2, r));
        assert!(small < fair);
    }

    #[test]
    fn blockchain_delay_grows_superlinearly_with_miners_while_fair_is_flat() {
        // Figure 6b.
        let model = DelayModel::default();
        let mut blockchain_deltas = Vec::new();
        let mut previous = None;
        let mut fair_values = Vec::new();
        for &m in &[2usize, 4, 6, 8, 10] {
            let blockchain = mean_total(|r| model.blockchain_round(100, m, r));
            let fair = mean_total(|r| model.fair_round(10, 30, m, r));
            fair_values.push(fair);
            if let Some(prev) = previous {
                blockchain_deltas.push(blockchain - prev);
            }
            previous = Some(blockchain);
        }
        // Increasing and accelerating.
        assert!(blockchain_deltas.iter().all(|&d| d > 0.0));
        assert!(
            blockchain_deltas.last().unwrap() > blockchain_deltas.first().unwrap(),
            "fork overhead should accelerate: {blockchain_deltas:?}"
        );
        // FAIR moves by far less than blockchain over the same range.
        let fair_spread = fair_values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            - fair_values.iter().cloned().fold(f64::INFINITY, f64::min);
        let blockchain_spread =
            previous.unwrap() - mean_total(|r| model.blockchain_round(100, 2, r));
        assert!(fair_spread < blockchain_spread / 2.0);
    }

    #[test]
    fn learning_rate_does_not_enter_the_delay_model() {
        // Figure 5a: delay is unaffected by η. The model has no learning-rate
        // parameter at all; this test documents that invariant by checking
        // the delay only depends on the step count.
        let model = DelayModel::default();
        let a = model.t_local(30);
        let b = model.t_local(30);
        assert_eq!(a, b);
        assert!(model.t_local(60) > a);
    }

    #[test]
    fn component_helpers_behave() {
        let model = DelayModel::default();
        let mut r = rng();
        assert_eq!(model.t_up(0, &mut r), 0.0);
        assert!(model.t_up(10, &mut r) > model.t_up(2, &mut r));
        assert_eq!(model.t_ex(10, 1, &mut r), 0.0);
        assert!(model.t_ex(10, 4, &mut r) > 0.0);
        assert!(model.t_gl(11) > model.t_gl(5));
        assert!(model.expected_t_bl(4) < model.expected_t_bl(2));
        assert!(model.t_bl(2, &mut r) > 0.0);
    }

    #[test]
    fn round_for_system_dispatches() {
        let model = DelayModel::default();
        let mut r = rng();
        let fair = model.round_for_system(SystemKind::FairBfl, 10, 30, 100, 2, &mut r);
        let fed = model.round_for_system(SystemKind::FederatedOnly, 10, 30, 100, 2, &mut r);
        let chain = model.round_for_system(SystemKind::PureBlockchain, 10, 30, 100, 2, &mut r);
        assert!(fair.t_bl > 0.0 && fair.t_ex > 0.0);
        assert_eq!(fed.t_bl, 0.0);
        assert_eq!(fed.t_ex, 0.0);
        assert_eq!(chain.t_local, 0.0);
        assert!(chain.t_up > 0.0);
    }
}
