//! The Scenario API: compose a point of FAIR-BFL's redesign space and
//! drive it.
//!
//! A [`Scenario`] is a *validated* configuration — building one can fail
//! with [`CoreError::InvalidConfig`], running one cannot fail for
//! configuration reasons. Scenarios are cheap values (`Copy`,
//! serializable), which is what lets [`crate::sweep::SweepRunner`] fan
//! whole grids of them across cores.
//!
//! ```no_run
//! use bfl_core::{AggregationAnchor, FlexibilityMode, Scenario};
//! # let (train, test): (bfl_data::Dataset, bfl_data::Dataset) = unimplemented!();
//! let scenario = Scenario::builder()
//!     .mode(FlexibilityMode::FullBfl)
//!     .clients(20)
//!     .rounds(10)
//!     .anchor(AggregationAnchor::Median)
//!     .seed(7)
//!     .build()?;
//! let result = scenario.run(&train, &test)?;
//! # Ok::<(), bfl_core::CoreError>(())
//! ```
//!
//! For round-by-round control, [`Scenario::start`] hands back the
//! stepwise [`SimulationRun`]; [`Scenario::run_observed`] keeps the loop
//! but streams every round through a [`RoundObserver`] that may stop the
//! run early.

use crate::config::{
    AggregationMode, AttackConfig, BflConfig, ProfileConfig, ProvisioningMode, SyncMode,
};
use crate::delay_model::DelayModel;
use crate::engine::SimulationRun;
use crate::error::CoreError;
use crate::flexibility::FlexibilityMode;
use crate::policy::{
    AggregationAnchor, ObserverControl, ReorgPolicy, RetryPolicy, RewardPolicy, RoundEvent,
    RoundObserver, StalenessPolicy,
};
use crate::simulation::SimulationResult;
use crate::strategy::LowContributionStrategy;
use bfl_cluster::{ClusteringAlgorithm, DistanceMetric};
use bfl_data::Dataset;
use bfl_fl::config::{FlConfig, PartitionKind};
use serde::{Deserialize, Serialize};

/// One validated point of the FAIR-BFL design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    config: BflConfig,
}

impl Scenario {
    /// Starts composing a scenario from the paper's defaults.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            config: BflConfig::default(),
        }
    }

    /// Wraps an existing configuration, validating it.
    pub fn from_config(config: BflConfig) -> Result<Scenario, CoreError> {
        config.validate()?;
        Ok(Scenario { config })
    }

    /// The validated configuration.
    pub fn config(&self) -> &BflConfig {
        &self.config
    }

    /// Provisions a stepwise [`SimulationRun`] over the given data.
    pub fn start<'a>(
        &self,
        train: &'a Dataset,
        test: &'a Dataset,
    ) -> Result<SimulationRun<'a>, CoreError> {
        SimulationRun::new(self.config, train, test)
    }

    /// Runs the scenario to completion — the stepwise engine, stepped
    /// until every configured round has run.
    pub fn run(&self, train: &Dataset, test: &Dataset) -> Result<SimulationResult, CoreError> {
        let mut run = self.start(train, test)?;
        run.run_to_completion()?;
        Ok(run.into_result())
    }

    /// Runs the scenario with a custom [`RewardPolicy`] in place of the
    /// default proportional incentive.
    pub fn run_with_reward(
        &self,
        train: &Dataset,
        test: &Dataset,
        reward: Box<dyn RewardPolicy>,
    ) -> Result<SimulationResult, CoreError> {
        let mut run = self.start(train, test)?.with_reward_policy(reward);
        run.run_to_completion()?;
        Ok(run.into_result())
    }

    /// Runs the scenario, streaming every completed round to `observer`.
    /// The observer sees the round outcome, the round's detection row
    /// (when Algorithm 2 ran) and the sealed block (when the mode mines),
    /// and can stop the run early; the result then covers the completed
    /// rounds only.
    pub fn run_observed(
        &self,
        train: &Dataset,
        test: &Dataset,
        observer: &mut dyn RoundObserver,
    ) -> Result<SimulationResult, CoreError> {
        let mut run = self.start(train, test)?;
        while let Some(outcome) = run.step()? {
            let event = RoundEvent {
                detection: run.detection().rows.last(),
                block: if outcome.block_hash.is_some() {
                    run.chain().map(|c| c.tip())
                } else {
                    None
                },
                kpi: outcome.kpi,
                reward_totals: run.reward_totals(),
                outcome: &outcome,
            };
            if observer.on_round(&event) == ObserverControl::Stop {
                break;
            }
        }
        Ok(run.into_result())
    }
}

/// Fluent composition of a [`Scenario`]. Every setter has the paper's
/// Section 5.1 value as its default; [`build`](Self::build) validates the
/// final configuration instead of panicking.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    config: BflConfig,
}

impl ScenarioBuilder {
    /// Seeds the builder from an existing configuration.
    pub fn from_config(config: BflConfig) -> Self {
        ScenarioBuilder { config }
    }

    /// Which procedures run (full BFL, FL-only, chain-only).
    pub fn mode(mut self, mode: FlexibilityMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Number of clients `n`.
    pub fn clients(mut self, clients: usize) -> Self {
        self.config.fl.clients = clients;
        self
    }

    /// Number of communication rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.config.fl.rounds = rounds;
        self
    }

    /// Number of miners `m`.
    pub fn miners(mut self, miners: usize) -> Self {
        self.config.miners = miners;
        self
    }

    /// Fraction λ of clients selected per round.
    pub fn participation_ratio(mut self, ratio: f64) -> Self {
        self.config.fl.participation_ratio = ratio;
        self
    }

    /// Data partition scheme.
    pub fn partition(mut self, partition: PartitionKind) -> Self {
        self.config.fl.partition = partition;
        self
    }

    /// Local epochs `E`.
    pub fn local_epochs(mut self, epochs: usize) -> Self {
        self.config.fl.local.epochs = epochs;
        self
    }

    /// Local learning rate η.
    pub fn learning_rate(mut self, learning_rate: f64) -> Self {
        self.config.fl.local.learning_rate = learning_rate;
        self
    }

    /// Local mini-batch size `B`.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.fl.local.batch_size = batch_size;
        self
    }

    /// Seed for every random choice in the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.fl.seed = seed;
        self
    }

    /// Low-contribution strategy (keep or discard).
    pub fn strategy(mut self, strategy: LowContributionStrategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Clustering backend for Algorithm 2.
    pub fn clustering(mut self, clustering: ClusteringAlgorithm) -> Self {
        self.config.clustering = clustering;
        self
    }

    /// Distance metric for clustering and θ scores.
    pub fn metric(mut self, metric: DistanceMetric) -> Self {
        self.config.metric = metric;
        self
    }

    /// The anchor gradient Algorithm 2 measures against.
    pub fn anchor(mut self, anchor: AggregationAnchor) -> Self {
        self.config.anchor = anchor;
        self
    }

    /// Equation 1 fair aggregation on or off.
    pub fn fair_aggregation(mut self, enabled: bool) -> Self {
        self.config.fair_aggregation = enabled;
        self
    }

    /// Per-round reward pool (the `base` of Algorithm 2).
    pub fn reward_base(mut self, base: f64) -> Self {
        self.config.reward_base = base;
        self
    }

    /// Malicious-client injection.
    pub fn attack(mut self, attack: AttackConfig) -> Self {
        self.config.attack = attack;
        self
    }

    /// Whether miners verify RSA signatures on uploads.
    pub fn verify_signatures(mut self, enabled: bool) -> Self {
        self.config.verify_signatures = enabled;
        self
    }

    /// RSA modulus size used when provisioning client keys.
    pub fn rsa_modulus_bits(mut self, bits: usize) -> Self {
        self.config.rsa_modulus_bits = bits;
        self
    }

    /// Rounds a discarded client sits out before becoming selectable.
    pub fn discard_cooldown_rounds(mut self, rounds: usize) -> Self {
        self.config.discard_cooldown_rounds = rounds;
        self
    }

    /// PoW nonce-search worker threads (0 = one per core, 1 = serial).
    pub fn mining_threads(mut self, threads: usize) -> Self {
        self.config.mining_threads = threads;
        self
    }

    /// When a round's block seals: lockstep or after a flexible quota of
    /// uploads on the event-driven engine.
    pub fn sync(mut self, sync: SyncMode) -> Self {
        self.config.sync = sync;
        self
    }

    /// Shorthand for [`sync`](Self::sync) with
    /// [`SyncMode::FlexibleQuota`]: seal each block after `quota` uploads.
    pub fn flexible_quota(self, quota: usize) -> Self {
        self.sync(SyncMode::FlexibleQuota { quota })
    }

    /// What happens to uploads that arrive after their round's block was
    /// sealed (event-driven engine only).
    pub fn staleness(mut self, staleness: StalenessPolicy) -> Self {
        self.config.staleness = staleness;
        self
    }

    /// The client population's heterogeneity: compute spread, uplink
    /// latency, churn (event-driven engine only).
    pub fn profiles(mut self, profiles: ProfileConfig) -> Self {
        self.config.profiles = profiles;
        self
    }

    /// Deterministic fault injection: link drops/duplicates/corruption,
    /// miner crashes, mesh partitions (event-driven engine only).
    pub fn fault(mut self, fault: bfl_net::FaultPlan) -> Self {
        self.config.fault = fault;
        self
    }

    /// What a client does when its upload is lost in transit.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// What becomes of uploads stranded on the losing branch of a fork.
    pub fn reorg(mut self, reorg: ReorgPolicy) -> Self {
        self.config.reorg = reorg;
        self
    }

    /// Delay-model calibration.
    pub fn delay(mut self, delay: DelayModel) -> Self {
        self.config.delay = delay;
        self
    }

    /// Replaces the whole learning-side configuration.
    pub fn fl(mut self, fl: FlConfig) -> Self {
        self.config.fl = fl;
        self
    }

    /// How client state (shards, RSA keys) comes into existence: eager
    /// population-sized vectors, or lazy derivation under an O(active)
    /// cache budget (requires an implicit partition).
    pub fn provisioning(mut self, provisioning: ProvisioningMode) -> Self {
        self.config.provisioning = provisioning;
        self
    }

    /// How Procedure IV folds uploads into the global update: materialize
    /// the whole round, or stream fixed-size chunks through Algorithm 2
    /// (event-driven engine, `Mean` anchor, fault-free plans only).
    pub fn aggregation(mut self, aggregation: AggregationMode) -> Self {
        self.config.aggregation = aggregation;
        self
    }

    /// Validates the composed configuration into a [`Scenario`].
    pub fn build(self) -> Result<Scenario, CoreError> {
        Scenario::from_config(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_the_plain_config() {
        let scenario = Scenario::builder().build().unwrap();
        assert_eq!(*scenario.config(), BflConfig::default());
    }

    #[test]
    fn builder_setters_land_in_the_config() {
        let scenario = Scenario::builder()
            .mode(FlexibilityMode::FlOnly)
            .clients(12)
            .rounds(4)
            .miners(3)
            .anchor(AggregationAnchor::Median)
            .strategy(LowContributionStrategy::Discard)
            .fair_aggregation(false)
            .seed(99)
            .build()
            .unwrap();
        let config = scenario.config();
        assert_eq!(config.mode, FlexibilityMode::FlOnly);
        assert_eq!(config.fl.clients, 12);
        assert_eq!(config.fl.rounds, 4);
        assert_eq!(config.miners, 3);
        assert_eq!(config.anchor, AggregationAnchor::Median);
        assert_eq!(config.strategy, LowContributionStrategy::Discard);
        assert!(!config.fair_aggregation);
        assert_eq!(config.fl.seed, 99);
    }

    #[test]
    fn builder_surfaces_typed_validation_errors() {
        let err = Scenario::builder().miners(0).build().unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
        assert!(err.to_string().contains("at least one miner"));

        let err = Scenario::builder()
            .anchor(AggregationAnchor::TrimmedMean { trim_ratio: 0.8 })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("trim_ratio"));

        let err = Scenario::builder().clients(0).build().unwrap_err();
        assert!(err.to_string().contains("at least one client"));

        let err = Scenario::builder()
            .participation_ratio(1.5)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("participation ratio"));
    }

    #[test]
    fn async_setters_land_in_the_config_and_validate() {
        let scenario = Scenario::builder()
            .flexible_quota(4)
            .staleness(StalenessPolicy::DecayedInclude { decay: 0.7 })
            .profiles(ProfileConfig {
                straggler_fraction: 0.2,
                straggler_slowdown: 6.0,
                ..ProfileConfig::default()
            })
            .build()
            .unwrap();
        let config = scenario.config();
        assert_eq!(config.sync, SyncMode::FlexibleQuota { quota: 4 });
        assert_eq!(
            config.staleness,
            StalenessPolicy::DecayedInclude { decay: 0.7 }
        );
        assert_eq!(config.profiles.straggler_slowdown, 6.0);

        let err = Scenario::builder().flexible_quota(0).build().unwrap_err();
        assert!(err.to_string().contains("quota"));
        let err = Scenario::builder()
            .mode(FlexibilityMode::ChainOnly)
            .flexible_quota(2)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("chain-only"));
        let err = Scenario::builder()
            .staleness(StalenessPolicy::DecayedInclude { decay: 0.0 })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("staleness decay"));
    }

    #[test]
    fn fault_setters_land_in_the_config_and_validate() {
        let mut fault = bfl_net::FaultPlan::default();
        fault.uplink.drop_rate = 0.25;
        fault.partition = Some(bfl_net::Partition {
            start_s: 1.0,
            duration_s: 4.0,
            boundary: 1,
        });
        let scenario = Scenario::builder()
            .flexible_quota(4)
            .fault(fault)
            .retry(RetryPolicy::Backoff {
                max_attempts: 3,
                timeout_s: 1.0,
                base_s: 0.5,
                factor: 2.0,
                jitter_s: 0.1,
            })
            .reorg(ReorgPolicy::Salvage)
            .build()
            .unwrap();
        let config = scenario.config();
        assert_eq!(config.fault, fault);
        assert_eq!(config.reorg, ReorgPolicy::Salvage);
        assert!(matches!(config.retry, RetryPolicy::Backoff { .. }));

        // Faults without the event engine are rejected at build time.
        let err = Scenario::builder().fault(fault).build().unwrap_err();
        assert!(err.to_string().contains("event-driven engine"));
    }

    #[test]
    fn scenarios_are_values() {
        let a = Scenario::builder().seed(1).build().unwrap();
        let b = a; // Copy
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
