//! The event-driven round engine: flexible block quotas, stragglers,
//! client churn, and deterministic fault injection on the simulated clock.
//!
//! Under [`SyncMode::FlexibleQuota`](crate::config::SyncMode) Procedures
//! I–V stop executing in lockstep and become *event handlers* on
//! `bfl-net`'s deterministic [`EventQueue`]:
//!
//! * **Procedure-I** is scheduled: each selected client's local pass
//!   finishes at `round start + t_local · compute_multiplier` of its
//!   [`NodeProfile`], producing a `TrainingFinished` event.
//! * **Procedure-II** is the `TrainingFinished` handler: the client signs
//!   its gradient, associates with a miner through the run's
//!   [`Topology`](bfl_net::Topology), and the upload is scheduled to
//!   arrive after its profile's uplink latency plus the payload transfer
//!   and miner-side processing time.
//! * The `UploadArrived` handler verifies the signature and admits the
//!   upload into the chain's [`Mempool`] (via
//!   [`Mempool::submit_signed`], the Figure 2 verification step). Stale
//!   uploads — commissioned in an earlier round, arriving after that
//!   round's block sealed — pass through the configured
//!   [`StalenessPolicy`](crate::policy::StalenessPolicy) first.
//! * **Procedures III–V** fire when the *flexible block quota* `K` of
//!   uploads has arrived — the paper's flexible block size — rather than
//!   when every participant reports: the miner drains the mempool,
//!   computes the global update under the scenario's anchor/reward
//!   policies, and seals the block at the quota's simulated time.
//!
//! ## Fault injection
//!
//! A [`FaultPlan`](bfl_net::FaultPlan) threads adversity through the same
//! handlers. Link faults strike each send: a *dropped* upload never
//! arrives (the client retransmits per the
//! [`RetryPolicy`] seam), a *duplicated*
//! upload arrives twice (the mempool's `(round, client)` dedup and the
//! engine's delivery ledger squash the copy), and a *corrupted* upload
//! arrives with one payload byte flipped — the mempool's signature check
//! is the detector and rejects it. A [`CrashSchedule`](bfl_net::CrashSchedule)
//! takes one miner down: uploads landing on it are swallowed, its pending
//! mempool entries are lost at the crash instant, and it rejoins sealing
//! only after resynchronising its replica. A
//! [`Partition`](bfl_net::Partition) splits the miner mesh: each
//! component seals its own branch (a real fork), and the first round
//! prologue after the window heals it by longest-chain adoption
//! ([`RoundConsensus::heal`]) — the losing branch's uploads are salvaged
//! or discarded per the [`ReorgPolicy`], and
//! the resolution cost is charged to the round as `T_fork` from the
//! configured [`ForkModel`](bfl_chain::ForkModel). When faults leave the
//! quota unreachable, `FaultPlan::deadline_s` degrades the round
//! gracefully: it seals with whatever arrived. Every fault coin-flip
//! draws from a dedicated RNG stream (`seed ^ 0xFA17_5EED`), so an
//! inactive plan performs **zero** extra draws and replays the fault-free
//! engine bit-for-bit.
//!
//! Stragglers beyond the quota keep their events in the queue across
//! rounds; clients leave and rejoin mid-run according to their profile's
//! churn schedule (FAIR-BFL's dynamic-join property), and every event is
//! appended to a deterministic [`EventRecord`] trace that tests pin:
//! the same scenario and seed produce the identical trace on any machine
//! and under any sweep parallelism.
//!
//! ## Population-scale rounds
//!
//! Per-round cost scales with *participants*, not the configured
//! population. Heterogeneity profiles come from a stateless oracle
//! (`ProfileConfig::profile_of`) instead of a population-sized table; an
//! implicit `ClientPool` backend (`population` module) rejection-samples
//! Procedure-I's selection without materializing a `Vec<Client>`; and
//! under [`AggregationMode::Streaming`](crate::config::AggregationMode)
//! each upload is carried as a *deferred ticket* — the local pass runs at
//! admission against the commissioning round's snapshot of the global
//! parameters (a pure function, so retries and duplicates resolve
//! identically) — and Procedure-IV folds arrivals chunk by chunk: each
//! full chunk runs Algorithm 2 as its own clustering committee and is
//! absorbed into running aggregation sums, so no round ever holds more
//! than one chunk of gradients. Rewards still settle exactly once per
//! round over the concatenated θ scores. Streaming requires the mean
//! anchor (the only anchor whose aggregation composes across chunks) and
//! a fault-free plan (crash purges and partition strands cannot un-fold
//! an absorbed chunk); validation enforces both.

use crate::aggregation::WEIGHT_FLOOR;
use crate::config::{AggregationMode, BflConfig, ProfileConfig};
use crate::contribution::analyze_contributions;
use crate::delay_model::DelayBreakdown;
use crate::detection::DetectionRow;
use crate::engine::{KeyChain, LearningState, SteppedRound};
use crate::error::CoreError;
use crate::flexibility::FlexibilityMode;
use crate::policy::{ReorgPolicy, RetryPolicy, RewardPolicy};
use crate::population::sample_population;
use crate::procedures::global_update::{self, GlobalUpdatePolicy};
use crate::procedures::local_update;
use crate::procedures::mining;
use crate::procedures::upload::VerifiedUpload;
use crate::reward::RewardEntry;
use crate::simulation::{KpiRow, RoundOutcome};
use bfl_chain::consensus::RoundConsensus;
use bfl_chain::mempool::Mempool;
use bfl_chain::Transaction;
use bfl_crypto::signature::sign_message;
use bfl_crypto::BatchVerifier;
use bfl_fl::attack::AttackKind;
use bfl_fl::client::{Client, LocalUpdate};
use bfl_fl::selection::{drop_stragglers, select_clients};
use bfl_ml::gradient;
use bfl_ml::metrics::accuracy;
use bfl_ml::model::Model;
use bfl_ml::optimizer::local_step_count;
use bfl_ml::tensor::Scratch;
use bfl_net::{EventQueue, NodeProfile, ScheduledEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// XOR'd into the scenario seed to derive the fault stream, so fault
/// coin-flips never perturb the learning stream's draw sequence.
const FAULT_STREAM: u64 = 0xFA17_5EED;

/// What happened when an event resolved — the observable half of the
/// deterministic event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventKind {
    /// Procedure-I scheduled: the client started its local pass.
    TrainingScheduled,
    /// Procedure-I finished: the client's local pass completed.
    TrainingFinished,
    /// Procedure-II completed: the upload arrived and was admitted.
    UploadArrived,
    /// The upload arrived but its signature failed verification.
    UploadRejected,
    /// The upload was lost: its client churned offline before it landed,
    /// or a miner crash wiped it from the pending pool.
    UploadLost,
    /// A stale upload was discarded by the staleness policy.
    StaleDiscarded,
    /// A stale upload was decayed and carried into the next block.
    StaleIncluded,
    /// The flexible block quota was reached; Procedures III–V fired.
    QuotaReached,
    /// A link fault dropped the upload in transit (or a downed miner
    /// swallowed it on arrival).
    UploadDropped,
    /// The client's retransmission timer fired and the upload was resent.
    UploadRetried,
    /// A redundant delivery (duplicate fault, or a retransmission racing
    /// its original) was recognised and ignored.
    DuplicateIgnored,
    /// The upload landed on the partition's secondary component and is
    /// stranded off the primary pool until the mesh heals.
    UploadStranded,
    /// The mesh healed a fork (or caught a lagging component up) by
    /// longest-chain adoption.
    ForkHealed,
    /// The round's fault deadline expired and it sealed with whatever
    /// had arrived.
    DeadlineSealed,
}

/// One entry of the deterministic event trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EventRecord {
    /// Simulated second at which the event resolved.
    pub time_s: f64,
    /// The round being executed when it resolved.
    pub round: usize,
    /// The round that commissioned the work (differs for stale uploads).
    pub born_round: usize,
    /// The client involved (`u64::MAX` for round-level events).
    pub client_id: u64,
    /// What happened.
    pub kind: EventKind,
}

/// An upload in flight: either the eagerly computed local update (the
/// PR 5/6 behaviour, bit-identity pinned), or a *deferred* commission
/// that trains at admission time — the streaming aggregation path, where
/// an event must not pin a full parameter vector per in-flight client.
///
/// A deferred ticket is resolved by a pure function of its fields (the
/// client derivation, the attack designation, the born round's seed and
/// global-parameter snapshot), so a retransmission or duplicate resolves
/// to the identical [`LocalUpdate`] the original would have.
#[derive(Clone)]
enum UploadTicket {
    /// The computed local update travels inside the event.
    Ready(LocalUpdate),
    /// The local pass runs when the upload is admitted.
    Deferred {
        client_id: u64,
        attack: Option<AttackKind>,
        /// The commissioning round's seed (Procedure-I determinism).
        born_seed: u64,
        /// The commissioning round's global parameters, shared across the
        /// round's tickets.
        snapshot: Arc<Vec<f64>>,
    },
}

impl UploadTicket {
    fn client_id(&self) -> u64 {
        match self {
            UploadTicket::Ready(update) => update.client_id,
            UploadTicket::Deferred { client_id, .. } => *client_id,
        }
    }
}

/// Timed payloads flowing through the engine's event queue.
enum EngineEvent {
    /// Procedure-I completion, carrying the upload ticket.
    TrainingFinished {
        born_round: usize,
        update: UploadTicket,
    },
    /// Procedure-II arrival at the associated miner.
    UploadArrived {
        born_round: usize,
        miner: usize,
        train_finished_s: f64,
        update: UploadTicket,
        /// Which send attempt this delivery belongs to (1-based).
        attempt: u32,
        /// In-transit corruption: `(byte index seed, xor mask)` applied
        /// to the signed envelope's payload at admission.
        corrupt: Option<(u64, u8)>,
        /// A retransmission is already armed for this commission, so the
        /// client stays busy regardless of this delivery's outcome.
        retry_pending: bool,
    },
    /// The client-side retransmission timer for a failed attempt.
    RetryTimer {
        born_round: usize,
        train_finished_s: f64,
        update: UploadTicket,
        /// The attempt number the resend will carry.
        attempt: u32,
    },
}

/// An upload admitted to the pending pool, awaiting the block quota.
struct ArrivedUpload {
    upload: VerifiedUpload,
    born_round: usize,
    /// Finish time of its Procedure-I pass (for the delay breakdown).
    train_finished_s: f64,
    /// The pass's final-epoch training loss (for the round record, which
    /// averages over the uploads that actually entered the block).
    final_epoch_loss: f64,
}

/// An upload that landed on the partition's secondary component, held
/// there until the mesh heals. Always a [`UploadTicket::Ready`] in
/// practice: streaming aggregation (the only producer of deferred
/// tickets) rejects partition plans at validation.
struct StrandedUpload {
    update: UploadTicket,
    born_round: usize,
    miner: usize,
    train_finished_s: f64,
}

/// Derives per-client heterogeneity profiles on demand — bit-identical to
/// the eager `build_profiles` table entry by entry (the contract
/// `ProfileConfig::profile_of` documents and tests pin), but O(1) memory
/// over any population size.
struct ProfileOracle {
    config: ProfileConfig,
    population: usize,
}

impl ProfileOracle {
    fn get(&self, id: u64) -> NodeProfile {
        self.config.profile_of(id as usize, self.population)
    }
}

/// The event engine's live state, embedded in
/// [`LearningState`](crate::engine::LearningState) when the scenario runs
/// a flexible block quota.
pub(crate) struct AsyncRuntime {
    queue: EventQueue<EngineEvent>,
    /// Miner-side pending pool: verified uploads waiting for the quota.
    mempool: Mempool,
    /// Per-client heterogeneity profiles, derived on demand.
    profiles: ProfileOracle,
    /// Clients with a commissioned pass or in-flight upload.
    in_flight: BTreeSet<u64>,
    /// Decoded uploads admitted this round, keyed by client id (so the
    /// merged set is ordered by client id, like the synchronous engine's).
    arrived: BTreeMap<u64, ArrivedUpload>,
    trace: Vec<EventRecord>,
    /// Dedicated RNG stream for fault coin-flips: an inactive plan draws
    /// nothing from it, keeping fault-free runs bit-identical.
    fault_rng: StdRng,
    /// Highest commissioning round delivered per client — squashes
    /// redundant deliveries (duplicates, retransmission races).
    delivered: BTreeMap<u64, usize>,
    /// Uploads held on the partition's secondary component until heal.
    stranded: Vec<StrandedUpload>,
    /// The (single-shot) partition has been healed.
    fork_healed: bool,
    /// The crashed miner's pending pool has been wiped.
    crash_purged: bool,
    /// The recovered miner has resynchronised its replica.
    crash_resynced: bool,
    /// Shared batch verifier for the arrival path: one Montgomery
    /// workspace amortised across every envelope this engine checks.
    /// Decisions are identical to per-upload `verify`, so the cache is
    /// invisible to replay determinism.
    verifier: BatchVerifier,
    /// Reusable same-timestamp batch buffers for the pump loop. Taken out
    /// at the top of each round and handed back at the end, so the
    /// steady-state loop reuses their capacity instead of reallocating
    /// two fresh buffers per round.
    due: VecDeque<ScheduledEvent<EngineEvent>>,
    drain_buf: Vec<ScheduledEvent<EngineEvent>>,
    /// Reusable training workspace for deferred-ticket resolution, so
    /// streaming rounds don't build a fresh `Scratch` per admitted
    /// upload.
    scratch: Scratch,
    /// Stale uploads discarded since the last KPI reset (one round,
    /// spanning `EmptyRound` retries).
    kpi_stale_discarded: usize,
    /// Uploads lost to drop/partition faults since the last KPI reset.
    kpi_dropped: usize,
    /// Retransmissions scheduled since the last KPI reset.
    kpi_retried: usize,
}

impl AsyncRuntime {
    pub(crate) fn new(config: &BflConfig) -> Self {
        AsyncRuntime {
            queue: EventQueue::new(),
            mempool: Mempool::new(),
            profiles: ProfileOracle {
                config: config.profiles,
                population: config.fl.clients,
            },
            in_flight: BTreeSet::new(),
            arrived: BTreeMap::new(),
            trace: Vec::new(),
            fault_rng: StdRng::seed_from_u64(config.fl.seed ^ FAULT_STREAM),
            delivered: BTreeMap::new(),
            stranded: Vec::new(),
            fork_healed: false,
            crash_purged: false,
            crash_resynced: false,
            verifier: BatchVerifier::new(),
            due: VecDeque::new(),
            drain_buf: Vec::new(),
            scratch: Scratch::new(),
            kpi_stale_discarded: 0,
            kpi_dropped: 0,
            kpi_retried: 0,
        }
    }

    /// Zeroes the per-round KPI counters. Called once per round, before
    /// the first sealing attempt, so counts accumulate across
    /// `EmptyRound` fast-forward retries — matching the trace, which
    /// also keeps every attempt's records.
    fn reset_kpi_counters(&mut self) {
        self.kpi_stale_discarded = 0;
        self.kpi_dropped = 0;
        self.kpi_retried = 0;
    }

    pub(crate) fn trace(&self) -> &[EventRecord] {
        &self.trace
    }

    fn record(
        &mut self,
        time_s: f64,
        round: usize,
        born_round: usize,
        client_id: u64,
        kind: EventKind,
    ) {
        match kind {
            EventKind::StaleDiscarded => self.kpi_stale_discarded += 1,
            EventKind::UploadLost | EventKind::UploadDropped => self.kpi_dropped += 1,
            EventKind::UploadRetried => self.kpi_retried += 1,
            _ => {}
        }
        self.trace.push(EventRecord {
            time_s,
            round,
            born_round,
            client_id,
            kind,
        });
    }
}

/// Executes one flexible-quota round: schedules this round's Procedure-I
/// passes, pumps the event queue until the block quota is reached, and
/// runs Procedures III–V at the quota's simulated time.
pub(crate) fn step_flexible(
    state: &mut LearningState<'_>,
    config: &BflConfig,
    reward_policy: &dyn RewardPolicy,
    round: usize,
    quota: usize,
) -> Result<SteppedRound, CoreError> {
    let mut rt = state
        .async_rt
        .take()
        .expect("flexible-quota runs hold an async runtime");
    rt.reset_kpi_counters();
    let mut result = step_flexible_inner(state, &mut rt, config, reward_policy, round, quota);
    // A heavily churning population can produce an attempt whose every
    // possible arrival was lost or discarded (e.g. all free clients
    // offline while the only in-flight uploads are doomed stale ones),
    // and a harsh partition can strand every upload on the secondary
    // component. That is a stall, not the end of the run: fast-forward
    // the clock to the next rejoin (or past the partition) and try the
    // round again, bounded so a schedule with no future joins still
    // surfaces `EmptyRound`. (Each retry re-runs the round prologue, so
    // cooldowns may tick once per attempt — acceptable for the
    // pathological schedules this covers.)
    for _ in 0..8 {
        if !matches!(result, Err(CoreError::EmptyRound { .. })) {
            break;
        }
        if !fast_forward_to_next_join(state, &rt)
            && !fast_forward_past_partition(state, config, &rt)
        {
            break;
        }
        result = step_flexible_inner(state, &mut rt, config, reward_policy, round, quota);
    }
    state.async_rt = Some(rt);
    result
}

/// The next simulated second strictly after `now` at which any
/// non-cooling-down client is online, if one ever will be.
fn next_join_after(state: &LearningState<'_>, rt: &AsyncRuntime, now: f64) -> Option<f64> {
    let next = (0..state.pool.population())
        .filter(|&i| !state.cooldown.contains_key(&(i as u64)))
        .map(|i| rt.profiles.get(i as u64).next_online_from(now))
        .fold(f64::INFINITY, f64::min);
    (next.is_finite() && next > now).then_some(next)
}

/// Advances the clock to the next rejoin (see [`next_join_after`]).
/// Returns `false` when that would not make progress (events still
/// pending, someone already online, or no client ever rejoins). The
/// epsilon absorbs the churn arithmetic's floating-point slack so the
/// rejoining client is online at the new instant.
fn fast_forward_to_next_join(state: &mut LearningState<'_>, rt: &AsyncRuntime) -> bool {
    if !rt.queue.is_empty() {
        return false;
    }
    let now = state.clock.now_seconds();
    match next_join_after(state, rt, now) {
        Some(next) => {
            state.clock.advance(next - now + 1e-9);
            true
        }
        None => false,
    }
}

/// Advances the clock past an active partition's heal instant, so a
/// round whose every upload stranded on the secondary component retries
/// after the mesh (and its pool, under `ReorgPolicy::Salvage`) is whole
/// again. Returns `false` when no partition is active or events are
/// still pending.
fn fast_forward_past_partition(
    state: &mut LearningState<'_>,
    config: &BflConfig,
    rt: &AsyncRuntime,
) -> bool {
    if !rt.queue.is_empty() || rt.fork_healed {
        return false;
    }
    let now = state.clock.now_seconds();
    match config.fault.partition {
        Some(p) if p.is_active(now) => {
            state.clock.advance(p.end_s() - now + 1e-9);
            true
        }
        _ => false,
    }
}

/// The round prologue's fault bookkeeping: wipes the crashed miner's
/// pending pool at the crash instant, heals the partition fork once its
/// window has passed (charging the `ForkModel` resolution cost and
/// applying the reorg policy to the stranded uploads), and resynchronises
/// a recovered miner's replica. Returns the `T_fork` seconds charged to
/// this round. A no-op (zero draws, zero clock movement) when the fault
/// plan is inactive.
fn fault_prologue(
    state: &mut LearningState<'_>,
    rt: &mut AsyncRuntime,
    config: &BflConfig,
    round: usize,
) -> f64 {
    if !config.fault.is_active() {
        return 0.0;
    }
    let now = state.clock.now_seconds();
    purge_crashed_mempool(rt, config, round, now);

    let mut t_fork = 0.0;
    if let Some(partition) = config.fault.partition {
        if !rt.fork_healed && now >= partition.end_s() && state.consensus.is_some() {
            rt.fork_healed = true;
            let consensus = state.consensus.as_mut().expect("checked above");
            if consensus.agreed_height().is_none() {
                let orphans = consensus.heal();
                let fork = &config.delay.fork;
                t_fork =
                    fork.resolution_overhead_s + fork.propagation_delay_s * orphans.len() as f64;
                state.clock.advance(t_fork);
                rt.record(now, round, round, u64::MAX, EventKind::ForkHealed);
            }
            salvage_stranded(state, rt, config, round);
        }
    }

    if let Some(crash) = config.fault.crash {
        let partition_live = config
            .fault
            .partition
            .is_some_and(|p| p.is_active(now) && !rt.fork_healed);
        if !rt.crash_resynced && now >= crash.recover_at_s() && !partition_live {
            rt.crash_resynced = true;
            // The rebooted miner pulls the canonical chain from the
            // surviving miners; no orphans, it was strictly behind.
            if let Some(consensus) = state.consensus.as_mut() {
                consensus.heal();
            }
        }
    }
    t_fork
}

/// The crash instant: every upload pending at the crashed miner vanishes
/// from the pool (and from the delivery ledger, so a redundant copy or a
/// retransmission may still save it).
fn purge_crashed_mempool(rt: &mut AsyncRuntime, config: &BflConfig, round: usize, now: f64) {
    let Some(crash) = config.fault.crash else {
        return;
    };
    if rt.crash_purged || now < crash.crash_at_s {
        return;
    }
    rt.crash_purged = true;
    let victims: Vec<u64> = rt
        .arrived
        .iter()
        .filter(|(_, a)| a.upload.miner == crash.miner)
        .map(|(&id, _)| id)
        .collect();
    for id in victims {
        let lost = rt.arrived.remove(&id).expect("victim is pending");
        rt.mempool.remove_upload(lost.born_round as u64, id);
        rt.delivered.remove(&id);
        rt.record(
            crash.crash_at_s,
            round,
            lost.born_round,
            id,
            EventKind::UploadLost,
        );
    }
}

/// Applies the reorg policy to the uploads stranded on the healed
/// partition's losing side: `Salvage` re-admits them to the winning
/// branch's pool through the staleness policy (they are by definition at
/// least one round old), `Discard` wastes their training work.
fn salvage_stranded(
    state: &mut LearningState<'_>,
    rt: &mut AsyncRuntime,
    config: &BflConfig,
    round: usize,
) {
    let stranded = std::mem::take(&mut rt.stranded);
    if stranded.is_empty() {
        return;
    }
    let now = state.clock.now_seconds();
    for s in stranded {
        let id = s.update.client_id();
        if config.reorg == ReorgPolicy::Discard {
            rt.record(now, round, s.born_round, id, EventKind::StaleDiscarded);
            continue;
        }
        // A stranded upload was never delivered — stranding happens
        // *instead of* delivery — so the client's high-water mark says
        // nothing about it even when fresher rounds delivered meanwhile.
        // The only real collision is an upload by the same client already
        // awaiting this round's seal.
        if rt.arrived.contains_key(&id) {
            rt.record(now, round, s.born_round, id, EventKind::DuplicateIgnored);
            continue;
        }
        let kind = admit_upload(
            state,
            rt,
            config,
            round,
            s.born_round,
            s.miner,
            s.train_finished_s,
            s.update,
            None,
        );
        if matches!(
            kind,
            EventKind::UploadArrived | EventKind::StaleIncluded | EventKind::StaleDiscarded
        ) {
            // Never lower the high-water mark: the client may have
            // delivered fresher rounds while this upload sat stranded.
            let mark = rt.delivered.entry(id).or_insert(s.born_round);
            *mark = (*mark).max(s.born_round);
        }
        rt.record(now, round, s.born_round, id, kind);
    }
}

/// The replica indices of one mesh component that can seal together right
/// now: alive (not mid-crash), on `component`'s side of an active
/// partition, and on the component's longest tip (a just-recovered miner
/// lags until the next heal and must not co-sign a block it cannot
/// append). Falls back to the full mesh if every primary miner is down,
/// rather than deadlocking the round.
fn sealing_members(
    consensus: &RoundConsensus,
    config: &BflConfig,
    now: f64,
    component: usize,
) -> Vec<usize> {
    let down = config
        .fault
        .crash
        .filter(|c| c.is_down(now))
        .map(|c| c.miner);
    let candidates: Vec<usize> = (0..consensus.miner_count())
        .filter(|&m| Some(m) != down)
        .filter(|&m| match config.fault.partition {
            Some(p) if p.is_active(now) => p.component_of(m) == component,
            _ => component == 0,
        })
        .collect();
    if candidates.is_empty() {
        if component != 0 {
            return Vec::new();
        }
        let all: Vec<usize> = (0..consensus.miner_count()).collect();
        return agreeing_subset(consensus, &all);
    }
    agreeing_subset(consensus, &candidates)
}

/// The subset of `candidates` sharing the longest tip among them (ties
/// toward the lowest index, deterministically).
fn agreeing_subset(consensus: &RoundConsensus, candidates: &[usize]) -> Vec<usize> {
    let leader = candidates
        .iter()
        .copied()
        .max_by_key(|&i| (consensus.replicas[i].height(), std::cmp::Reverse(i)))
        .expect("candidates is non-empty");
    let tip = consensus.replicas[leader].tip().hash();
    candidates
        .iter()
        .copied()
        .filter(|&i| consensus.replicas[i].tip().hash() == tip)
        .collect()
}

fn step_flexible_inner(
    state: &mut LearningState<'_>,
    rt: &mut AsyncRuntime,
    config: &BflConfig,
    reward_policy: &dyn RewardPolicy,
    round: usize,
    quota: usize,
) -> Result<SteppedRound, CoreError> {
    // Cooldowns advance exactly as in the synchronous engine.
    state.advance_cooldowns();

    // Fault bookkeeping precedes selection: a heal both advances the
    // clock (the fork resolution cost) and, under `Salvage`, seeds this
    // round's pool with the rescued uploads.
    let t_fork = fault_prologue(state, rt, config, round);

    // Select this round's participants among clients that are not cooling
    // down, not still busy with an earlier round's work, and online at the
    // round's start (the churn schedule's dynamic-join property). When
    // churn has taken every selectable client offline and nothing is in
    // flight, the round fast-forwards the clock to the next rejoin
    // instead of aborting — the system waits for someone to join.
    let mut round_start = state.clock.now_seconds();
    let selected_positions: Vec<usize> = if state.pool.is_implicit() {
        // Implicit populations rejection-sample the selection directly:
        // no pool vector proportional to the population ever exists.
        let mut picked = sample_flexible_pool(state, rt, config, round_start);
        if picked.is_empty() && rt.in_flight.is_empty() && fast_forward_to_next_join(state, rt) {
            round_start = state.clock.now_seconds();
            picked = sample_flexible_pool(state, rt, config, round_start);
        }
        picked
    } else {
        let build_pool = |state: &LearningState<'_>, rt: &AsyncRuntime, now: f64| -> Vec<usize> {
            (0..state.pool.population())
                .filter(|&i| {
                    let id = i as u64;
                    !state.cooldown.contains_key(&id)
                        && !rt.in_flight.contains(&id)
                        && !rt.arrived.contains_key(&id)
                        && rt.profiles.get(id).is_online(now)
                })
                .collect()
        };
        let mut pool = build_pool(state, rt, round_start);
        if pool.is_empty() && rt.in_flight.is_empty() && fast_forward_to_next_join(state, rt) {
            round_start = state.clock.now_seconds();
            pool = build_pool(state, rt, round_start);
        }
        if pool.is_empty() {
            Vec::new()
        } else {
            select_clients(pool.len(), config.fl.selected_per_round(), &mut state.rng)
                .into_iter()
                .map(|i| pool[i])
                .collect()
        }
    };
    let selected_positions =
        drop_stragglers(&selected_positions, config.fl.drop_percent, &mut state.rng);

    // Designation drives Procedure-I's forging; the outcome's attacker
    // list is rebuilt later from the uploads that entered the block, so
    // stale attackers land in the round they were actually judged in.
    let (attacks, _designated) = state.designate_attackers(config, &selected_positions);

    // Procedure-I. Under materialized aggregation the local passes are
    // computed eagerly (their *content* is a pure function of the round
    // seed) but *finish* at profile-scaled simulated times — that is what
    // the events model. Under streaming aggregation each pass is deferred
    // into its ticket and runs at admission against this round's
    // parameter snapshot, so in-flight state is O(1) per client.
    let round_seed = config.fl.seed ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15);
    if config.aggregation.is_streaming() {
        let snapshot = Arc::new(state.global_params.clone());
        for (i, &position) in selected_positions.iter().enumerate() {
            let id = position as u64;
            let steps = local_step_count(state.pool.sample_count(position), &state.local_config);
            let finish = round_start
                + rt.profiles
                    .get(id)
                    .training_seconds(config.delay.t_local(steps));
            rt.record(round_start, round, round, id, EventKind::TrainingScheduled);
            rt.in_flight.insert(id);
            rt.queue.push(
                finish,
                EngineEvent::TrainingFinished {
                    born_round: round,
                    update: UploadTicket::Deferred {
                        client_id: id,
                        attack: attacks[i],
                        born_seed: round_seed,
                        snapshot: Arc::clone(&snapshot),
                    },
                },
            );
        }
    } else {
        let updates = if state.pool.is_implicit() {
            // Materialize exactly the round's working set and train over
            // identity positions (client id == population index).
            let round_clients: Vec<Client> = selected_positions
                .iter()
                .map(|&p| state.pool.client_cloned(p))
                .collect();
            let identity: Vec<usize> = (0..round_clients.len()).collect();
            local_update::run_local_updates_with_attacks(
                &round_clients,
                &identity,
                &attacks,
                config.fl.model,
                &state.global_params,
                state.train,
                &state.local_config,
                round_seed,
            )
        } else {
            local_update::run_local_updates_with_attacks(
                state.pool.materialized_slice(),
                &selected_positions,
                &attacks,
                config.fl.model,
                &state.global_params,
                state.train,
                &state.local_config,
                round_seed,
            )
        };
        for (&position, update) in selected_positions.iter().zip(updates) {
            let id = update.client_id;
            let steps = local_step_count(state.pool.sample_count(position), &state.local_config);
            let finish = round_start
                + rt.profiles
                    .get(id)
                    .training_seconds(config.delay.t_local(steps));
            rt.record(round_start, round, round, id, EventKind::TrainingScheduled);
            rt.in_flight.insert(id);
            rt.queue.push(
                finish,
                EngineEvent::TrainingFinished {
                    born_round: round,
                    update: UploadTicket::Ready(update),
                },
            );
        }
    }

    // The flexible block quota: K uploads seal the block, capped at what
    // can still possibly arrive so a small round cannot deadlock. A round
    // seeded by salvaged uploads may seal on them alone.
    let target = quota.min(rt.in_flight.len());
    if target == 0 && rt.arrived.is_empty() {
        return Err(CoreError::EmptyRound { round });
    }

    // The streaming fold: absorbed chunks count toward the quota even
    // though `rt.arrived` (now a chunk buffer, not the round's full set)
    // has been drained into the running sums.
    let signed_mining = config.mode.mines() && state.keys.is_some();
    let mut fold = match config.aggregation {
        AggregationMode::Streaming { chunk } => {
            Some(StreamFold::new(chunk, state.global_params.len()))
        }
        AggregationMode::Materialized => None,
    };

    // Pump the queue until the quota is reached (or nothing is left in
    // flight — churn losses, drops and rejections can shrink a round, and
    // the fault deadline cuts the wait short).
    let deadline = (config.fault.deadline_s > 0.0).then_some(round_start + config.fault.deadline_s);
    let stranded_mark = rt.stranded.len();
    let mut quota_time = round_start;
    let mut deadline_hit = false;
    // Same-timestamp events are drained from the lane-sharded queue as one
    // batch (`pop_due_batch`) and fed through the pump from `due`. The
    // quota and deadline are re-checked before *each* member — exactly the
    // checks the one-at-a-time loop ran per pop — and whatever the round
    // seals without goes back via `reinsert` with its original sequence
    // number, so batching is invisible to replay: events scheduled while a
    // batch is processed always carry larger sequence numbers and so sort
    // after the drained members even at the same timestamp.
    let mut due = std::mem::take(&mut rt.due);
    let mut drain_buf = std::mem::take(&mut rt.drain_buf);
    while rt.arrived.len() + fold.as_ref().map_or(0, |f| f.admitted) < target {
        let pending = rt.arrived.len() + fold.as_ref().map_or(0, |f| f.admitted);
        let next_time = due
            .front()
            .map(|e| e.time_s)
            .or_else(|| rt.queue.peek_time());
        if let (Some(deadline), Some(next)) = (deadline, next_time) {
            if next > deadline && pending > 0 {
                deadline_hit = true;
                break;
            }
        }
        let event = match due.pop_front() {
            Some(event) => event,
            None => {
                if rt.queue.pop_due_batch(&mut drain_buf) == 0 {
                    break;
                }
                due.extend(drain_buf.drain(..));
                due.pop_front().expect("drained batch is non-empty")
            }
        };
        let time = event.time_s;
        // A crash mid-pump wipes the victim miner's pending pool.
        purge_crashed_mempool(rt, config, round, time);
        match event.payload {
            EngineEvent::TrainingFinished { born_round, update } => {
                let id = update.client_id();
                rt.record(time, round, born_round, id, EventKind::TrainingFinished);
                send_upload(state, rt, config, round, time, born_round, time, update, 1);
            }
            EngineEvent::RetryTimer {
                born_round,
                train_finished_s,
                update,
                attempt,
            } => {
                let id = update.client_id();
                rt.record(time, round, born_round, id, EventKind::UploadRetried);
                send_upload(
                    state,
                    rt,
                    config,
                    round,
                    time,
                    born_round,
                    train_finished_s,
                    update,
                    attempt,
                );
            }
            EngineEvent::UploadArrived {
                born_round,
                miner,
                train_finished_s,
                update,
                attempt,
                corrupt,
                retry_pending,
            } => {
                let id = update.client_id();
                if !retry_pending {
                    rt.in_flight.remove(&id);
                }
                // A client that churned offline mid-flight loses its
                // upload (and retransmits once back online, when the
                // policy allows).
                if !rt.profiles.get(id).is_online(time) {
                    rt.record(time, round, born_round, id, EventKind::UploadLost);
                    if !retry_pending {
                        let earliest = rt.profiles.get(id).next_online_from(time);
                        if earliest.is_finite()
                            && schedule_retry(
                                rt,
                                config,
                                time,
                                born_round,
                                train_finished_s,
                                update,
                                attempt,
                                earliest,
                            )
                        {
                            rt.in_flight.insert(id);
                        }
                    }
                    continue;
                }
                // Partition: an upload landing on the secondary component
                // is verified there but stranded off the primary pool
                // until the mesh heals.
                let stranded_here = state.consensus.is_some()
                    && config
                        .fault
                        .partition
                        .is_some_and(|p| p.is_active(time) && p.component_of(miner) == 1);
                if stranded_here {
                    if corrupt.is_some() && state.keys.is_some() {
                        // The secondary miner checks signatures too.
                        rt.record(time, round, born_round, id, EventKind::UploadRejected);
                    } else {
                        rt.record(time, round, born_round, id, EventKind::UploadStranded);
                        rt.stranded.push(StrandedUpload {
                            update,
                            born_round,
                            miner,
                            train_finished_s,
                        });
                    }
                    continue;
                }
                // Redundant deliveries (duplicate fault, or a
                // retransmission racing its original) are squashed by the
                // per-commission delivery ledger.
                if rt.delivered.get(&id).is_some_and(|&r| r >= born_round)
                    || rt.arrived.contains_key(&id)
                {
                    rt.record(time, round, born_round, id, EventKind::DuplicateIgnored);
                    continue;
                }
                let kind = admit_upload(
                    state,
                    rt,
                    config,
                    round,
                    born_round,
                    miner,
                    train_finished_s,
                    update,
                    corrupt,
                );
                rt.record(time, round, born_round, id, kind);
                match kind {
                    EventKind::UploadArrived | EventKind::StaleIncluded => {
                        rt.delivered.insert(id, born_round);
                        quota_time = time;
                    }
                    EventKind::StaleDiscarded => {
                        rt.delivered.insert(id, born_round);
                    }
                    _ => {}
                }
                // Streaming: a full chunk is absorbed into the running
                // sums immediately, keeping the buffer (and the mempool)
                // bounded by the chunk size.
                if let Some(fold) = fold.as_mut() {
                    if rt.arrived.len() >= fold.chunk {
                        fold.flush(rt, config, round, round_start, signed_mining);
                    }
                }
            }
        }
    }
    // Batch members the round sealed without go back into the queue at
    // their original `(time, seq)` slots, as if never popped; the drained
    // buffers return to the runtime for the next round.
    for event in due.drain(..) {
        rt.queue.reinsert(event);
    }
    rt.due = due;
    rt.drain_buf = drain_buf;

    if rt.arrived.len() + fold.as_ref().map_or(0, |f| f.admitted) == 0 {
        return Err(CoreError::EmptyRound { round });
    }
    // Only record the quota as *reached* when it actually was: churn
    // losses and rejections can drain the queue short, in which case the
    // round seals with what arrived but the trace must not claim K.
    if rt.arrived.len() + fold.as_ref().map_or(0, |f| f.admitted) >= target {
        rt.record(quota_time, round, round, u64::MAX, EventKind::QuotaReached);
    } else if deadline_hit {
        let expired = deadline.expect("deadline_hit implies a deadline");
        rt.record(expired, round, round, u64::MAX, EventKind::DeadlineSealed);
    }

    // KPI snapshot, taken before sealing drains the buffer: how many
    // uploads were pending at the instant the quota (or deadline) fired.
    // The streaming path reports its un-flushed tail, which is the whole
    // buffer it keeps.
    let mempool_depth_at_seal = rt.arrived.len();

    // Procedure-IV at the quota's simulated time, under the scenario's
    // anchor and reward policies. The materialized path assembles the
    // round's full gradient set and runs `compute_global_update` exactly
    // as the synchronous engine does; the streaming path absorbs the
    // final partial chunk and seals the fold's running sums.
    let sealed = match fold {
        Some(mut fold) => {
            fold.flush(rt, config, round, round_start, signed_mining);
            fold.seal(round, config, reward_policy)
        }
        None => {
            // Assemble the round's gradient set. When signature
            // verification is on, mining modes drain the miner's mempool —
            // the pool the signed uploads were admitted through — and the
            // drained transactions must agree with the arrival metadata by
            // construction. (The unsigned ablation has nothing to verify,
            // so it bypasses the pool entirely.)
            let arrived: Vec<(u64, ArrivedUpload)> =
                std::mem::take(&mut rt.arrived).into_iter().collect();
            if signed_mining {
                let drained = rt.mempool.drain_all();
                debug_assert_eq!(
                    drained.len(),
                    arrived.len(),
                    "the mempool holds exactly the pending uploads"
                );
                debug_assert_eq!(
                    drained
                        .iter()
                        .map(|tx| tx.submitter)
                        .collect::<BTreeSet<u64>>(),
                    arrived.iter().map(|(id, _)| *id).collect::<BTreeSet<u64>>(),
                    "the mempool and the arrival metadata agree on the pending clients"
                );
            }
            let stale_included = arrived.iter().filter(|(_, a)| a.born_round < round).count();
            let max_own_finish = arrived
                .iter()
                .filter(|(_, a)| a.born_round == round)
                .map(|(_, a)| a.train_finished_s - round_start)
                .fold(0.0f64, f64::max);
            // The round record averages the losses of the passes that
            // actually entered the block (never empty here), so a
            // stale-heavy round reports its real training loss instead of
            // a 0.0 sentinel.
            let train_loss =
                arrived.iter().map(|(_, a)| a.final_epoch_loss).sum::<f64>() / arrived.len() as f64;
            let merged: Vec<VerifiedUpload> = arrived.into_iter().map(|(_, a)| a.upload).collect();
            // Ground truth for the detection row: the forged uploads *in
            // this block* — a stale attacker is attributed to the round
            // whose block (and Algorithm 2 pass) it actually entered,
            // keeping attacker and dropped sets over the same population.
            let block_attackers: Vec<u64> = merged
                .iter()
                .filter(|u| u.forged)
                .map(|u| u.client_id)
                .collect();
            let mut global = global_update::compute_global_update(
                &merged,
                &GlobalUpdatePolicy {
                    clustering: &config.clustering,
                    metric: config.metric,
                    strategy: config.strategy,
                    fair_aggregation: config.fair_aggregation,
                    anchor: config.anchor,
                    round,
                    reward: reward_policy,
                },
            );
            SealedRound {
                participants: merged.len(),
                stale_included,
                max_own_finish,
                train_loss,
                block_attackers,
                global_params: std::mem::take(&mut global.global_params),
                rewards: global.report.rewards,
                dropped: global.dropped,
                high_contributors: global.report.high_contribution.len(),
            }
        }
    };
    state.global_params = sealed.global_params;
    state.global_model.set_params(&state.global_params);

    // The round's delay breakdown, read off the event clock: the wait for
    // the quota decomposes into the slowest counted own-round local pass
    // (T_local) and the remaining upload tail (T_up); exchange,
    // aggregation and mining costs come from the delay model as in the
    // synchronous engine.
    let wait = (quota_time - round_start).max(0.0);
    let t_local = sealed.max_own_finish.clamp(0.0, wait);
    let full = config.mode == FlexibilityMode::FullBfl;
    let t_ex = if full {
        config
            .delay
            .t_ex(sealed.participants, config.miners, &mut state.rng)
    } else {
        0.0
    };
    let t_gl = if full {
        config.delay.t_gl(sealed.participants + 1)
    } else {
        config.delay.aggregation_seconds
    };

    // Procedure-V: the winning miner seals the block at the quota time
    // (plus exchange and aggregation), while late events stay queued.
    // Under a partition or crash only the reachable component seals —
    // and while the mesh is split, the secondary component seals its own
    // block over the uploads stranded on its side, growing the divergent
    // branch the heal will have to resolve.
    state.clock.advance(wait + t_ex + t_gl);
    let block_hash = if let Some(consensus) = state.consensus.as_mut() {
        let seal_s = state.clock.now_seconds();
        let outcome = if config.fault.partition.is_none() && config.fault.crash.is_none() {
            mining::mine_round(
                consensus,
                round as u64,
                &state.global_params,
                &sealed.rewards,
                state.clock.now_millis(),
                &mut state.rng,
            )?
        } else {
            let members = sealing_members(consensus, config, seal_s, 0);
            mining::mine_round_among(
                consensus,
                &members,
                round as u64,
                &state.global_params,
                &sealed.rewards,
                state.clock.now_millis(),
                &mut state.rng,
            )?
        };
        if let Some(partition) = config.fault.partition {
            let fresh = &rt.stranded[stranded_mark.min(rt.stranded.len())..];
            if partition.is_active(seal_s) && !fresh.is_empty() {
                let secondary = sealing_members(consensus, config, seal_s, 1);
                if !secondary.is_empty() {
                    // The secondary component aggregates what it has —
                    // the stranded uploads — and seals its own block.
                    let refs: Vec<&[f64]> = fresh
                        .iter()
                        .map(|s| match &s.update {
                            UploadTicket::Ready(update) => update.params.as_slice(),
                            UploadTicket::Deferred { .. } => {
                                unreachable!("streaming aggregation rejects partition plans")
                            }
                        })
                        .collect();
                    let branch_params = gradient::average_refs(&refs);
                    let submitter = consensus.miners[secondary[0]].id;
                    let txs = mining::build_block_transactions(
                        submitter,
                        round as u64,
                        &branch_params,
                        &[],
                    );
                    consensus
                        .seal_round_among(&secondary, txs, state.clock.now_millis(), &mut state.rng)
                        .map_err(CoreError::from)?;
                }
            }
        }
        Some(outcome.block.hash_hex())
    } else {
        None
    };
    let t_bl = if full {
        config.delay.t_bl(config.miners, &mut state.rng)
    } else {
        0.0
    };
    state.clock.advance(t_bl);

    state.apply_discard_cooldowns(config, &sealed.dropped);

    let breakdown = DelayBreakdown {
        t_local,
        t_up: wait - t_local,
        t_ex,
        t_gl,
        t_bl,
        t_queue: 0.0,
        t_fork,
    };

    let test_accuracy = accuracy(
        &state.global_model,
        &state.test.features,
        &state.test.labels,
        None,
    );
    let rewards_paid = sealed.rewards.iter().map(|r| r.amount_milli).sum();
    let detection_row = DetectionRow::new(round, &sealed.block_attackers, &sealed.dropped);
    let outcome = RoundOutcome {
        round,
        breakdown,
        accuracy: test_accuracy,
        train_loss: sealed.train_loss,
        participants: sealed.participants,
        stale_included: sealed.stale_included,
        attackers: sealed.block_attackers,
        dropped: sealed.dropped,
        high_contributors: sealed.high_contributors,
        rewards_paid_milli: rewards_paid,
        rewards: sealed.rewards,
        block_hash,
        kpi: KpiRow {
            makespan_s: breakdown.total(),
            mempool_depth_at_seal,
            stale_included: sealed.stale_included,
            stale_discarded: rt.kpi_stale_discarded,
            dropped_uploads: rt.kpi_dropped,
            retried_uploads: rt.kpi_retried,
        },
    };
    Ok((outcome, state.clock.now_seconds(), Some(detection_row)))
}

/// Procedure-I selection over an implicit population: rejection-samples
/// this round's participants directly against the event-engine
/// eligibility predicate (not cooling down, not busy, online at `now`),
/// so no pool vector proportional to the population is ever built.
fn sample_flexible_pool(
    state: &mut LearningState<'_>,
    rt: &AsyncRuntime,
    config: &BflConfig,
    now: f64,
) -> Vec<usize> {
    let population = state.pool.population();
    let LearningState { cooldown, rng, .. } = state;
    sample_population(
        population,
        config.fl.selected_per_round(),
        |i| {
            let id = i as u64;
            !cooldown.contains_key(&id)
                && !rt.in_flight.contains(&id)
                && !rt.arrived.contains_key(&id)
                && rt.profiles.get(id).is_online(now)
        },
        rng,
    )
}

/// What Procedures III–V consume, produced either by the materialized
/// round-end assembly or by sealing a [`StreamFold`].
struct SealedRound {
    participants: usize,
    stale_included: usize,
    max_own_finish: f64,
    train_loss: f64,
    block_attackers: Vec<u64>,
    global_params: Vec<f64>,
    rewards: Vec<RewardEntry>,
    dropped: Vec<u64>,
    high_contributors: usize,
}

/// The streaming Procedure-IV fold: uploads are absorbed chunk by chunk
/// into running aggregation sums, so a round's live gradient memory is
/// bounded by the chunk size instead of the quota.
///
/// Each full chunk runs Algorithm 2 as its own clustering committee
/// (anchor, clustering, θ over the chunk); the kept uploads are folded
/// into `Σ θᵢ·uᵢ / Σ θᵢ` (Equation 1 — exactly the composition the mean
/// anchor admits, which is why validation requires it) or a plain running
/// mean when fair aggregation is off. Rewards are **not** settled per
/// chunk — the proportional policy normalizes per call, so θ scores
/// concatenate across chunks and settle exactly once at
/// [`StreamFold::seal`].
struct StreamFold {
    chunk: usize,
    /// Uploads absorbed so far (they count toward the quota).
    admitted: usize,
    /// Σ θᵢ·uᵢ over kept uploads (fair aggregation).
    weighted_sum: Vec<f64>,
    /// Σ θᵢ over kept uploads (fair aggregation).
    weight_sum: f64,
    /// Σ uᵢ over kept uploads (plain averaging).
    plain_sum: Vec<f64>,
    /// Kept-upload count (plain averaging).
    kept_count: usize,
    /// Concatenated (id, θ) high-contribution pairs across chunks.
    scores: Vec<(u64, f64)>,
    /// Concatenated low-contribution ids across chunks.
    low: Vec<u64>,
    /// Forged uploads absorbed into the block.
    forged: Vec<u64>,
    stale_included: usize,
    max_own_finish: f64,
    loss_sum: f64,
}

impl StreamFold {
    fn new(chunk: usize, dim: usize) -> Self {
        StreamFold {
            chunk: chunk.max(1),
            admitted: 0,
            weighted_sum: vec![0.0; dim],
            weight_sum: 0.0,
            plain_sum: vec![0.0; dim],
            kept_count: 0,
            scores: Vec::new(),
            low: Vec::new(),
            forged: Vec::new(),
            stale_included: 0,
            max_own_finish: 0.0,
            loss_sum: 0.0,
        }
    }

    /// Drains the arrival buffer (and, in signed mining modes, the
    /// mempool) and absorbs the chunk into the running sums.
    fn flush(
        &mut self,
        rt: &mut AsyncRuntime,
        config: &BflConfig,
        round: usize,
        round_start: f64,
        signed_mining: bool,
    ) {
        if rt.arrived.is_empty() {
            return;
        }
        let chunk: Vec<(u64, ArrivedUpload)> =
            std::mem::take(&mut rt.arrived).into_iter().collect();
        if signed_mining {
            let drained = rt.mempool.drain_all();
            debug_assert_eq!(
                drained.len(),
                chunk.len(),
                "the mempool holds exactly the pending chunk"
            );
        }
        self.admitted += chunk.len();
        self.stale_included += chunk.iter().filter(|(_, a)| a.born_round < round).count();
        self.max_own_finish = chunk
            .iter()
            .filter(|(_, a)| a.born_round == round)
            .map(|(_, a)| a.train_finished_s - round_start)
            .fold(self.max_own_finish, f64::max);
        self.loss_sum += chunk.iter().map(|(_, a)| a.final_epoch_loss).sum::<f64>();
        let uploads: Vec<VerifiedUpload> = chunk.into_iter().map(|(_, a)| a.upload).collect();
        self.forged
            .extend(uploads.iter().filter(|u| u.forged).map(|u| u.client_id));

        // Algorithm 2 over the chunk committee.
        let refs: Vec<(u64, &[f64])> = uploads
            .iter()
            .map(|u| (u.client_id, u.params.as_slice()))
            .collect();
        let analysis =
            analyze_contributions(&refs, &config.clustering, config.metric, config.anchor);
        let dropped: BTreeSet<u64> = if config.strategy.discards() {
            analysis.low_contribution.iter().copied().collect()
        } else {
            BTreeSet::new()
        };
        for (id, params) in &refs {
            if dropped.contains(id) {
                continue;
            }
            // Kept-but-low uploads (the keep strategy) weigh in at the
            // floor, mirroring `compute_global_update`.
            let theta = analysis
                .high_contribution
                .iter()
                .find(|(hid, _)| hid == id)
                .map(|&(_, t)| t)
                .unwrap_or(WEIGHT_FLOOR);
            if config.fair_aggregation {
                for (acc, &v) in self.weighted_sum.iter_mut().zip(*params) {
                    *acc += theta * v;
                }
                self.weight_sum += theta;
            } else {
                for (acc, &v) in self.plain_sum.iter_mut().zip(*params) {
                    *acc += v;
                }
                self.kept_count += 1;
            }
        }
        self.scores.extend(analysis.high_contribution);
        self.low.extend(analysis.low_contribution);
    }

    /// Settles the round: normalizes the running sums into the global
    /// parameters and pays rewards exactly once over the concatenated
    /// θ scores (sorted by client id, the materialized path's order).
    fn seal(
        self,
        round: usize,
        config: &BflConfig,
        reward_policy: &dyn RewardPolicy,
    ) -> SealedRound {
        debug_assert!(self.admitted > 0, "sealing an empty fold");
        let global_params: Vec<f64> = if config.fair_aggregation {
            self.weighted_sum
                .iter()
                .map(|&v| v / self.weight_sum)
                .collect()
        } else {
            self.plain_sum
                .iter()
                .map(|&v| v / self.kept_count.max(1) as f64)
                .collect()
        };
        let mut scores = self.scores;
        scores.sort_unstable_by_key(|entry| entry.0);
        let rewards = reward_policy.round_rewards(round, &scores);
        let mut dropped = if config.strategy.discards() {
            self.low
        } else {
            Vec::new()
        };
        dropped.sort_unstable();
        let mut block_attackers = self.forged;
        block_attackers.sort_unstable();
        SealedRound {
            participants: self.admitted,
            stale_included: self.stale_included,
            max_own_finish: self.max_own_finish,
            train_loss: self.loss_sum / self.admitted as f64,
            block_attackers,
            global_params,
            rewards,
            dropped,
            high_contributors: scores.len(),
        }
    }
}

/// Procedure-II's send step: topology-driven miner association, uplink
/// latency, and — only while the fault plan's link window is active —
/// the drop/corrupt/duplicate coin-flips from the dedicated fault
/// stream. A fault-free send performs exactly the draws of the PR 5
/// engine (one association, one latency sample) and schedules exactly
/// one arrival.
#[allow(clippy::too_many_arguments)]
fn send_upload(
    state: &mut LearningState<'_>,
    rt: &mut AsyncRuntime,
    config: &BflConfig,
    round: usize,
    time: f64,
    born_round: usize,
    train_finished_s: f64,
    update: UploadTicket,
    attempt: u32,
) {
    let id = update.client_id();
    let miner = state.topology.associate_one(&mut state.rng);
    let transfer = config.delay.gradient_bytes as f64 / config.delay.uplink.bandwidth_bytes_per_s;
    let latency = rt.profiles.get(id).uplink.sample(&mut state.rng);
    let arrival = time + latency + transfer + config.delay.upload_processing_s;

    let faults = &config.fault.uplink;
    let mut dropped = false;
    let mut corrupt = None;
    let mut duplicated = false;
    if faults.is_active() && faults.window.contains(time) {
        if faults.drop_rate > 0.0 {
            dropped = rt.fault_rng.gen::<f64>() < faults.drop_rate;
        }
        if !dropped && faults.corrupt_rate > 0.0 && rt.fault_rng.gen::<f64>() < faults.corrupt_rate
        {
            corrupt = Some((rt.fault_rng.gen::<u64>(), rt.fault_rng.gen_range(1..=255u8)));
        }
        if !dropped && faults.duplicate_rate > 0.0 {
            duplicated = rt.fault_rng.gen::<f64>() < faults.duplicate_rate;
        }
    }
    // A miner that is down when the upload would land swallows it whole.
    let swallowed = config
        .fault
        .crash
        .is_some_and(|c| c.miner == miner && c.is_down(arrival));

    if dropped || swallowed {
        rt.record(time, round, born_round, id, EventKind::UploadDropped);
        if !schedule_retry(
            rt,
            config,
            time,
            born_round,
            train_finished_s,
            update,
            attempt,
            time,
        ) {
            rt.in_flight.remove(&id);
        }
        return;
    }

    // A corrupted upload is certain to be rejected at the miner, so the
    // client's retransmission timer (when the policy grants one) is
    // armed at send time — the timeout models the missing receipt.
    let certain_reject = corrupt.is_some() && state.keys.is_some();
    let retry_pending = certain_reject
        && schedule_retry(
            rt,
            config,
            time,
            born_round,
            train_finished_s,
            update.clone(),
            attempt,
            time,
        );

    if duplicated {
        // The duplicate is an independent network copy arriving one
        // store-and-forward later; corruption strikes per copy, so the
        // clone arrives clean.
        rt.queue.push(
            arrival + transfer + config.delay.upload_processing_s,
            EngineEvent::UploadArrived {
                born_round,
                miner,
                train_finished_s,
                update: update.clone(),
                attempt,
                corrupt: None,
                retry_pending,
            },
        );
    }
    rt.queue.push(
        arrival,
        EngineEvent::UploadArrived {
            born_round,
            miner,
            train_finished_s,
            update,
            attempt,
            corrupt,
            retry_pending,
        },
    );
}

/// Arms the client-side retransmission timer for a failed send attempt.
/// Returns `false` when the retry policy grants no further attempt. The
/// resend fires no earlier than `earliest` (a churned client waits for
/// its next online window).
#[allow(clippy::too_many_arguments)]
fn schedule_retry(
    rt: &mut AsyncRuntime,
    config: &BflConfig,
    now: f64,
    born_round: usize,
    train_finished_s: f64,
    update: UploadTicket,
    attempt: u32,
    earliest: f64,
) -> bool {
    let jitter01 = match config.retry {
        RetryPolicy::Backoff { jitter_s, .. } if jitter_s > 0.0 => rt.fault_rng.gen::<f64>(),
        _ => 0.0,
    };
    match config.retry.backoff_delay(attempt, jitter01) {
        Some(delay) => {
            rt.queue.push(
                (now + delay).max(earliest),
                EngineEvent::RetryTimer {
                    born_round,
                    train_finished_s,
                    update,
                    attempt: attempt + 1,
                },
            );
            true
        }
        None => false,
    }
}

/// The `UploadArrived` handler's admission step: staleness policy for
/// late uploads, Procedure-II signing, in-transit corruption, and
/// signature verification (through the chain's mempool in mining modes —
/// the Figure 2 step). Returns the trace kind of the resolution.
#[allow(clippy::too_many_arguments)]
fn admit_upload(
    state: &mut LearningState<'_>,
    rt: &mut AsyncRuntime,
    config: &BflConfig,
    round: usize,
    born_round: usize,
    miner: usize,
    train_finished_s: f64,
    ticket: UploadTicket,
    corrupt: Option<(u64, u8)>,
) -> EventKind {
    // A deferred ticket runs its local pass now, against the commissioning
    // round's parameter snapshot — a pure function of the ticket, so a
    // retransmission or duplicate resolves to the identical update.
    let update = match ticket {
        UploadTicket::Ready(update) => update,
        UploadTicket::Deferred {
            client_id,
            attack,
            born_seed,
            snapshot,
        } => resolve_deferred(
            state,
            &mut rt.scratch,
            config,
            client_id,
            attack,
            born_seed,
            &snapshot,
        ),
    };
    let id = update.client_id;
    let forged = update.forged;
    let final_epoch_loss = update.stats.final_epoch_loss;
    let age = round - born_round;
    let mines = config.mode.mines();

    // Stale uploads consult the staleness policy first: a `Discard`
    // verdict must not pay for an RSA signing operation it throws away.
    let decayed = if age > 0 {
        match config
            .staleness
            .apply(&state.global_params, &update.params, age)
        {
            None => return EventKind::StaleDiscarded,
            Some(decayed) => Some(decayed),
        }
    } else {
        None
    };

    // Procedure-II signing: the client signs what it *sent* (the original
    // upload). The sent gradient is serialized at most once — the buffer
    // doubles as a fresh upload's transaction payload below. A lazy key
    // chain derives (or LRU-touches) the identity right here, so stale
    // and retried uploads stay signable after any amount of eviction.
    let signing_key = match state.keys.as_mut() {
        Some(chain) => match chain.signing_pair(id) {
            Some(pair) => Some(pair),
            None => return EventKind::UploadRejected,
        },
        None => None,
    };
    let sent_bytes = signing_key
        .is_some()
        .then(|| gradient::to_bytes(&update.params));
    let mut envelope = signing_key.map(|pair| {
        sign_message(
            id,
            sent_bytes
                .as_deref()
                .expect("signing serialized the upload"),
            &pair.private,
        )
    });
    // The corrupt fault flips one byte of the signed envelope in transit;
    // the miner's signature check below is the detector. (The unsigned
    // ablation has no envelope — and no detector.)
    if let (Some((seed, flip)), Some(env)) = (corrupt, envelope.as_mut()) {
        if !env.payload.is_empty() {
            let index = seed as usize % env.payload.len();
            env.payload[index] ^= flip;
        }
    }

    // What the block may aggregate: the decayed vector for carried stale
    // uploads, the sent vector (moved, not cloned) for fresh ones.
    let signed = envelope.is_some();
    let (params, tx_bytes, kind) = match decayed {
        Some(decayed) => {
            let bytes = (mines && signed).then(|| gradient::to_bytes(&decayed));
            (decayed, bytes, EventKind::StaleIncluded)
        }
        None => (update.params, sent_bytes, EventKind::UploadArrived),
    };

    // Miner-side verification against the registered key, at mempool
    // admission (Figure 2); FL-only mode verifies without a pool, and
    // the unsigned ablation has nothing to verify so it bypasses the
    // mempool entirely.
    if let (Some(envelope), Some(store)) = (&envelope, state.keys.as_ref().map(KeyChain::store)) {
        if mines {
            let tx = Transaction::local_gradient(
                id,
                born_round as u64,
                tx_bytes.expect("signed uploads serialized the admitted payload"),
            );
            match rt
                .mempool
                .submit_signed_with(tx, envelope, store, &mut rt.verifier)
            {
                Err(_) => return EventKind::UploadRejected,
                Ok(false) => return EventKind::DuplicateIgnored,
                Ok(true) => {}
            }
        } else if store.verify_cached(envelope, &mut rt.verifier).is_err() {
            return EventKind::UploadRejected;
        }
    }

    let previous = rt.arrived.insert(
        id,
        ArrivedUpload {
            upload: VerifiedUpload {
                client_id: id,
                miner,
                params,
                forged,
            },
            born_round,
            train_finished_s,
            final_epoch_loss,
        },
    );
    debug_assert!(
        previous.is_none(),
        "a client never has two uploads pending at once"
    );
    kind
}

/// Runs a deferred ticket's Procedure-I pass at admission time: the
/// client (materialized from the pool if implicit) trains against the
/// commissioning round's global-parameter snapshot under its designated
/// attack and the born round's seed, reusing the runtime's training
/// workspace.
#[allow(clippy::too_many_arguments)]
fn resolve_deferred(
    state: &mut LearningState<'_>,
    scratch: &mut Scratch,
    config: &BflConfig,
    client_id: u64,
    attack: Option<AttackKind>,
    born_seed: u64,
    snapshot: &[f64],
) -> LocalUpdate {
    let train = state.train;
    let local = state.local_config;
    state.pool.client(client_id as usize).local_update_as(
        attack,
        config.fl.model,
        snapshot,
        &train.features,
        &train.labels,
        &local,
        born_seed,
        scratch,
    )
}
