//! The event-driven round engine: flexible block quotas, stragglers, and
//! client churn on the simulated clock.
//!
//! Under [`SyncMode::FlexibleQuota`](crate::config::SyncMode) Procedures
//! I–V stop executing in lockstep and become *event handlers* on
//! `bfl-net`'s deterministic [`EventQueue`]:
//!
//! * **Procedure-I** is scheduled: each selected client's local pass
//!   finishes at `round start + t_local · compute_multiplier` of its
//!   [`NodeProfile`], producing a `TrainingFinished` event.
//! * **Procedure-II** is the `TrainingFinished` handler: the client signs
//!   its gradient, associates with a random miner, and the upload is
//!   scheduled to arrive after its profile's uplink latency plus the
//!   payload transfer and miner-side processing time.
//! * The `UploadArrived` handler verifies the signature and admits the
//!   upload into the chain's [`Mempool`] (via
//!   [`Mempool::submit_signed`], the Figure 2 verification step). Stale
//!   uploads — commissioned in an earlier round, arriving after that
//!   round's block sealed — pass through the configured
//!   [`StalenessPolicy`](crate::policy::StalenessPolicy) first.
//! * **Procedures III–V** fire when the *flexible block quota* `K` of
//!   uploads has arrived — the paper's flexible block size — rather than
//!   when every participant reports: the miner drains the mempool,
//!   computes the global update under the scenario's anchor/reward
//!   policies, and seals the block at the quota's simulated time.
//!
//! Stragglers beyond the quota keep their events in the queue across
//! rounds; clients leave and rejoin mid-run according to their profile's
//! churn schedule (FAIR-BFL's dynamic-join property), and every event is
//! appended to a deterministic [`EventRecord`] trace that tests pin:
//! the same scenario and seed produce the identical trace on any machine
//! and under any sweep parallelism.

use crate::config::BflConfig;
use crate::delay_model::DelayBreakdown;
use crate::detection::DetectionRow;
use crate::engine::{LearningState, SteppedRound};
use crate::error::CoreError;
use crate::flexibility::FlexibilityMode;
use crate::policy::RewardPolicy;
use crate::procedures::global_update::{self, GlobalUpdatePolicy};
use crate::procedures::local_update;
use crate::procedures::mining;
use crate::procedures::upload::VerifiedUpload;
use crate::simulation::RoundOutcome;
use bfl_chain::mempool::Mempool;
use bfl_chain::Transaction;
use bfl_crypto::signature::sign_message;
use bfl_fl::client::LocalUpdate;
use bfl_fl::selection::{drop_stragglers, select_clients};
use bfl_ml::gradient;
use bfl_ml::metrics::accuracy;
use bfl_ml::model::Model;
use bfl_ml::optimizer::local_step_count;
use bfl_net::{EventQueue, NodeProfile};
use rand::Rng;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// What happened when an event resolved — the observable half of the
/// deterministic event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventKind {
    /// Procedure-I scheduled: the client started its local pass.
    TrainingScheduled,
    /// Procedure-I finished: the client's local pass completed.
    TrainingFinished,
    /// Procedure-II completed: the upload arrived and was admitted.
    UploadArrived,
    /// The upload arrived but its signature failed verification.
    UploadRejected,
    /// The upload was lost: its client churned offline before it landed.
    UploadLost,
    /// A stale upload was discarded by the staleness policy.
    StaleDiscarded,
    /// A stale upload was decayed and carried into the next block.
    StaleIncluded,
    /// The flexible block quota was reached; Procedures III–V fired.
    QuotaReached,
}

/// One entry of the deterministic event trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EventRecord {
    /// Simulated second at which the event resolved.
    pub time_s: f64,
    /// The round being executed when it resolved.
    pub round: usize,
    /// The round that commissioned the work (differs for stale uploads).
    pub born_round: usize,
    /// The client involved (`u64::MAX` for round-level events).
    pub client_id: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Timed payloads flowing through the engine's event queue.
enum EngineEvent {
    /// Procedure-I completion, carrying the computed local update.
    TrainingFinished {
        born_round: usize,
        update: LocalUpdate,
    },
    /// Procedure-II arrival at the associated miner.
    UploadArrived {
        born_round: usize,
        miner: usize,
        train_finished_s: f64,
        update: LocalUpdate,
    },
}

/// An upload admitted to the pending pool, awaiting the block quota.
struct ArrivedUpload {
    upload: VerifiedUpload,
    born_round: usize,
    /// Finish time of its Procedure-I pass (for the delay breakdown).
    train_finished_s: f64,
    /// The pass's final-epoch training loss (for the round record, which
    /// averages over the uploads that actually entered the block).
    final_epoch_loss: f64,
}

/// The event engine's live state, embedded in
/// [`LearningState`](crate::engine::LearningState) when the scenario runs
/// a flexible quota.
pub(crate) struct AsyncRuntime {
    queue: EventQueue<EngineEvent>,
    /// Miner-side pending pool: verified uploads waiting for the quota.
    mempool: Mempool,
    /// Per-client heterogeneity profiles, keyed by client id.
    profiles: BTreeMap<u64, NodeProfile>,
    /// Clients with a commissioned pass or in-flight upload.
    in_flight: BTreeSet<u64>,
    /// Decoded uploads admitted this round, keyed by client id (so the
    /// merged set is ordered by client id, like the synchronous engine's).
    arrived: BTreeMap<u64, ArrivedUpload>,
    trace: Vec<EventRecord>,
}

impl AsyncRuntime {
    pub(crate) fn new(config: &BflConfig, client_ids: &[u64]) -> Self {
        let profiles = client_ids
            .iter()
            .copied()
            .zip(config.profiles.build_profiles(client_ids.len()))
            .collect();
        AsyncRuntime {
            queue: EventQueue::new(),
            mempool: Mempool::new(),
            profiles,
            in_flight: BTreeSet::new(),
            arrived: BTreeMap::new(),
            trace: Vec::new(),
        }
    }

    pub(crate) fn trace(&self) -> &[EventRecord] {
        &self.trace
    }

    fn record(
        &mut self,
        time_s: f64,
        round: usize,
        born_round: usize,
        client_id: u64,
        kind: EventKind,
    ) {
        self.trace.push(EventRecord {
            time_s,
            round,
            born_round,
            client_id,
            kind,
        });
    }
}

/// Executes one flexible-quota round: schedules this round's Procedure-I
/// passes, pumps the event queue until the block quota is reached, and
/// runs Procedures III–V at the quota's simulated time.
pub(crate) fn step_flexible(
    state: &mut LearningState<'_>,
    config: &BflConfig,
    reward_policy: &dyn RewardPolicy,
    round: usize,
    quota: usize,
) -> Result<SteppedRound, CoreError> {
    let mut rt = state
        .async_rt
        .take()
        .expect("flexible-quota runs hold an async runtime");
    let mut result = step_flexible_inner(state, &mut rt, config, reward_policy, round, quota);
    // A heavily churning population can produce an attempt whose every
    // possible arrival was lost or discarded (e.g. all free clients
    // offline while the only in-flight uploads are doomed stale ones).
    // That is a stall, not the end of the run: fast-forward the clock to
    // the next rejoin and try the round again, bounded so a schedule
    // with no future joins still surfaces `EmptyRound`. (Each retry
    // re-runs the round prologue, so cooldowns may tick once per
    // attempt — acceptable for the pathological schedules this covers.)
    for _ in 0..8 {
        if !matches!(result, Err(CoreError::EmptyRound { .. }))
            || !fast_forward_to_next_join(state, &rt)
        {
            break;
        }
        result = step_flexible_inner(state, &mut rt, config, reward_policy, round, quota);
    }
    state.async_rt = Some(rt);
    result
}

/// The next simulated second strictly after `now` at which any
/// non-cooling-down client is online, if one ever will be.
fn next_join_after(state: &LearningState<'_>, rt: &AsyncRuntime, now: f64) -> Option<f64> {
    let next = (0..state.clients.len())
        .filter(|&i| !state.cooldown.contains_key(&state.clients[i].id))
        .map(|i| rt.profiles[&state.clients[i].id].next_online_from(now))
        .fold(f64::INFINITY, f64::min);
    (next.is_finite() && next > now).then_some(next)
}

/// Advances the clock to the next rejoin (see [`next_join_after`]).
/// Returns `false` when that would not make progress (events still
/// pending, someone already online, or no client ever rejoins). The
/// epsilon absorbs the churn arithmetic's floating-point slack so the
/// rejoining client is online at the new instant.
fn fast_forward_to_next_join(state: &mut LearningState<'_>, rt: &AsyncRuntime) -> bool {
    if !rt.queue.is_empty() {
        return false;
    }
    let now = state.clock.now_seconds();
    match next_join_after(state, rt, now) {
        Some(next) => {
            state.clock.advance(next - now + 1e-9);
            true
        }
        None => false,
    }
}

fn step_flexible_inner(
    state: &mut LearningState<'_>,
    rt: &mut AsyncRuntime,
    config: &BflConfig,
    reward_policy: &dyn RewardPolicy,
    round: usize,
    quota: usize,
) -> Result<SteppedRound, CoreError> {
    // Cooldowns advance exactly as in the synchronous engine.
    state.advance_cooldowns();

    // Select this round's participants among clients that are not cooling
    // down, not still busy with an earlier round's work, and online at the
    // round's start (the churn schedule's dynamic-join property). When
    // churn has taken every selectable client offline and nothing is in
    // flight, the round fast-forwards the clock to the next rejoin
    // instead of aborting — the system waits for someone to join.
    let mut round_start = state.clock.now_seconds();
    let build_pool = |state: &LearningState<'_>, rt: &AsyncRuntime, now: f64| -> Vec<usize> {
        (0..state.clients.len())
            .filter(|&i| {
                let id = state.clients[i].id;
                !state.cooldown.contains_key(&id)
                    && !rt.in_flight.contains(&id)
                    && rt.profiles[&id].is_online(now)
            })
            .collect()
    };
    let mut pool = build_pool(state, rt, round_start);
    if pool.is_empty() && rt.in_flight.is_empty() && fast_forward_to_next_join(state, rt) {
        round_start = state.clock.now_seconds();
        pool = build_pool(state, rt, round_start);
    }
    let pool = pool;
    let selected_positions: Vec<usize> = if pool.is_empty() {
        Vec::new()
    } else {
        select_clients(pool.len(), config.fl.selected_per_round(), &mut state.rng)
            .into_iter()
            .map(|i| pool[i])
            .collect()
    };
    let selected_positions =
        drop_stragglers(&selected_positions, config.fl.drop_percent, &mut state.rng);

    // Designation drives Procedure-I's forging; the outcome's attacker
    // list is rebuilt later from the uploads that entered the block, so
    // stale attackers land in the round they were actually judged in.
    let (attacks, _designated) = state.designate_attackers(config, &selected_positions);

    // Procedure-I: the local passes are computed eagerly (their *content*
    // is a pure function of the round seed) but *finish* at profile-scaled
    // simulated times — that is what the events model.
    let round_seed = config.fl.seed ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15);
    let updates = local_update::run_local_updates_with_attacks(
        &state.clients,
        &selected_positions,
        &attacks,
        config.fl.model,
        &state.global_params,
        state.train,
        &state.local_config,
        round_seed,
    );
    for (&position, update) in selected_positions.iter().zip(updates) {
        let id = update.client_id;
        let steps = local_step_count(state.clients[position].sample_count(), &state.local_config);
        let finish = round_start + rt.profiles[&id].training_seconds(config.delay.t_local(steps));
        rt.record(round_start, round, round, id, EventKind::TrainingScheduled);
        rt.in_flight.insert(id);
        rt.queue.push(
            finish,
            EngineEvent::TrainingFinished {
                born_round: round,
                update,
            },
        );
    }

    // The flexible block quota: K uploads seal the block, capped at what
    // can still possibly arrive so a small round cannot deadlock.
    let target = quota.min(rt.in_flight.len());
    if target == 0 {
        return Err(CoreError::EmptyRound { round });
    }

    // Pump the queue until the quota is reached (or nothing is left in
    // flight — churn losses and rejections can shrink a round).
    let mut quota_time = round_start;
    while rt.arrived.len() < target {
        let Some(event) = rt.queue.pop() else { break };
        let time = event.time_s;
        match event.payload {
            EngineEvent::TrainingFinished { born_round, update } => {
                let id = update.client_id;
                rt.record(time, round, born_round, id, EventKind::TrainingFinished);
                // Procedure-II send: random miner association, then the
                // uplink latency + payload transfer + miner processing.
                let miner = state.rng.gen_range(0..config.miners);
                let transfer =
                    config.delay.gradient_bytes as f64 / config.delay.uplink.bandwidth_bytes_per_s;
                let latency = rt.profiles[&id].uplink.sample(&mut state.rng);
                let arrival = time + latency + transfer + config.delay.upload_processing_s;
                rt.queue.push(
                    arrival,
                    EngineEvent::UploadArrived {
                        born_round,
                        miner,
                        train_finished_s: time,
                        update,
                    },
                );
            }
            EngineEvent::UploadArrived {
                born_round,
                miner,
                train_finished_s,
                update,
            } => {
                let id = update.client_id;
                rt.in_flight.remove(&id);
                if let Some(kind) = admit_upload(
                    state,
                    rt,
                    config,
                    round,
                    born_round,
                    miner,
                    time,
                    train_finished_s,
                    update,
                ) {
                    rt.record(time, round, born_round, id, kind);
                    if kind == EventKind::UploadArrived || kind == EventKind::StaleIncluded {
                        quota_time = time;
                    }
                } else {
                    rt.record(time, round, born_round, id, EventKind::UploadRejected);
                }
            }
        }
    }

    if rt.arrived.is_empty() {
        return Err(CoreError::EmptyRound { round });
    }
    // Only record the quota as *reached* when it actually was: churn
    // losses and rejections can drain the queue short, in which case the
    // round seals with what arrived but the trace must not claim K.
    if rt.arrived.len() >= target {
        rt.record(quota_time, round, round, u64::MAX, EventKind::QuotaReached);
    }

    // Assemble the round's gradient set. When signature verification is
    // on, mining modes drain the miner's mempool — the pool the signed
    // uploads were admitted through — and the drained transactions must
    // agree with the arrival metadata by construction. (The unsigned
    // ablation has nothing to verify, so it bypasses the pool entirely.)
    let arrived: Vec<(u64, ArrivedUpload)> = std::mem::take(&mut rt.arrived).into_iter().collect();
    if config.mode.mines() && state.keystore.is_some() {
        let drained = rt.mempool.drain_all();
        debug_assert_eq!(
            drained.len(),
            arrived.len(),
            "the mempool holds exactly the pending uploads"
        );
        debug_assert_eq!(
            drained
                .iter()
                .map(|tx| tx.submitter)
                .collect::<BTreeSet<u64>>(),
            arrived.iter().map(|(id, _)| *id).collect::<BTreeSet<u64>>(),
            "the mempool and the arrival metadata agree on the pending clients"
        );
    }
    let stale_included = arrived.iter().filter(|(_, a)| a.born_round < round).count();
    let max_own_finish = arrived
        .iter()
        .filter(|(_, a)| a.born_round == round)
        .map(|(_, a)| a.train_finished_s - round_start)
        .fold(0.0f64, f64::max);
    // The round record averages the losses of the passes that actually
    // entered the block (never empty here), so a stale-heavy round
    // reports its real training loss instead of a 0.0 sentinel.
    let train_loss =
        arrived.iter().map(|(_, a)| a.final_epoch_loss).sum::<f64>() / arrived.len() as f64;
    let merged: Vec<VerifiedUpload> = arrived.into_iter().map(|(_, a)| a.upload).collect();
    // Ground truth for the detection row: the forged uploads *in this
    // block* — a stale attacker is attributed to the round whose block
    // (and Algorithm 2 pass) it actually entered, keeping attacker and
    // dropped sets over the same population.
    let block_attackers: Vec<u64> = merged
        .iter()
        .filter(|u| u.forged)
        .map(|u| u.client_id)
        .collect();

    // Procedure-IV at the quota's simulated time, under the scenario's
    // anchor and reward policies (identical to the synchronous engine).
    let mut global = global_update::compute_global_update(
        &merged,
        &GlobalUpdatePolicy {
            clustering: &config.clustering,
            metric: config.metric,
            strategy: config.strategy,
            fair_aggregation: config.fair_aggregation,
            anchor: config.anchor,
            round,
            reward: reward_policy,
        },
    );
    state.global_params = std::mem::take(&mut global.global_params);
    state.global_model.set_params(&state.global_params);

    // The round's delay breakdown, read off the event clock: the wait for
    // the quota decomposes into the slowest counted own-round local pass
    // (T_local) and the remaining upload tail (T_up); exchange,
    // aggregation and mining costs come from the delay model as in the
    // synchronous engine.
    let wait = (quota_time - round_start).max(0.0);
    let t_local = max_own_finish.clamp(0.0, wait);
    let full = config.mode == FlexibilityMode::FullBfl;
    let t_ex = if full {
        config
            .delay
            .t_ex(merged.len(), config.miners, &mut state.rng)
    } else {
        0.0
    };
    let t_gl = if full {
        config.delay.t_gl(merged.len() + 1)
    } else {
        config.delay.aggregation_seconds
    };

    // Procedure-V: the winning miner seals the block at the quota time
    // (plus exchange and aggregation), while late events stay queued.
    state.clock.advance(wait + t_ex + t_gl);
    let block_hash = if let Some(consensus) = state.consensus.as_mut() {
        let outcome = mining::mine_round(
            consensus,
            round as u64,
            &state.global_params,
            &global.report.rewards,
            state.clock.now_millis(),
            &mut state.rng,
        )?;
        Some(outcome.block.hash_hex())
    } else {
        None
    };
    let t_bl = if full {
        config.delay.t_bl(config.miners, &mut state.rng)
    } else {
        0.0
    };
    state.clock.advance(t_bl);

    state.apply_discard_cooldowns(config, &global.dropped);

    let breakdown = DelayBreakdown {
        t_local,
        t_up: wait - t_local,
        t_ex,
        t_gl,
        t_bl,
        t_queue: 0.0,
        t_fork: 0.0,
    };

    let test_accuracy = accuracy(
        &state.global_model,
        &state.test.features,
        &state.test.labels,
        None,
    );
    let rewards_paid = global.report.rewards.iter().map(|r| r.amount_milli).sum();
    let detection_row = DetectionRow::new(round, &block_attackers, &global.dropped);
    let outcome = RoundOutcome {
        round,
        breakdown,
        accuracy: test_accuracy,
        train_loss,
        participants: merged.len(),
        stale_included,
        attackers: block_attackers,
        dropped: global.dropped,
        high_contributors: global.report.high_contribution.len(),
        rewards_paid_milli: rewards_paid,
        rewards: global.report.rewards,
        block_hash,
    };
    Ok((outcome, state.clock.now_seconds(), Some(detection_row)))
}

/// The `UploadArrived` handler's admission step: churn loss, signature
/// verification (through the chain's mempool in mining modes — the
/// Figure 2 step), and the staleness policy for late uploads. Returns the
/// trace kind of the resolution, or `None` when the signature failed.
#[allow(clippy::too_many_arguments)]
fn admit_upload(
    state: &mut LearningState<'_>,
    rt: &mut AsyncRuntime,
    config: &BflConfig,
    round: usize,
    born_round: usize,
    miner: usize,
    time_s: f64,
    train_finished_s: f64,
    update: LocalUpdate,
) -> Option<EventKind> {
    let id = update.client_id;
    let forged = update.forged;
    let final_epoch_loss = update.stats.final_epoch_loss;
    let age = round - born_round;
    let mines = config.mode.mines();

    // A client that churned offline mid-flight loses its upload.
    if !rt.profiles[&id].is_online(time_s) {
        return Some(EventKind::UploadLost);
    }

    // Stale uploads consult the staleness policy first: a `Discard`
    // verdict must not pay for an RSA signing operation it throws away.
    let decayed = if age > 0 {
        match config
            .staleness
            .apply(&state.global_params, &update.params, age)
        {
            None => return Some(EventKind::StaleDiscarded),
            Some(decayed) => Some(decayed),
        }
    } else {
        None
    };

    // Procedure-II signing: the client signs what it *sent* (the original
    // upload). The sent gradient is serialized at most once — the buffer
    // doubles as a fresh upload's transaction payload below.
    let signing_key = match (state.keypairs.as_ref(), state.keystore.as_ref()) {
        (Some(pairs), Some(_)) => match pairs.get(&id) {
            Some(pair) => Some(pair),
            None => return None,
        },
        _ => None,
    };
    let sent_bytes = signing_key
        .is_some()
        .then(|| gradient::to_bytes(&update.params));
    let envelope = signing_key.map(|pair| {
        sign_message(
            id,
            sent_bytes
                .as_deref()
                .expect("signing serialized the upload"),
            &pair.private,
        )
    });

    // What the block may aggregate: the decayed vector for carried stale
    // uploads, the sent vector (moved, not cloned) for fresh ones.
    let signed = envelope.is_some();
    let (params, tx_bytes, kind) = match decayed {
        Some(decayed) => {
            let bytes = (mines && signed).then(|| gradient::to_bytes(&decayed));
            (decayed, bytes, EventKind::StaleIncluded)
        }
        None => (update.params, sent_bytes, EventKind::UploadArrived),
    };

    // Miner-side verification against the registered key, at mempool
    // admission (Figure 2); FL-only mode verifies without a pool, and
    // the unsigned ablation has nothing to verify so it bypasses the
    // mempool entirely.
    if let (Some(envelope), Some(store)) = (&envelope, state.keystore.as_ref()) {
        if mines {
            let tx = Transaction::local_gradient(
                id,
                born_round as u64,
                tx_bytes.expect("signed uploads serialized the admitted payload"),
            );
            if rt.mempool.submit_signed(tx, envelope, store).is_err() {
                return None;
            }
        } else if store.verify(envelope).is_err() {
            return None;
        }
    }

    let previous = rt.arrived.insert(
        id,
        ArrivedUpload {
            upload: VerifiedUpload {
                client_id: id,
                miner,
                params,
                forged,
            },
            born_round,
            train_finished_s,
            final_epoch_loss,
        },
    );
    debug_assert!(
        previous.is_none(),
        "a client never has two uploads pending at once"
    );
    Some(kind)
}
