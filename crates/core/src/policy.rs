//! Pluggable scenario policies — the trait seams of the Scenario API.
//!
//! FAIR-BFL's contribution is a *redesign space*: which gradient the round
//! anchors on, how the reward pool is split, and what a driver does with
//! each round's events are all design choices, not fixed code paths. This
//! module exposes each choice as a policy with the paper's behaviour as
//! the default:
//!
//! * [`AggregationAnchor`] — the reference gradient Algorithm 2 clusters
//!   against and measures θ from. The paper uses the plain average
//!   ([`AggregationAnchor::Mean`]); the median and trimmed-mean anchors
//!   survive scaling attackers strong enough to corrupt the mean itself.
//! * [`RewardPolicy`] — how a round's θ scores become paid rewards. The
//!   default [`ProportionalReward`] is the paper's `θ_i / Σ θ_k · base`.
//! * [`RoundObserver`] — a streaming consumer of per-round events
//!   (outcome, detection row, sealed block) that can stop a run early
//!   without owning the round loop.

use crate::detection::DetectionRow;
use crate::error::CoreError;
use crate::reward::{build_reward_list, RewardEntry};
use crate::simulation::{KpiRow, RoundOutcome};
use bfl_chain::Block;
use bfl_ml::gradient::{average_refs, trimmed_mean_refs, GradientVector};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The reference gradient of a round: what Algorithm 2 appends to the
/// clustered set, measures every upload's θ against, and (under the
/// discard strategy) recomputes from the kept uploads.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum AggregationAnchor {
    /// The simple average of all uploads — Algorithm 1 line 24, the
    /// paper's behaviour. Corruptible: a scaling attacker much stronger
    /// than the honest head-count drags the anchor onto itself.
    #[default]
    Mean,
    /// The coordinate-wise median. Robust to a minority of arbitrarily
    /// scaled uploads.
    Median,
    /// The coordinate-wise trimmed mean: `floor(trim_ratio · n)` values
    /// are discarded from each end of every coordinate before averaging.
    TrimmedMean {
        /// Fraction trimmed from each end, in `[0, 0.5]`.
        trim_ratio: f64,
    },
}

impl AggregationAnchor {
    /// Validates the anchor's parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            AggregationAnchor::TrimmedMean { trim_ratio } if !(0.0..=0.5).contains(trim_ratio) => {
                Err(CoreError::invalid(format!(
                    "trimmed-mean trim_ratio must be in [0, 0.5], got {trim_ratio}"
                )))
            }
            _ => Ok(()),
        }
    }

    /// Computes the anchor gradient over the given uploads.
    pub fn compute(&self, uploads: &[&[f64]]) -> GradientVector {
        assert!(!uploads.is_empty(), "cannot anchor on zero uploads");
        match self {
            AggregationAnchor::Mean => average_refs(uploads),
            AggregationAnchor::Median => trimmed_mean_refs(uploads, 0.5),
            AggregationAnchor::TrimmedMean { trim_ratio } => {
                trimmed_mean_refs(uploads, *trim_ratio)
            }
        }
    }

    /// Short display name (used by sweep labels and reports).
    pub fn name(&self) -> &'static str {
        match self {
            AggregationAnchor::Mean => "mean",
            AggregationAnchor::Median => "median",
            AggregationAnchor::TrimmedMean { .. } => "trimmed-mean",
        }
    }
}

/// What the asynchronous engine does with a *stale* upload — one that was
/// commissioned in an earlier round but arrived after that round's
/// flexible block quota had already been reached and its block sealed.
///
/// The synchronous engine never produces stale uploads (a round waits for
/// every participant); under a flexible quota they are the normal fate of
/// stragglers, and the policy decides whether their work is wasted or
/// carried into the next block.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StalenessPolicy {
    /// Drop stale uploads on arrival. Straggler work is wasted, but the
    /// aggregate only ever mixes gradients computed against the current
    /// global model.
    #[default]
    Discard,
    /// Carry stale uploads into the next block, decayed toward the
    /// current global parameters by `decay^age` (see
    /// [`bfl_fl::aggregation::decay_stale_update`]): an `age`-rounds-late
    /// upload contributes `global + decay^age · (upload − global)`.
    DecayedInclude {
        /// Per-round decay factor, in `(0, 1]`. `1` includes stale
        /// uploads verbatim; smaller values fade them toward the current
        /// global model the later they arrive.
        decay: f64,
    },
}

impl StalenessPolicy {
    /// Validates the policy's parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            StalenessPolicy::DecayedInclude { decay } if !(*decay > 0.0 && *decay <= 1.0) => Err(
                CoreError::invalid(format!("staleness decay must be in (0, 1], got {decay}")),
            ),
            _ => Ok(()),
        }
    }

    /// Applies the policy to a stale upload `age >= 1` rounds old:
    /// `None` discards it, `Some(params)` is what enters the block.
    pub fn apply(&self, global: &[f64], params: &[f64], age: usize) -> Option<Vec<f64>> {
        match *self {
            StalenessPolicy::Discard => None,
            StalenessPolicy::DecayedInclude { decay } => Some(
                bfl_fl::aggregation::decay_stale_update(global, params, decay, age),
            ),
        }
    }

    /// Short display name (used by sweep labels and reports).
    pub fn name(&self) -> &'static str {
        match self {
            StalenessPolicy::Discard => "discard",
            StalenessPolicy::DecayedInclude { .. } => "decayed-include",
        }
    }
}

/// What a client does when its upload is lost in transit (a link drop,
/// a corrupted delivery, or a send to a crashed miner).
///
/// Without retries, a lost upload simply never counts toward the round's
/// quota — the paper's edge clients are "difficult to guarantee" and the
/// round degrades. With exponential backoff, the client re-sends after a
/// per-attempt timeout plus a growing delay (jitter drawn from the
/// engine's dedicated fault RNG stream, so replays are bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum RetryPolicy {
    /// Never retry: a lost upload is lost for the round.
    #[default]
    None,
    /// Retry with exponential backoff after each detected loss.
    Backoff {
        /// Total send attempts, including the first (>= 1).
        max_attempts: u32,
        /// Seconds after the send at which the client gives up waiting
        /// for an acknowledgement and declares the attempt lost.
        timeout_s: f64,
        /// Backoff before the second attempt, in seconds.
        base_s: f64,
        /// Multiplier applied to the backoff per further attempt (>= 1).
        factor: f64,
        /// Maximum uniform jitter added to each backoff, in seconds.
        jitter_s: f64,
    },
}

impl RetryPolicy {
    /// Validates the policy's parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        match *self {
            RetryPolicy::None => Ok(()),
            RetryPolicy::Backoff {
                max_attempts,
                timeout_s,
                base_s,
                factor,
                jitter_s,
            } => {
                if max_attempts == 0 {
                    return Err(CoreError::invalid("retry max_attempts must be >= 1"));
                }
                for (name, v) in [
                    ("timeout_s", timeout_s),
                    ("base_s", base_s),
                    ("jitter_s", jitter_s),
                ] {
                    if !(v.is_finite() && v >= 0.0) {
                        return Err(CoreError::invalid(format!(
                            "retry {name} must be finite and non-negative, got {v}"
                        )));
                    }
                }
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(CoreError::invalid(format!(
                        "retry factor must be finite and >= 1, got {factor}"
                    )));
                }
                Ok(())
            }
        }
    }

    /// Seconds from the (failed) send of attempt number `attempt`
    /// (1-based) until the retry send, or `None` when the attempt budget
    /// is spent. `jitter01` is a uniform draw in `[0, 1)` from the fault
    /// RNG stream.
    pub fn backoff_delay(&self, attempt: u32, jitter01: f64) -> Option<f64> {
        match *self {
            RetryPolicy::None => None,
            RetryPolicy::Backoff {
                max_attempts,
                timeout_s,
                base_s,
                factor,
                jitter_s,
            } => (attempt < max_attempts).then(|| {
                let backoff = base_s * factor.powi(attempt.saturating_sub(1) as i32);
                timeout_s + backoff + jitter01 * jitter_s
            }),
        }
    }

    /// Short display name (used by sweep labels and reports).
    pub fn name(&self) -> &'static str {
        match self {
            RetryPolicy::None => "no-retry",
            RetryPolicy::Backoff { .. } => "backoff",
        }
    }
}

/// What becomes of the uploads stranded on the losing branch of a healed
/// fork. When a partition splits the miner mesh, the secondary component
/// keeps accepting uploads and mining its own blocks; at heal time the
/// longest chain wins and the losing branch's rounds are orphaned.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ReorgPolicy {
    /// Orphaned uploads are dropped — their training work is wasted,
    /// exactly like a discarded stale upload.
    #[default]
    Discard,
    /// Orphaned uploads are re-submitted to the winning branch's mempool
    /// at heal time, subject to the run's staleness policy (they are by
    /// construction at least one round old).
    Salvage,
}

impl ReorgPolicy {
    /// Short display name (used by sweep labels and reports).
    pub fn name(&self) -> &'static str {
        match self {
            ReorgPolicy::Discard => "discard",
            ReorgPolicy::Salvage => "salvage",
        }
    }
}

/// How a round's high-contribution θ scores become paid rewards.
///
/// Implementations must be deterministic in `(round, scores)`: sweep
/// reproducibility and the step/run equivalence guarantees rely on it.
pub trait RewardPolicy: Send + Sync {
    /// Builds the reward list for one round from the (client, θ) pairs of
    /// the clients labelled high contribution.
    fn round_rewards(&self, round: usize, scores: &[(u64, f64)]) -> Vec<RewardEntry>;
}

/// The paper's incentive mechanism: every high contributor is paid
/// `θ_i / Σ θ_k · base` (Algorithm 2's reward list).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionalReward {
    /// The per-round reward pool.
    pub base: f64,
}

impl RewardPolicy for ProportionalReward {
    fn round_rewards(&self, _round: usize, scores: &[(u64, f64)]) -> Vec<RewardEntry> {
        build_reward_list(scores, self.base)
    }
}

/// Everything observable at the end of one communication round.
#[derive(Debug, Clone, Copy)]
pub struct RoundEvent<'a> {
    /// The round's outcome record.
    pub outcome: &'a RoundOutcome,
    /// The round's detection row (absent in modes that skip Algorithm 2).
    pub detection: Option<&'a DetectionRow>,
    /// The block sealed this round (absent when the mode does not mine;
    /// the last block of the round when a round seals several).
    pub block: Option<&'a Block>,
    /// The round's typed KPI row — a copy of `outcome.kpi`, surfaced
    /// directly so streaming consumers never re-derive makespans or
    /// fault counters from the event trace.
    pub kpi: KpiRow,
    /// Cumulative per-client reward ledger through this round, in
    /// milli-units — what [`crate::reward::gini`] consumes to track
    /// incentive concentration round by round.
    pub reward_totals: &'a BTreeMap<u64, u64>,
}

/// What an observer wants the driver to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverControl {
    /// Keep stepping.
    Continue,
    /// Stop the run after this round; the result covers the completed
    /// rounds only.
    Stop,
}

/// A streaming consumer of per-round events. Drivers plug one in to log,
/// checkpoint, or early-stop without re-implementing the round loop.
pub trait RoundObserver {
    /// Called once per completed round, in round order.
    fn on_round(&mut self, event: &RoundEvent<'_>) -> ObserverControl;
}

/// The trivial observer: watch every round, never stop the run.
impl<F: FnMut(&RoundEvent<'_>)> RoundObserver for F {
    fn on_round(&mut self, event: &RoundEvent<'_>) -> ObserverControl {
        self(event);
        ObserverControl::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_anchor_matches_plain_average() {
        let uploads = [&[1.0, 2.0][..], &[3.0, 4.0][..]];
        assert_eq!(AggregationAnchor::Mean.compute(&uploads), vec![2.0, 3.0]);
    }

    #[test]
    fn median_anchor_ignores_a_wild_upload() {
        let uploads = [
            &[1.0][..],
            &[1.1][..],
            &[0.9][..],
            &[-80.0][..],
            &[1.05][..],
        ];
        let anchor = AggregationAnchor::Median.compute(&uploads);
        assert!((anchor[0] - 1.0).abs() < 0.11);
    }

    #[test]
    fn trimmed_mean_anchor_validates_its_ratio() {
        assert!(AggregationAnchor::TrimmedMean { trim_ratio: 0.25 }
            .validate()
            .is_ok());
        let err = AggregationAnchor::TrimmedMean { trim_ratio: 0.7 }
            .validate()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
        assert!(AggregationAnchor::TrimmedMean { trim_ratio: -0.1 }
            .validate()
            .is_err());
        assert!(AggregationAnchor::Mean.validate().is_ok());
    }

    #[test]
    fn anchors_serialize_and_default_to_mean() {
        assert_eq!(AggregationAnchor::default(), AggregationAnchor::Mean);
        let json =
            serde_json::to_string(&AggregationAnchor::TrimmedMean { trim_ratio: 0.2 }).unwrap();
        let back: AggregationAnchor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, AggregationAnchor::TrimmedMean { trim_ratio: 0.2 });
        assert_eq!(AggregationAnchor::Median.name(), "median");
    }

    #[test]
    fn staleness_policies_validate_and_apply() {
        assert!(StalenessPolicy::Discard.validate().is_ok());
        assert!(StalenessPolicy::DecayedInclude { decay: 0.5 }
            .validate()
            .is_ok());
        assert!(StalenessPolicy::DecayedInclude { decay: 0.0 }
            .validate()
            .is_err());
        assert!(StalenessPolicy::DecayedInclude { decay: 1.5 }
            .validate()
            .is_err());

        let global = [0.0, 0.0];
        let params = [4.0, -2.0];
        assert_eq!(StalenessPolicy::Discard.apply(&global, &params, 1), None);
        assert_eq!(
            StalenessPolicy::DecayedInclude { decay: 0.5 }.apply(&global, &params, 1),
            Some(vec![2.0, -1.0])
        );
        assert_eq!(StalenessPolicy::default(), StalenessPolicy::Discard);
        assert_eq!(
            StalenessPolicy::DecayedInclude { decay: 0.9 }.name(),
            "decayed-include"
        );
    }

    #[test]
    fn retry_policy_validates_and_schedules_backoff() {
        assert!(RetryPolicy::None.validate().is_ok());
        assert_eq!(RetryPolicy::default(), RetryPolicy::None);
        assert_eq!(RetryPolicy::None.backoff_delay(1, 0.5), None);

        let backoff = RetryPolicy::Backoff {
            max_attempts: 3,
            timeout_s: 2.0,
            base_s: 1.0,
            factor: 2.0,
            jitter_s: 0.5,
        };
        backoff.validate().unwrap();
        assert_eq!(backoff.name(), "backoff");
        // First attempt fails: retry after timeout + base + jitter.
        assert_eq!(backoff.backoff_delay(1, 0.0), Some(3.0));
        // Second attempt fails: backoff doubles, jitter applies.
        assert_eq!(backoff.backoff_delay(2, 1.0), Some(2.0 + 2.0 + 0.5));
        // Attempt budget spent.
        assert_eq!(backoff.backoff_delay(3, 0.0), None);

        let bad = RetryPolicy::Backoff {
            max_attempts: 0,
            timeout_s: 1.0,
            base_s: 1.0,
            factor: 2.0,
            jitter_s: 0.0,
        };
        assert!(bad.validate().is_err());
        let bad_factor = RetryPolicy::Backoff {
            max_attempts: 2,
            timeout_s: 1.0,
            base_s: 1.0,
            factor: 0.5,
            jitter_s: 0.0,
        };
        assert!(bad_factor.validate().is_err());
        let bad_timeout = RetryPolicy::Backoff {
            max_attempts: 2,
            timeout_s: f64::INFINITY,
            base_s: 1.0,
            factor: 2.0,
            jitter_s: 0.0,
        };
        assert!(bad_timeout.validate().is_err());
    }

    #[test]
    fn reorg_policy_names_and_default() {
        assert_eq!(ReorgPolicy::default(), ReorgPolicy::Discard);
        assert_eq!(ReorgPolicy::Discard.name(), "discard");
        assert_eq!(ReorgPolicy::Salvage.name(), "salvage");
        let json = serde_json::to_string(&ReorgPolicy::Salvage).unwrap();
        let back: ReorgPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ReorgPolicy::Salvage);
    }

    #[test]
    fn proportional_reward_matches_the_reward_list() {
        let scores = [(1u64, 0.25), (2u64, 0.75)];
        let policy = ProportionalReward { base: 10.0 };
        assert_eq!(
            policy.round_rewards(3, &scores),
            build_reward_list(&scores, 10.0)
        );
    }
}
