//! Malicious-attack detection bookkeeping (paper Table 2).
//!
//! In each communication round some clients are designated attackers and
//! forge their uploads; Algorithm 2 labels a set of clients low
//! contribution and (under the discard strategy) drops them. The detection
//! rate of a round is the fraction of that round's attackers that ended up
//! in the dropped set; Table 2 reports the per-round rates and their
//! average for both non-IID and IID partitions.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionRow {
    /// Communication round (1-based).
    pub round: usize,
    /// Indices of the clients that attacked this round.
    pub attacker_ids: Vec<u64>,
    /// Indices of the clients Algorithm 2 dropped this round.
    pub dropped_ids: Vec<u64>,
    /// Fraction of attackers that were dropped, in `[0, 1]`.
    /// `None` when there were no attackers this round.
    pub detection_rate: Option<f64>,
    /// Number of honest clients incorrectly dropped (false positives).
    pub false_positives: usize,
}

impl DetectionRow {
    /// Computes a row from the attacker and dropped sets.
    pub fn new(round: usize, attackers: &[u64], dropped: &[u64]) -> Self {
        let attacker_set: BTreeSet<u64> = attackers.iter().copied().collect();
        let dropped_set: BTreeSet<u64> = dropped.iter().copied().collect();
        let caught = attacker_set.intersection(&dropped_set).count();
        let detection_rate = if attacker_set.is_empty() {
            None
        } else {
            Some(caught as f64 / attacker_set.len() as f64)
        };
        let false_positives = dropped_set.difference(&attacker_set).count();
        DetectionRow {
            round,
            attacker_ids: attacker_set.into_iter().collect(),
            dropped_ids: dropped_set.into_iter().collect(),
            detection_rate,
            false_positives,
        }
    }
}

/// The full Table 2 for one partition regime.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectionTable {
    /// Per-round detection rows.
    pub rows: Vec<DetectionRow>,
}

impl DetectionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a round's row.
    pub fn push(&mut self, row: DetectionRow) {
        self.rows.push(row);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rounds were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The paper's "Average Detection Rate": mean of the per-round rates
    /// over rounds that actually had attackers.
    pub fn average_detection_rate(&self) -> f64 {
        let rates: Vec<f64> = self.rows.iter().filter_map(|r| r.detection_rate).collect();
        if rates.is_empty() {
            return 0.0;
        }
        rates.iter().sum::<f64>() / rates.len() as f64
    }

    /// Total attackers across all rounds and how many were caught.
    pub fn totals(&self) -> (usize, usize) {
        let mut total = 0;
        let mut caught = 0;
        for row in &self.rows {
            total += row.attacker_ids.len();
            let dropped: BTreeSet<u64> = row.dropped_ids.iter().copied().collect();
            caught += row
                .attacker_ids
                .iter()
                .filter(|id| dropped.contains(id))
                .count();
        }
        (total, caught)
    }

    /// Mean number of falsely dropped honest clients per round.
    pub fn mean_false_positives(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| r.false_positives as f64)
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_detection_rate_matches_paper_format() {
        // Round 2 of the paper's non-IID table: attackers [3, 6, 2],
        // dropped [2, 6] -> 66.66%.
        let row = DetectionRow::new(2, &[3, 6, 2], &[2, 6]);
        assert!((row.detection_rate.unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(row.false_positives, 0);

        // Round 1 of the non-IID table: attackers [3, 7], dropped
        // [2, 4, 5, 6] -> 0% with 4 false positives.
        let row = DetectionRow::new(1, &[3, 7], &[2, 4, 5, 6]);
        assert_eq!(row.detection_rate, Some(0.0));
        assert_eq!(row.false_positives, 4);

        // A round with a single attacker caught exactly -> 100%.
        let row = DetectionRow::new(7, &[0], &[0]);
        assert_eq!(row.detection_rate, Some(1.0));
        assert_eq!(row.false_positives, 0);
    }

    #[test]
    fn rounds_without_attackers_are_excluded_from_the_average() {
        let mut table = DetectionTable::new();
        table.push(DetectionRow::new(1, &[1], &[1]));
        table.push(DetectionRow::new(2, &[], &[3]));
        table.push(DetectionRow::new(3, &[2, 4], &[2]));
        assert_eq!(table.len(), 3);
        assert!((table.average_detection_rate() - 0.75).abs() < 1e-9);
        let (total, caught) = table.totals();
        assert_eq!(total, 3);
        assert_eq!(caught, 2);
        assert!((table.mean_false_positives() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table_defaults() {
        let table = DetectionTable::new();
        assert!(table.is_empty());
        assert_eq!(table.average_detection_rate(), 0.0);
        assert_eq!(table.totals(), (0, 0));
        assert_eq!(table.mean_false_positives(), 0.0);
    }

    #[test]
    fn duplicate_ids_are_deduplicated() {
        let row = DetectionRow::new(1, &[5, 5, 6], &[5, 5]);
        assert_eq!(row.attacker_ids, vec![5, 6]);
        assert_eq!(row.dropped_ids, vec![5]);
        assert!((row.detection_rate.unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn paper_non_iid_table_average_reproduces() {
        // Reconstruct the paper's non-IID Table 2 rows and check the
        // reported 64.96% average (the paper rounds 33.33% down to 33%).
        let rows = vec![
            (vec![3, 7], vec![2, 4, 5, 6]),
            (vec![3, 6, 2], vec![2, 6]),
            (vec![6, 4, 7], vec![4, 6]),
            (vec![1, 6, 0], vec![6]),
            (vec![2, 8, 0], vec![0, 8]),
            (vec![7, 0], vec![0, 7]),
            (vec![0], vec![0]),
            (vec![3, 9], vec![3]),
            (vec![6, 0, 8], vec![0, 8]),
            (vec![6, 5], vec![5, 6]),
        ];
        let mut table = DetectionTable::new();
        for (round, (attackers, dropped)) in rows.into_iter().enumerate() {
            table.push(DetectionRow::new(round + 1, &attackers, &dropped));
        }
        let average = table.average_detection_rate();
        assert!(
            (average - 0.6499).abs() < 0.005,
            "expected ~64.96% as in the paper, got {average}"
        );
    }
}
