//! # bfl-core — FAIR-BFL
//!
//! The paper's primary contribution: a blockchain-based federated-learning
//! framework in which blockchain and FL are *tightly coupled* (one block
//! per synchronized communication round, Assumption 1), blocks carry only
//! the round's global gradient and reward list (Assumption 2), client
//! contributions are identified by clustering the uploaded gradients
//! (Algorithm 2), rewards are distributed proportionally to each client's
//! cosine-distance share (the incentive mechanism), and the global model is
//! aggregated with contribution weights (Equation 1, "fair aggregation").
//!
//! The five procedures of Algorithm 1 map onto this crate as follows:
//!
//! | Procedure | Paper section | Module |
//! |---|---|---|
//! | I — Local learning and update | 4.1 | [`procedures::local_update`] |
//! | II — Uploading the gradient for mining | 4.2 | [`procedures::upload`] |
//! | III — Exchanging gradients | 4.3 | [`procedures::exchange`] |
//! | IV — Computing global updates | 4.4 | [`procedures::global_update`] + [`contribution`] + [`aggregation`] |
//! | V — Block mining and consensus | 4.5 | [`procedures::mining`] (over `bfl-chain`) |
//!
//! [`flexibility`] implements the functional scaling of Section 4.6:
//! dropping Procedures I+IV degrades FAIR-BFL to a pure blockchain,
//! dropping III+V degrades it to pure FL. [`delay_model`] implements the
//! per-procedure delay decomposition `T(n,m) = T_local + T_up + T_ex +
//! T_gl + T_bl` (plus the queuing and forking penalties that only the
//! vanilla baselines pay), [`detection`] implements the Table 2 bookkeeping,
//! and [`theory`] evaluates the Theorem 3.1 convergence bound.
//!
//! ## The Scenario API
//!
//! Runs are composed through [`scenario::Scenario`] — a validated point
//! of the design space built fluently
//! (`Scenario::builder().mode(..).clients(..).build()?`) — and executed
//! by the stepwise round engine [`engine::SimulationRun`], one
//! [`step`](engine::SimulationRun::step) per communication round. The
//! pluggable seams live in [`policy`]: the [`policy::AggregationAnchor`]
//! Algorithm 2 measures against (mean / median / trimmed mean), the
//! [`policy::RewardPolicy`] that turns θ scores into payouts, and the
//! [`policy::RoundObserver`] that streams per-round events to the driver.
//! [`sweep::SweepRunner`] fans grids of scenarios across cores with
//! order-stable, thread-count-invariant results. The legacy one-shot
//! entry point [`simulation::BflSimulation`] remains as a thin wrapper
//! over the engine.

#![warn(missing_docs)]

pub mod aggregation;
pub mod config;
pub mod contribution;
pub mod delay_model;
pub mod detection;
pub mod engine;
pub mod error;
pub mod events;
pub mod flexibility;
pub mod policy;
pub(crate) mod population;
pub mod procedures;
pub mod reward;
pub mod scenario;
pub mod simulation;
pub mod strategy;
pub mod sweep;
pub mod theory;

pub use aggregation::{contribution_weights, fair_aggregate};
pub use config::{
    AggregationMode, AttackConfig, BflConfig, ProfileConfig, ProvisioningMode, SyncMode,
};
pub use contribution::{identify_contributions, ContributionReport};
pub use delay_model::{DelayBreakdown, DelayModel, SystemKind};
pub use detection::{DetectionRow, DetectionTable};
pub use engine::SimulationRun;
pub use error::CoreError;
pub use events::EventRecord;
pub use flexibility::FlexibilityMode;
pub use policy::{
    AggregationAnchor, ObserverControl, ProportionalReward, ReorgPolicy, RetryPolicy, RewardPolicy,
    RoundEvent, RoundObserver, StalenessPolicy,
};
pub use reward::{gini, RewardEntry};
pub use scenario::{Scenario, ScenarioBuilder};
pub use simulation::{BflSimulation, KpiRow, RoundOutcome, SimulationResult};
pub use strategy::LowContributionStrategy;
pub use sweep::{SweepCell, SweepPoint, SweepRunner};
pub use theory::TheoremParams;
