//! # bfl-core — FAIR-BFL
//!
//! The paper's primary contribution: a blockchain-based federated-learning
//! framework in which blockchain and FL are *tightly coupled* (one block
//! per synchronized communication round, Assumption 1), blocks carry only
//! the round's global gradient and reward list (Assumption 2), client
//! contributions are identified by clustering the uploaded gradients
//! (Algorithm 2), rewards are distributed proportionally to each client's
//! cosine-distance share (the incentive mechanism), and the global model is
//! aggregated with contribution weights (Equation 1, "fair aggregation").
//!
//! The five procedures of Algorithm 1 map onto this crate as follows:
//!
//! | Procedure | Paper section | Module |
//! |---|---|---|
//! | I — Local learning and update | 4.1 | [`procedures::local_update`] |
//! | II — Uploading the gradient for mining | 4.2 | [`procedures::upload`] |
//! | III — Exchanging gradients | 4.3 | [`procedures::exchange`] |
//! | IV — Computing global updates | 4.4 | [`procedures::global_update`] + [`contribution`] + [`aggregation`] |
//! | V — Block mining and consensus | 4.5 | [`procedures::mining`] (over `bfl-chain`) |
//!
//! [`flexibility`] implements the functional scaling of Section 4.6:
//! dropping Procedures I+IV degrades FAIR-BFL to a pure blockchain,
//! dropping III+V degrades it to pure FL. [`delay_model`] implements the
//! per-procedure delay decomposition `T(n,m) = T_local + T_up + T_ex +
//! T_gl + T_bl` (plus the queuing and forking penalties that only the
//! vanilla baselines pay), [`detection`] implements the Table 2 bookkeeping,
//! and [`theory`] evaluates the Theorem 3.1 convergence bound.
//!
//! The entry point for end-to-end runs is [`simulation::BflSimulation`].

#![warn(missing_docs)]

pub mod aggregation;
pub mod config;
pub mod contribution;
pub mod delay_model;
pub mod detection;
pub mod error;
pub mod flexibility;
pub mod procedures;
pub mod reward;
pub mod simulation;
pub mod strategy;
pub mod theory;

pub use aggregation::{contribution_weights, fair_aggregate};
pub use config::{AttackConfig, BflConfig};
pub use contribution::{identify_contributions, ContributionReport};
pub use delay_model::{DelayBreakdown, DelayModel, SystemKind};
pub use detection::{DetectionRow, DetectionTable};
pub use error::CoreError;
pub use flexibility::FlexibilityMode;
pub use reward::RewardEntry;
pub use simulation::{BflSimulation, RoundOutcome, SimulationResult};
pub use strategy::LowContributionStrategy;
pub use theory::TheoremParams;
