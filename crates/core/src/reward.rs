//! The reward list (the incentive half of Algorithm 2).
//!
//! For every high-contribution client the winning miner records the pair
//! `⟨C_i, θ_i / Σ_k θ_k · base⟩`; those pairs become reward transactions in
//! the round's block and are paid out once consensus is reached. Amounts
//! are carried in milli-units of `base` so the ledger stays integer-valued.

use bfl_chain::Transaction;
use serde::{Deserialize, Serialize};

/// One entry of the round's reward list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardEntry {
    /// The rewarded client.
    pub client_id: u64,
    /// The client's contribution score θ_i (cosine distance to the global
    /// update).
    pub theta: f64,
    /// The normalized share θ_i / Σ θ_k in `[0, 1]`.
    pub share: f64,
    /// The paid amount in milli-units of the reward base.
    pub amount_milli: u64,
}

/// Builds the reward list from the high-contribution scores.
///
/// `scores` are the (client, θ) pairs of the clients labelled high
/// contribution; `base` is the per-round reward pool (paper: "we can set a
/// base and multiply it by θ_i / Σ θ_k as the final reward").
pub fn build_reward_list(scores: &[(u64, f64)], base: f64) -> Vec<RewardEntry> {
    assert!(base >= 0.0, "reward base must be non-negative");
    if scores.is_empty() {
        return Vec::new();
    }
    let total: f64 = scores.iter().map(|(_, theta)| theta.max(0.0)).sum();
    scores
        .iter()
        .map(|&(client_id, theta)| {
            let theta = theta.max(0.0);
            let share = if total > 0.0 {
                theta / total
            } else {
                1.0 / scores.len() as f64
            };
            RewardEntry {
                client_id,
                theta,
                share,
                amount_milli: (share * base * 1000.0).round() as u64,
            }
        })
        .collect()
}

/// Gini coefficient of a reward ledger, computed exactly over the integer
/// milli-unit amounts.
///
/// Uses the rank formulation over the ascending-sorted amounts `x_(1) ≤ …
/// ≤ x_(n)`:
///
/// ```text
/// G = (2 · Σ_i i·x_(i) − (n + 1) · Σ_i x_(i)) / (n · Σ_i x_(i))
/// ```
///
/// All sums are accumulated in `u128`, so the only floating-point step is
/// the final division — two ledgers with the same multiset of amounts
/// always produce the bit-identical coefficient, which the harness's
/// shard-merge byte-identity relies on. Degenerate ledgers (empty, a
/// single holder, or an all-zero total) have no dispersion to measure and
/// return `0.0`.
pub fn gini(rewards: &[u64]) -> f64 {
    let n = rewards.len();
    if n <= 1 {
        return 0.0;
    }
    let mut sorted = rewards.to_vec();
    sorted.sort_unstable();
    let total: u128 = sorted.iter().map(|&x| u128::from(x)).sum();
    if total == 0 {
        return 0.0;
    }
    // Σ i·x_(i) with 1-based ranks; fits u128 for any realistic ledger
    // (amounts are u64, ranks are usize).
    let weighted: u128 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as u128 + 1) * u128::from(x))
        .sum();
    // Chebyshev's sum inequality guarantees 2·Σ i·x_(i) ≥ (n+1)·Σ x_(i)
    // for ascending x, so the numerator never underflows.
    let numerator = 2 * weighted - (n as u128 + 1) * total;
    numerator as f64 / (n as u128 * total) as f64
}

/// Converts a reward list into ledger transactions submitted by `miner_id`
/// for `round`.
pub fn reward_transactions(rewards: &[RewardEntry], miner_id: u64, round: u64) -> Vec<Transaction> {
    rewards
        .iter()
        .map(|entry| Transaction::reward(miner_id, round, entry.client_id, entry.amount_milli))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_scores_give_empty_list() {
        assert!(build_reward_list(&[], 100.0).is_empty());
    }

    #[test]
    fn shares_are_proportional_and_sum_to_one() {
        let rewards = build_reward_list(&[(1, 0.2), (2, 0.6), (3, 0.2)], 100.0);
        assert_eq!(rewards.len(), 3);
        let share_sum: f64 = rewards.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert!((rewards[1].share - 0.6).abs() < 1e-9);
        assert_eq!(rewards[1].amount_milli, 60_000);
        assert_eq!(rewards[0].amount_milli, 20_000);
        // Total payout equals the base (within rounding).
        let total: u64 = rewards.iter().map(|r| r.amount_milli).sum();
        assert!((total as i64 - 100_000).abs() <= 2);
    }

    #[test]
    fn zero_thetas_split_evenly() {
        let rewards = build_reward_list(&[(1, 0.0), (2, 0.0)], 10.0);
        assert!((rewards[0].share - 0.5).abs() < 1e-12);
        assert_eq!(rewards[0].amount_milli, 5_000);
    }

    #[test]
    fn negative_thetas_are_clamped() {
        let rewards = build_reward_list(&[(1, -0.5), (2, 1.0)], 10.0);
        assert_eq!(rewards[0].amount_milli, 0);
        assert_eq!(rewards[1].amount_milli, 10_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_base_panics() {
        let _ = build_reward_list(&[(1, 0.5)], -1.0);
    }

    #[test]
    fn transactions_carry_the_right_fields() {
        let rewards = build_reward_list(&[(7, 0.3), (9, 0.7)], 50.0);
        let txs = reward_transactions(&rewards, 2, 12);
        assert_eq!(txs.len(), 2);
        for (tx, entry) in txs.iter().zip(rewards.iter()) {
            assert_eq!(tx.round(), 12);
            assert_eq!(tx.submitter, 2);
            match &tx.kind {
                bfl_chain::TransactionKind::Reward {
                    client_id,
                    amount_milli,
                    ..
                } => {
                    assert_eq!(*client_id, entry.client_id);
                    assert_eq!(*amount_milli, entry.amount_milli);
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
    }

    #[test]
    fn gini_degenerate_ledgers_are_zero() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[42]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn gini_equal_ledger_is_zero() {
        assert_eq!(gini(&[5, 5, 5, 5]), 0.0);
    }

    #[test]
    fn gini_matches_hand_computed_values() {
        // One holder owns everything among n: G = (n-1)/n.
        assert!((gini(&[0, 0, 0, 100]) - 0.75).abs() < 1e-15);
        // [1, 2, 3]: Σx = 6, Σ i·x = 1 + 4 + 9 = 14, G = (28 - 24) / 18.
        assert!((gini(&[1, 2, 3]) - 4.0 / 18.0).abs() < 1e-15);
        // Order must not matter.
        assert_eq!(gini(&[3, 1, 2]), gini(&[1, 2, 3]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn gini_is_bounded(amounts in proptest::collection::vec(0u64..1_000_000, 0..32)) {
            let g = gini(&amounts);
            prop_assert!((0.0..1.0).contains(&g) || g == 0.0, "gini {g} out of [0, 1)");
        }

        #[test]
        fn gini_is_permutation_invariant(amounts in proptest::collection::vec(0u64..1_000_000, 2..16)) {
            let mut reversed = amounts.clone();
            reversed.reverse();
            let mut rotated = amounts.clone();
            rotated.rotate_left(1);
            prop_assert_eq!(gini(&amounts), gini(&reversed));
            prop_assert_eq!(gini(&amounts), gini(&rotated));
        }

        #[test]
        fn gini_is_scale_invariant(amounts in proptest::collection::vec(0u64..1_000_000, 2..16), k in 1u64..1000) {
            let scaled: Vec<u64> = amounts.iter().map(|&x| x * k).collect();
            let base = gini(&amounts);
            let after = gini(&scaled);
            prop_assert!((base - after).abs() < 1e-12, "{base} vs {after}");
        }
    }
}
