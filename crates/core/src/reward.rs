//! The reward list (the incentive half of Algorithm 2).
//!
//! For every high-contribution client the winning miner records the pair
//! `⟨C_i, θ_i / Σ_k θ_k · base⟩`; those pairs become reward transactions in
//! the round's block and are paid out once consensus is reached. Amounts
//! are carried in milli-units of `base` so the ledger stays integer-valued.

use bfl_chain::Transaction;
use serde::{Deserialize, Serialize};

/// One entry of the round's reward list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardEntry {
    /// The rewarded client.
    pub client_id: u64,
    /// The client's contribution score θ_i (cosine distance to the global
    /// update).
    pub theta: f64,
    /// The normalized share θ_i / Σ θ_k in `[0, 1]`.
    pub share: f64,
    /// The paid amount in milli-units of the reward base.
    pub amount_milli: u64,
}

/// Builds the reward list from the high-contribution scores.
///
/// `scores` are the (client, θ) pairs of the clients labelled high
/// contribution; `base` is the per-round reward pool (paper: "we can set a
/// base and multiply it by θ_i / Σ θ_k as the final reward").
pub fn build_reward_list(scores: &[(u64, f64)], base: f64) -> Vec<RewardEntry> {
    assert!(base >= 0.0, "reward base must be non-negative");
    if scores.is_empty() {
        return Vec::new();
    }
    let total: f64 = scores.iter().map(|(_, theta)| theta.max(0.0)).sum();
    scores
        .iter()
        .map(|&(client_id, theta)| {
            let theta = theta.max(0.0);
            let share = if total > 0.0 {
                theta / total
            } else {
                1.0 / scores.len() as f64
            };
            RewardEntry {
                client_id,
                theta,
                share,
                amount_milli: (share * base * 1000.0).round() as u64,
            }
        })
        .collect()
}

/// Converts a reward list into ledger transactions submitted by `miner_id`
/// for `round`.
pub fn reward_transactions(rewards: &[RewardEntry], miner_id: u64, round: u64) -> Vec<Transaction> {
    rewards
        .iter()
        .map(|entry| Transaction::reward(miner_id, round, entry.client_id, entry.amount_milli))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_scores_give_empty_list() {
        assert!(build_reward_list(&[], 100.0).is_empty());
    }

    #[test]
    fn shares_are_proportional_and_sum_to_one() {
        let rewards = build_reward_list(&[(1, 0.2), (2, 0.6), (3, 0.2)], 100.0);
        assert_eq!(rewards.len(), 3);
        let share_sum: f64 = rewards.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert!((rewards[1].share - 0.6).abs() < 1e-9);
        assert_eq!(rewards[1].amount_milli, 60_000);
        assert_eq!(rewards[0].amount_milli, 20_000);
        // Total payout equals the base (within rounding).
        let total: u64 = rewards.iter().map(|r| r.amount_milli).sum();
        assert!((total as i64 - 100_000).abs() <= 2);
    }

    #[test]
    fn zero_thetas_split_evenly() {
        let rewards = build_reward_list(&[(1, 0.0), (2, 0.0)], 10.0);
        assert!((rewards[0].share - 0.5).abs() < 1e-12);
        assert_eq!(rewards[0].amount_milli, 5_000);
    }

    #[test]
    fn negative_thetas_are_clamped() {
        let rewards = build_reward_list(&[(1, -0.5), (2, 1.0)], 10.0);
        assert_eq!(rewards[0].amount_milli, 0);
        assert_eq!(rewards[1].amount_milli, 10_000);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_base_panics() {
        let _ = build_reward_list(&[(1, 0.5)], -1.0);
    }

    #[test]
    fn transactions_carry_the_right_fields() {
        let rewards = build_reward_list(&[(7, 0.3), (9, 0.7)], 50.0);
        let txs = reward_transactions(&rewards, 2, 12);
        assert_eq!(txs.len(), 2);
        for (tx, entry) in txs.iter().zip(rewards.iter()) {
            assert_eq!(tx.round(), 12);
            assert_eq!(tx.submitter, 2);
            match &tx.kind {
                bfl_chain::TransactionKind::Reward {
                    client_id,
                    amount_milli,
                    ..
                } => {
                    assert_eq!(*client_id, entry.client_id);
                    assert_eq!(*amount_milli, entry.amount_milli);
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
    }
}
