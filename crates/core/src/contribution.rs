//! Client contribution identification — Algorithm 2.
//!
//! Input: the round's gradient set `W^k_{r+1}` (one upload per selected
//! client) plus the freshly computed global gradient. The winning miner
//! clusters the combined set; clients whose uploads land in the same
//! cluster as the global gradient are **high contribution** (their cosine
//! distance θ_i to the global update becomes both their reward share and
//! their Equation 1 aggregation weight), everyone else — including every
//! point the clustering marks as noise — is **low contribution** and is
//! handled by the configured [`LowContributionStrategy`].

use crate::aggregation::WEIGHT_FLOOR;
use crate::policy::{AggregationAnchor, ProportionalReward, RewardPolicy};
use crate::reward::RewardEntry;
use crate::strategy::LowContributionStrategy;
use bfl_cluster::{ClusteringAlgorithm, DistanceMetric};
use bfl_ml::gradient::GradientVector;
use bfl_ml::tensor::{self, Matrix};
use serde::{Deserialize, Serialize};

/// The outcome of running Algorithm 2 on one round's gradient set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContributionReport {
    /// (client id, θ_i) for every high-contribution client.
    pub high_contribution: Vec<(u64, f64)>,
    /// Client ids labelled low contribution.
    pub low_contribution: Vec<u64>,
    /// The reward list the configured [`RewardPolicy`] produced for the
    /// high contributors (⟨C_i, θ_i/Σθ_k · base⟩ under the default
    /// proportional policy).
    pub rewards: Vec<RewardEntry>,
    /// The anchor gradient the report was computed against — the simple
    /// average of all uploads under [`AggregationAnchor::Mean`] (the
    /// paper's behaviour), or the configured robust anchor.
    pub global_gradient: GradientVector,
    /// The anchor gradient after applying the strategy: equal to
    /// `global_gradient` under [`LowContributionStrategy::Keep`], or the
    /// anchor recomputed over the high-contribution uploads only under
    /// `Discard`.
    pub effective_global: GradientVector,
    /// Number of clusters the algorithm found (for diagnostics/ablations).
    pub cluster_count: usize,
}

impl ContributionReport {
    /// Ids of the clients whose gradients were actually dropped from the
    /// aggregation (empty under the keep strategy).
    pub fn dropped_clients(&self, strategy: LowContributionStrategy) -> Vec<u64> {
        if strategy.discards() {
            self.low_contribution.clone()
        } else {
            Vec::new()
        }
    }
}

/// Runs Algorithm 2 with the paper's default policies (mean anchor,
/// proportional rewards).
///
/// * `uploads` — (client id, uploaded gradient) pairs for the round.
/// * `algorithm` / `metric` — the clustering backend (DBSCAN + cosine by
///   default, matching the paper).
/// * `strategy` — keep or discard low contributors.
/// * `reward_base` — the per-round reward pool.
pub fn identify_contributions(
    uploads: &[(u64, GradientVector)],
    algorithm: &ClusteringAlgorithm,
    metric: DistanceMetric,
    strategy: LowContributionStrategy,
    reward_base: f64,
) -> ContributionReport {
    let refs: Vec<(u64, &[f64])> = uploads.iter().map(|(id, g)| (*id, g.as_slice())).collect();
    identify_contributions_refs(&refs, algorithm, metric, strategy, reward_base)
}

/// [`identify_contributions`] over borrowed gradient slices — the round
/// driver hands uploads straight from Procedure-III without cloning each
/// parameter vector first.
pub fn identify_contributions_refs(
    uploads: &[(u64, &[f64])],
    algorithm: &ClusteringAlgorithm,
    metric: DistanceMetric,
    strategy: LowContributionStrategy,
    reward_base: f64,
) -> ContributionReport {
    identify_contributions_with(
        uploads,
        algorithm,
        metric,
        strategy,
        AggregationAnchor::Mean,
        0,
        &ProportionalReward { base: reward_base },
    )
}

/// Runs Algorithm 2 with pluggable policies — the full Scenario-API form.
///
/// The anchor gradient is computed over all uploads by the configured
/// [`AggregationAnchor`] (the simple average of Algorithm 1 line 24 under
/// `Mean`) and appended to the set before clustering, exactly as in the
/// paper's Algorithm 2 (the anchor is the last element of the clustered
/// set). `round` is forwarded to the [`RewardPolicy`] so round-dependent
/// incentive schemes can be plugged in.
pub fn identify_contributions_with(
    uploads: &[(u64, &[f64])],
    algorithm: &ClusteringAlgorithm,
    metric: DistanceMetric,
    strategy: LowContributionStrategy,
    anchor: AggregationAnchor,
    round: usize,
    reward: &dyn RewardPolicy,
) -> ContributionReport {
    let analysis = analyze_contributions(uploads, algorithm, metric, anchor);
    let ContributionAnalysis {
        high_contribution,
        low_contribution,
        global_gradient,
        cluster_count,
    } = analysis;

    let rewards = reward.round_rewards(round, &high_contribution);

    // Apply the strategy: discarding recomputes the anchor from the
    // high-contribution uploads only.
    let effective_global = if strategy.discards() && high_contribution.len() < uploads.len() {
        let kept: Vec<&[f64]> = uploads
            .iter()
            .filter(|(id, _)| high_contribution.iter().any(|(hid, _)| hid == id))
            .map(|(_, g)| *g)
            .collect();
        anchor.compute(&kept)
    } else {
        global_gradient.clone()
    };

    ContributionReport {
        high_contribution,
        low_contribution,
        rewards,
        global_gradient,
        effective_global,
        cluster_count,
    }
}

/// The reward-free core of Algorithm 2: anchor, clustering, and θ scores.
///
/// Split out of [`identify_contributions_with`] so the streaming
/// aggregation path can run the analysis once per *chunk* (the chunk acts
/// as the clustering committee) while settling rewards exactly once per
/// round over the concatenated scores — per-chunk reward calls would
/// re-normalize each chunk's pool and change payouts.
#[derive(Debug, Clone)]
pub struct ContributionAnalysis {
    /// (client id, θ_i) for every high-contribution client.
    pub high_contribution: Vec<(u64, f64)>,
    /// Client ids labelled low contribution.
    pub low_contribution: Vec<u64>,
    /// The anchor gradient the analysis clustered against.
    pub global_gradient: GradientVector,
    /// Number of clusters found.
    pub cluster_count: usize,
}

/// Runs Algorithm 2's analysis phase (anchor, clustering, θ) without
/// settling rewards or applying a low-contribution strategy. See
/// [`ContributionAnalysis`].
pub fn analyze_contributions(
    uploads: &[(u64, &[f64])],
    algorithm: &ClusteringAlgorithm,
    metric: DistanceMetric,
    anchor: AggregationAnchor,
) -> ContributionAnalysis {
    assert!(!uploads.is_empty(), "Algorithm 2 needs at least one upload");

    let upload_refs: Vec<&[f64]> = uploads.iter().map(|(_, g)| *g).collect();
    let global_gradient = anchor.compute(&upload_refs);

    // Pack the round's gradient set (uploads plus the anchor gradient,
    // appended last) into one row-major matrix. This single packed copy
    // feeds both the clustering backend — whose pairwise distances come
    // out of one Gram GEMM — and the batched θ computation below.
    let n = uploads.len();
    let dim = global_gradient.len();
    let mut clustered = Matrix::zeros(0, 0);
    clustered.data.reserve((n + 1) * dim);
    for upload in &upload_refs {
        assert_eq!(upload.len(), dim, "all uploads must have equal length");
        clustered.data.extend_from_slice(upload);
    }
    clustered.data.extend_from_slice(&global_gradient);
    clustered.rows = n + 1;
    clustered.cols = dim;

    let labels = algorithm.run_packed(&clustered, metric);
    let global_index = n;
    let cluster_count = labels.cluster_count();

    // Algorithm 2's θ weights — cosine distance of every upload to the
    // global gradient — as one matrix-vector product plus per-row norms,
    // instead of one full vector traversal per upload.
    let inner: Vec<f64> = clustered.matvec(&global_gradient);
    let global_norm = tensor::l2_norm(&global_gradient);
    let theta = |i: usize| -> f64 {
        let upload_norm = tensor::l2_norm(upload_refs[i]);
        let similarity = if upload_norm == 0.0 || global_norm == 0.0 {
            0.0
        } else {
            (inner[i] / (upload_norm * global_norm)).clamp(-1.0, 1.0)
        };
        (1.0 - similarity).max(WEIGHT_FLOOR)
    };

    let mut high_contribution = Vec::new();
    let mut low_contribution = Vec::new();
    for (i, (client_id, _)) in uploads.iter().enumerate() {
        if labels.same_cluster(i, global_index) {
            high_contribution.push((*client_id, theta(i)));
        } else {
            low_contribution.push(*client_id);
        }
    }

    // Degenerate case: if the clustering failed to place the anchor
    // gradient in any cluster (for example every point is noise under a
    // tiny eps), treat every client as high contribution rather than
    // discarding the whole round.
    if high_contribution.is_empty() {
        high_contribution = uploads
            .iter()
            .enumerate()
            .map(|(i, (id, _))| (*id, theta(i)))
            .collect();
        low_contribution.clear();
    }

    ContributionAnalysis {
        high_contribution,
        low_contribution,
        global_gradient,
        cluster_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ten honest-looking uploads near +x plus `forged` sign-flipped ones.
    fn uploads_with_forgeries(honest: usize, forged: usize) -> Vec<(u64, GradientVector)> {
        let mut out = Vec::new();
        for i in 0..honest {
            let t = i as f64 * 0.01;
            out.push((i as u64, vec![1.0 + t, 0.5 - t, 0.2 + t]));
        }
        for i in 0..forged {
            let t = i as f64 * 0.01;
            out.push((
                (honest + i) as u64,
                vec![-(1.0 + t), -(0.5 - t), -(0.2 + t)],
            ));
        }
        out
    }

    fn dbscan() -> ClusteringAlgorithm {
        ClusteringAlgorithm::default_dbscan()
    }

    #[test]
    #[should_panic(expected = "at least one upload")]
    fn empty_uploads_panic() {
        let _ = identify_contributions(
            &[],
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            100.0,
        );
    }

    #[test]
    fn all_honest_clients_are_high_contribution() {
        let uploads = uploads_with_forgeries(8, 0);
        let report = identify_contributions(
            &uploads,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            100.0,
        );
        assert_eq!(report.high_contribution.len(), 8);
        assert!(report.low_contribution.is_empty());
        assert_eq!(report.rewards.len(), 8);
        assert_eq!(report.effective_global, report.global_gradient);
        assert!(report.cluster_count >= 1);
    }

    #[test]
    fn forged_gradients_are_labelled_low_contribution() {
        let uploads = uploads_with_forgeries(8, 2);
        let report = identify_contributions(
            &uploads,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            100.0,
        );
        // The two sign-flipped uploads (ids 8 and 9) form their own cluster,
        // far from the global average which sits nearer the honest mass.
        assert!(report.low_contribution.contains(&8));
        assert!(report.low_contribution.contains(&9));
        assert_eq!(report.high_contribution.len(), 8);
        // Rewards only go to high contributors.
        assert!(report.rewards.iter().all(|r| r.client_id < 8));
    }

    #[test]
    fn discard_strategy_recomputes_the_global_update() {
        let uploads = uploads_with_forgeries(8, 2);
        let keep = identify_contributions(
            &uploads,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            100.0,
        );
        let discard = identify_contributions(
            &uploads,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Discard,
            100.0,
        );
        assert_eq!(keep.effective_global, keep.global_gradient);
        assert_ne!(discard.effective_global, discard.global_gradient);
        // The discarded aggregate is closer to the honest direction: its
        // first coordinate should be larger (honest updates are ~ +1).
        assert!(discard.effective_global[0] > keep.effective_global[0]);
        assert_eq!(
            discard.dropped_clients(LowContributionStrategy::Discard),
            vec![8, 9]
        );
        assert!(keep
            .dropped_clients(LowContributionStrategy::Keep)
            .is_empty());
    }

    #[test]
    fn reward_shares_sum_to_one_among_high_contributors() {
        let uploads = uploads_with_forgeries(6, 1);
        let report = identify_contributions(
            &uploads,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Discard,
            10.0,
        );
        let share_sum: f64 = report.rewards.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_clustering_falls_back_to_everyone_high() {
        // A single upload: DBSCAN with min_points=2 will mark both the
        // upload and the global gradient as one cluster (identical points),
        // but an aggressive configuration can fail; either way nobody is
        // discarded.
        let uploads = vec![(0u64, vec![1.0, 2.0, 3.0])];
        let report = identify_contributions(
            &uploads,
            &ClusteringAlgorithm::Dbscan {
                eps: 1e-9,
                min_points: 5,
            },
            DistanceMetric::Cosine,
            LowContributionStrategy::Discard,
            100.0,
        );
        assert_eq!(report.high_contribution.len(), 1);
        assert!(report.low_contribution.is_empty());
    }

    /// Nine honest uploads near the base direction plus one -8x scaling
    /// attacker. The attacker's own honest gradient deviates slightly from
    /// the crowd; amplified by -8 that deviation dominates the simple
    /// average, so the mean anchor points in an essentially arbitrary
    /// direction far (cosine-wise) from *both* clusters — the corruption
    /// the ROADMAP open item recorded.
    fn uploads_with_scaling_attacker() -> Vec<(u64, GradientVector)> {
        let mut out = Vec::new();
        for i in 0..9 {
            let t = i as f64 * 0.01;
            out.push((i as u64, vec![1.0 + t, 0.5 - t, 0.2 + t]));
        }
        // -8 x (1.05, 0.8, -0.05): a plausible honest gradient with a
        // modest deviation, scaled hard.
        out.push((9, vec![-8.4, -6.4, 0.4]));
        out
    }

    #[test]
    fn mean_anchor_is_corrupted_by_a_strong_scaling_attacker() {
        // With the plain-average anchor the -8x upload drags the anchor
        // onto itself: the anchor leaves the honest cluster and the
        // degenerate keep-everyone fallback (or a mislabelling) results.
        let uploads = uploads_with_scaling_attacker();
        let report = identify_contributions(
            &uploads,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Discard,
            100.0,
        );
        assert!(
            !report.low_contribution.contains(&9),
            "the mean anchor fails to isolate the -8x attacker (got low = {:?})",
            report.low_contribution
        );
    }

    #[test]
    fn robust_anchors_survive_the_scaling_attacker_that_corrupts_the_mean() {
        let uploads = uploads_with_scaling_attacker();
        let refs: Vec<(u64, &[f64])> = uploads.iter().map(|(id, g)| (*id, g.as_slice())).collect();
        for anchor in [
            AggregationAnchor::Median,
            AggregationAnchor::TrimmedMean { trim_ratio: 0.2 },
        ] {
            let report = identify_contributions_with(
                &refs,
                &dbscan(),
                DistanceMetric::Cosine,
                LowContributionStrategy::Discard,
                anchor,
                1,
                &ProportionalReward { base: 100.0 },
            );
            assert_eq!(
                report.low_contribution,
                vec![9],
                "{anchor:?} should isolate exactly the attacker"
            );
            assert_eq!(report.high_contribution.len(), 9);
            // The effective global is recomputed from the honest uploads
            // and stays in the honest direction.
            assert!(report.effective_global[0] > 0.9);
            assert!(report.rewards.iter().all(|r| r.client_id < 9));
        }
    }

    #[test]
    fn custom_reward_policies_plug_into_algorithm_2() {
        /// Pays every high contributor a flat amount, ignoring θ.
        struct FlatReward;
        impl RewardPolicy for FlatReward {
            fn round_rewards(&self, round: usize, scores: &[(u64, f64)]) -> Vec<RewardEntry> {
                scores
                    .iter()
                    .map(|&(client_id, theta)| RewardEntry {
                        client_id,
                        theta,
                        share: 1.0 / scores.len() as f64,
                        amount_milli: 1000 + round as u64,
                    })
                    .collect()
            }
        }

        let uploads = uploads_with_forgeries(4, 0);
        let refs: Vec<(u64, &[f64])> = uploads.iter().map(|(id, g)| (*id, g.as_slice())).collect();
        let report = identify_contributions_with(
            &refs,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Keep,
            AggregationAnchor::Mean,
            7,
            &FlatReward,
        );
        assert_eq!(report.rewards.len(), 4);
        assert!(report.rewards.iter().all(|r| r.amount_milli == 1007));
    }

    #[test]
    fn mean_anchor_form_matches_the_default_wrapper() {
        let uploads = uploads_with_forgeries(6, 2);
        let refs: Vec<(u64, &[f64])> = uploads.iter().map(|(id, g)| (*id, g.as_slice())).collect();
        let via_wrapper = identify_contributions(
            &uploads,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Discard,
            50.0,
        );
        let via_full = identify_contributions_with(
            &refs,
            &dbscan(),
            DistanceMetric::Cosine,
            LowContributionStrategy::Discard,
            AggregationAnchor::Mean,
            0,
            &ProportionalReward { base: 50.0 },
        );
        assert_eq!(via_wrapper, via_full);
    }

    #[test]
    fn alternative_clustering_backends_also_separate_forgeries() {
        let uploads = uploads_with_forgeries(8, 2);
        for algorithm in [
            ClusteringAlgorithm::KMeans {
                k: 2,
                max_iterations: 50,
            },
            ClusteringAlgorithm::Agglomerative {
                distance_threshold: 0.5,
            },
        ] {
            let report = identify_contributions(
                &uploads,
                &algorithm,
                DistanceMetric::Cosine,
                LowContributionStrategy::Discard,
                100.0,
            );
            assert!(
                report.low_contribution.contains(&8) && report.low_contribution.contains(&9),
                "{algorithm:?} should isolate the forged uploads, got {:?}",
                report.low_contribution
            );
        }
    }
}
