//! The stepwise round engine behind every FAIR-BFL run.
//!
//! PR 1–3 made the substrates fast; this module makes the round loop
//! *composable*. [`SimulationRun`] owns all of a run's state — clients,
//! keys, consensus group, clock, accumulated history — and advances one
//! communication round per [`SimulationRun::step`] call, so drivers can
//! interleave their own logic (early stopping, logging, checkpointing,
//! sweep bookkeeping) between rounds instead of handing control to a
//! monolithic `run()` for the whole experiment. A full run is literally
//! `while run.step()?.is_some() {}` — which is exactly what the legacy
//! [`crate::simulation::BflSimulation::run`] wrapper and the
//! [`crate::scenario::Scenario`] drivers do, so a step-driven run is
//! bit-identical to a one-shot run by construction.

use crate::config::{BflConfig, ProvisioningMode};
use crate::detection::{DetectionRow, DetectionTable};
use crate::error::CoreError;
use crate::flexibility::FlexibilityMode;
use crate::policy::{ProportionalReward, RewardPolicy};
use crate::population::{sample_population, ClientPool, ImplicitSpec};
use crate::procedures::global_update::GlobalUpdatePolicy;
use crate::procedures::{exchange, global_update, local_update, mining, upload};
use crate::simulation::{KpiRow, RoundOutcome, SimulationResult};
use bfl_chain::consensus::RoundConsensus;
use bfl_chain::mempool::Mempool;
use bfl_chain::miner::Miner;
use bfl_chain::{Blockchain, Transaction};
use bfl_crypto::{CryptoError, KeyStore, LazyKeyVault, RsaKeyPair};
use bfl_data::Dataset;
use bfl_fl::attack::AttackKind;
use bfl_fl::client::Client;
use bfl_fl::config::PartitionKind;
use bfl_fl::history::{RoundRecord, RunHistory};
use bfl_fl::selection::{drop_stragglers, select_clients};
use bfl_fl::trainer::{FlAlgorithm, FlTrainer};
use bfl_ml::metrics::accuracy;
use bfl_ml::model::{AnyModel, Model};
use bfl_ml::optimizer::LocalTrainingConfig;
use bfl_net::{SimClock, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// A resumable FAIR-BFL run: construct once, [`step`](Self::step) per
/// round, [`into_result`](Self::into_result) when done (or bail early —
/// the result covers the completed rounds).
pub struct SimulationRun<'a> {
    config: BflConfig,
    reward: Box<dyn RewardPolicy + 'a>,
    state: RunState<'a>,
    round: usize,
    finished: bool,
    history: RunHistory,
    outcomes: Vec<RoundOutcome>,
    detection: DetectionTable,
    reward_totals: BTreeMap<u64, u64>,
}

/// Mode-specific live state.
enum RunState<'a> {
    Learning(Box<LearningState<'a>>),
    ChainOnly(ChainOnlyState),
}

/// Live state of the learning modes (full FAIR-BFL and FL-only). Fields
/// are crate-visible because the event-driven engine
/// ([`crate::events`]) drives the same state through its handlers.
pub(crate) struct LearningState<'a> {
    pub(crate) train: &'a Dataset,
    pub(crate) test: &'a Dataset,
    pub(crate) rng: StdRng,
    /// The client population: a materialized `Vec<Client>` under eager
    /// provisioning, or an implicit population derived per index on first
    /// touch (client id == population index in both backends).
    pub(crate) pool: ClientPool,
    pub(crate) local_config: LocalTrainingConfig,
    /// RSA identities when `verify_signatures` is on: eagerly provisioned
    /// for the whole population, or derived lazily per selection.
    pub(crate) keys: Option<KeyChain>,
    pub(crate) consensus: Option<RoundConsensus>,
    pub(crate) topology: Topology,
    pub(crate) global_model: AnyModel,
    pub(crate) global_params: Vec<f64>,
    pub(crate) clock: SimClock,
    /// Clients currently sitting out after being discarded.
    pub(crate) cooldown: BTreeMap<u64, usize>,
    /// The event-driven runtime, present when the scenario runs a
    /// flexible block quota ([`SyncMode::FlexibleQuota`]); `None` keeps
    /// the lockstep engine with zero overhead.
    pub(crate) async_rt: Option<Box<crate::events::AsyncRuntime>>,
}

/// Live state of the chain-only (pure blockchain) mode.
struct ChainOnlyState {
    rng: StdRng,
    consensus: RoundConsensus,
    mempool: Mempool,
    clock: SimClock,
}

/// Procedure-II key material, provisioned eagerly (one sequential keygen
/// pass over the whole population at run start — the PR 4–6 behaviour) or
/// lazily (per-index streams drawn on first selection, budgeted; see
/// [`LazyKeyVault`] for the determinism contract).
pub(crate) enum KeyChain {
    /// Whole-population keys generated up front.
    Eager {
        /// Miner-side public-key registry.
        store: KeyStore,
        /// Client-side private pairs, keyed by id.
        pairs: BTreeMap<u64, RsaKeyPair>,
    },
    /// Keys derived on first selection under an O(active) budget.
    Lazy(LazyKeyVault),
}

impl KeyChain {
    /// The miner-side public-key registry (full population when eager,
    /// currently-cached subset when lazy).
    pub(crate) fn store(&self) -> &KeyStore {
        match self {
            KeyChain::Eager { store, .. } => store,
            KeyChain::Lazy(vault) => vault.store(),
        }
    }

    /// Currently-held private pairs keyed by client id.
    pub(crate) fn pairs(&self) -> &BTreeMap<u64, RsaKeyPair> {
        match self {
            KeyChain::Eager { pairs, .. } => pairs,
            KeyChain::Lazy(vault) => vault.pairs(),
        }
    }

    /// Makes sure every id in `ids` holds a key pair before Procedure II
    /// runs. A no-op for the eager chain (everyone was provisioned at run
    /// start); the lazy vault derives-or-touches each id, so the whole
    /// selection survives the LRU budget for the round.
    pub(crate) fn ensure_selected(&mut self, ids: &[u64]) -> Result<(), CryptoError> {
        match self {
            KeyChain::Eager { .. } => Ok(()),
            KeyChain::Lazy(vault) => vault.ensure(ids),
        }
    }

    /// Client `id`'s signing pair, deriving it first if lazy. `None` means
    /// the id has no identity (eager chain without that client) — the
    /// caller treats the upload as unsigned-and-rejected.
    pub(crate) fn signing_pair(&mut self, id: u64) -> Option<&RsaKeyPair> {
        match self {
            KeyChain::Eager { pairs, .. } => pairs.get(&id),
            KeyChain::Lazy(vault) => vault.pair(id).ok(),
        }
    }
}

impl<'a> SimulationRun<'a> {
    /// Validates the configuration and provisions the run's state (client
    /// population, data shards, RSA identities, consensus group, model).
    /// No rounds execute until [`step`](Self::step) is called.
    pub fn new(
        config: BflConfig,
        train: &'a Dataset,
        test: &'a Dataset,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let state = match config.mode {
            FlexibilityMode::ChainOnly => RunState::ChainOnly(ChainOnlyState::new(&config)),
            _ => RunState::Learning(Box::new(LearningState::new(&config, train, test)?)),
        };
        Ok(SimulationRun {
            reward: Box::new(ProportionalReward {
                base: config.reward_base,
            }),
            config,
            state,
            round: 0,
            finished: false,
            history: RunHistory::new(),
            outcomes: Vec::new(),
            detection: DetectionTable::new(),
            reward_totals: BTreeMap::new(),
        })
    }

    /// Replaces the reward policy (defaults to the paper's
    /// [`ProportionalReward`] over the configured `reward_base`). Swap it
    /// before the first step — rounds already executed keep their payouts.
    pub fn with_reward_policy(mut self, reward: Box<dyn RewardPolicy + 'a>) -> Self {
        self.reward = reward;
        self
    }

    /// The run's configuration.
    pub fn config(&self) -> &BflConfig {
        &self.config
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// True once every configured round has run (or a round failed).
    pub fn is_finished(&self) -> bool {
        self.finished || self.round >= self.config.fl.rounds
    }

    /// The accuracy/delay history accumulated so far.
    pub fn history(&self) -> &RunHistory {
        &self.history
    }

    /// Per-round outcomes accumulated so far.
    pub fn outcomes(&self) -> &[RoundOutcome] {
        &self.outcomes
    }

    /// The detection table accumulated so far.
    pub fn detection(&self) -> &DetectionTable {
        &self.detection
    }

    /// Cumulative rewards per client so far, in milli-units.
    pub fn reward_totals(&self) -> &BTreeMap<u64, u64> {
        &self.reward_totals
    }

    /// The deterministic event trace accumulated so far. Empty for
    /// synchronous runs (lockstep rounds schedule no events); under a
    /// flexible quota, the same scenario and seed always produce the
    /// identical trace — a property the tests pin.
    pub fn event_trace(&self) -> &[crate::events::EventRecord] {
        match &self.state {
            RunState::Learning(state) => state
                .async_rt
                .as_deref()
                .map(|rt| rt.trace())
                .unwrap_or(&[]),
            RunState::ChainOnly(_) => &[],
        }
    }

    /// The canonical ledger, when the mode mines.
    pub fn chain(&self) -> Option<&Blockchain> {
        match &self.state {
            RunState::Learning(state) => state.consensus.as_ref().map(|c| c.canonical_chain()),
            RunState::ChainOnly(state) => Some(state.consensus.canonical_chain()),
        }
    }

    /// Advances one communication round. Returns the round's outcome, or
    /// `None` once all configured rounds have run. A failed round (ledger
    /// rejection, empty gradient set) finishes the run and surfaces its
    /// error.
    pub fn step(&mut self) -> Result<Option<RoundOutcome>, CoreError> {
        if self.is_finished() {
            self.finished = true;
            return Ok(None);
        }
        let round = self.round + 1;
        let stepped = match &mut self.state {
            RunState::Learning(state) => state.step(&self.config, self.reward.as_ref(), round),
            RunState::ChainOnly(state) => state.step(&self.config, round),
        };
        let (outcome, elapsed_s, detection_row) = match stepped {
            Ok(parts) => parts,
            Err(e) => {
                self.finished = true;
                return Err(e);
            }
        };
        self.round = round;

        for reward in &outcome.rewards {
            *self.reward_totals.entry(reward.client_id).or_insert(0) += reward.amount_milli;
        }
        if let Some(row) = detection_row {
            self.detection.push(row);
        }
        self.history.push(RoundRecord {
            round,
            accuracy: outcome.accuracy,
            train_loss: outcome.train_loss,
            round_delay_s: outcome.breakdown.total(),
            elapsed_s,
            participants: outcome.participants,
        });
        self.outcomes.push(outcome.clone());
        Ok(Some(outcome))
    }

    /// Runs every remaining round.
    pub fn run_to_completion(&mut self) -> Result<(), CoreError> {
        while self.step()?.is_some() {}
        Ok(())
    }

    /// Finalizes the run into a [`SimulationResult`] covering the rounds
    /// completed so far.
    pub fn into_result(self) -> SimulationResult {
        let (chain, final_params) = match self.state {
            RunState::Learning(state) => (
                state.consensus.map(|c| c.canonical_chain().clone()),
                state.global_params,
            ),
            RunState::ChainOnly(state) => {
                (Some(state.consensus.canonical_chain().clone()), Vec::new())
            }
        };
        SimulationResult {
            history: self.history,
            outcomes: self.outcomes,
            chain,
            detection: self.detection,
            reward_totals: self.reward_totals,
            final_params,
            mode: self.config.mode,
        }
    }
}

/// What one round hands back to the accumulator: the outcome record, the
/// simulated clock after the round, and the round's detection row (absent
/// in chain-only mode, which never runs Algorithm 2).
pub(crate) type SteppedRound = (RoundOutcome, f64, Option<DetectionRow>);

impl<'a> LearningState<'a> {
    fn new(config: &BflConfig, train: &'a Dataset, test: &'a Dataset) -> Result<Self, CoreError> {
        let mut rng = StdRng::seed_from_u64(config.fl.seed);

        // Client population and data shards (reusing the FL trainer's
        // partitioning so baselines and FAIR-BFL see identical splits).
        // An implicit partition always gets the implicit pool — and with
        // it the rejection-sampled Procedure I — regardless of the
        // provisioning mode, so that eager and lazy provisioning draw
        // identically from the learning stream and stay bit-identical.
        // The provisioning mode only sets the cache budget: eager pins
        // every touched client forever (the population is the budget),
        // lazy evicts down to the configured O(active) budget. Implicit
        // partitions consume zero learning-stream draws either way.
        let pool = match config.fl.partition {
            PartitionKind::ImplicitIid { samples_per_client } => {
                let cache_budget = match config.provisioning {
                    ProvisioningMode::Eager => config.fl.clients,
                    ProvisioningMode::Lazy { cache_budget } => cache_budget,
                };
                ClientPool::implicit(ImplicitSpec {
                    seed: config.fl.seed,
                    population: config.fl.clients,
                    samples_per_client,
                    train_len: train.len(),
                    cache_budget,
                })
            }
            _ => {
                let trainer = FlTrainer::new(config.fl, FlAlgorithm::FedAvg);
                ClientPool::materialized(trainer.build_clients(train, &mut rng))
            }
        };
        let local_config = config.fl.local;

        // Key provisioning (Procedure-II's RSA identities). Keys come
        // from a dedicated RNG stream so the learning trajectory is
        // invariant to crypto details: how many candidates a prime
        // search consumes — or whether signatures are enabled at all —
        // must not reshuffle client selection and training randomness.
        // Client ids are population indices by construction, so eager
        // provisioning enumerates `0..n` directly.
        let keys: Option<KeyChain> = if config.verify_signatures {
            Some(match config.provisioning {
                ProvisioningMode::Eager => {
                    let mut key_rng = StdRng::seed_from_u64(config.fl.seed ^ 0x5EED_0F4B);
                    let mut store = KeyStore::new();
                    let ids: Vec<u64> = (0..config.fl.clients as u64).collect();
                    let pairs = store
                        .provision(&mut key_rng, &ids, config.rsa_modulus_bits)
                        .map_err(CoreError::from)?;
                    KeyChain::Eager { store, pairs }
                }
                ProvisioningMode::Lazy { cache_budget } => KeyChain::Lazy(LazyKeyVault::new(
                    config.fl.seed ^ 0x5EED_0F4B,
                    config.rsa_modulus_bits,
                    cache_budget,
                )),
            })
        } else {
            None
        };

        // Consensus group (Procedure-V), only when the mode mines. The
        // replicas take the delay model's block-size limit (as the
        // chain-only baseline already does): population-scale rounds
        // carry O(participants) reward lists, which outgrow the default
        // limit long before the gradient does.
        let consensus = if config.mode.mines() {
            let miners: Vec<Miner> = (0..config.miners as u64)
                .map(|id| Miner::new(id, config.delay.miner_hash_rate))
                .collect();
            let mut consensus = RoundConsensus::new(
                miners,
                bfl_chain::PowConfig::new(64).with_mining_threads(config.mining_threads),
            );
            consensus
                .replicas
                .iter_mut()
                .for_each(|c| c.max_block_bytes = config.delay.max_block_bytes);
            Some(consensus)
        } else {
            None
        };

        let topology = Topology::new(config.fl.clients, config.miners);
        let global_model: AnyModel = config.fl.model.build(&mut rng);
        let global_params = global_model.params();

        // The event-driven runtime only exists when the scenario asks for
        // a flexible block quota; the synchronous path stays untouched.
        let async_rt = if config.sync.is_synchronous() {
            None
        } else {
            Some(Box::new(crate::events::AsyncRuntime::new(config)))
        };

        Ok(LearningState {
            train,
            test,
            rng,
            pool,
            local_config,
            keys,
            consensus,
            topology,
            global_model,
            global_params,
            clock: SimClock::new(),
            cooldown: BTreeMap::new(),
            async_rt,
        })
    }

    /// One communication round, dispatched on the scenario's sync mode:
    /// the lockstep pass (the PR 4 engine, bit-identical) or the
    /// event-driven flexible-quota round of [`crate::events`].
    fn step(
        &mut self,
        config: &BflConfig,
        reward_policy: &dyn RewardPolicy,
        round: usize,
    ) -> Result<SteppedRound, CoreError> {
        match config.sync {
            crate::config::SyncMode::Synchronous => {
                self.step_synchronous(config, reward_policy, round)
            }
            crate::config::SyncMode::FlexibleQuota { quota } => {
                crate::events::step_flexible(self, config, reward_policy, round, quota)
            }
        }
    }

    /// Advances the discard cooldowns by one round (shared verbatim by
    /// both engines — the RNG is untouched, so extraction cannot perturb
    /// the lockstep path).
    pub(crate) fn advance_cooldowns(&mut self) {
        self.cooldown.retain(|_, remaining| {
            *remaining = remaining.saturating_sub(1);
            *remaining > 0
        });
    }

    /// Designates this round's attackers among `selected_positions`.
    /// Returns the per-participant attack side table (aligned with the
    /// selection, so the client population is never cloned per round)
    /// and the sorted ground-truth attacker ids. Shared verbatim by both
    /// engines: the RNG draw order is part of the bit-identity contract.
    pub(crate) fn designate_attackers(
        &mut self,
        config: &BflConfig,
        selected_positions: &[usize],
    ) -> (Vec<Option<AttackKind>>, Vec<u64>) {
        let mut attacks: Vec<Option<AttackKind>> = vec![None; selected_positions.len()];
        let mut attackers = Vec::new();
        if config.attack.enabled && !selected_positions.is_empty() {
            let max = config.attack.max_attackers.min(selected_positions.len());
            let min = config.attack.min_attackers.min(max);
            let count = if min == max {
                min
            } else {
                self.rng.gen_range(min..=max)
            };
            let mut order: Vec<usize> = (0..selected_positions.len()).collect();
            use rand::seq::SliceRandom;
            order.shuffle(&mut self.rng);
            for &i in order.iter().take(count) {
                attacks[i] = Some(config.attack.kind);
                // Client id == population index in both pool backends, so
                // no client needs materializing to name an attacker.
                attackers.push(selected_positions[i] as u64);
            }
            attackers.sort_unstable();
        }
        (attacks, attackers)
    }

    /// Puts the round's dropped clients on the discard cooldown (the
    /// "clients selection" effect of Section 3.2). Shared by both engines.
    pub(crate) fn apply_discard_cooldowns(&mut self, config: &BflConfig, dropped: &[u64]) {
        if config.strategy.discards() {
            for &id in dropped {
                self.cooldown
                    .insert(id, config.discard_cooldown_rounds.max(1));
            }
        }
    }

    /// One full lockstep pass through Procedures I–V plus bookkeeping.
    fn step_synchronous(
        &mut self,
        config: &BflConfig,
        reward_policy: &dyn RewardPolicy,
        round: usize,
    ) -> Result<SteppedRound, CoreError> {
        self.advance_cooldowns();

        // Procedure-I selection. The materialized backend keeps the PR 4
        // shuffle-truncate draw (bit-identity contract); the implicit
        // backend rejection-samples distinct indices so no
        // population-sized vector ever exists.
        let selected_positions = if self.pool.is_implicit() {
            let population = self.pool.population();
            let count = config.fl.selected_per_round();
            let cooldown = &self.cooldown;
            let picked = sample_population(
                population,
                count,
                |i| !cooldown.contains_key(&(i as u64)),
                &mut self.rng,
            );
            if picked.is_empty() {
                // Mirror the eager engine's empty-pool branch: re-sample
                // ignoring cooldowns rather than producing an empty round.
                sample_population(population, count, |_| true, &mut self.rng)
            } else {
                picked
            }
        } else {
            let clients = self.pool.materialized_slice();
            let active: Vec<usize> = (0..clients.len())
                .filter(|i| !self.cooldown.contains_key(&clients[*i].id))
                .collect();
            let pool: &[usize] = if active.is_empty() { &[] } else { &active };
            if pool.is_empty() {
                select_clients(clients.len(), config.fl.selected_per_round(), &mut self.rng)
            } else {
                select_clients(pool.len(), config.fl.selected_per_round(), &mut self.rng)
                    .into_iter()
                    .map(|i| pool[i])
                    .collect()
            }
        };
        let selected_positions =
            drop_stragglers(&selected_positions, config.fl.drop_percent, &mut self.rng);

        let (attacks, attackers) = self.designate_attackers(config, &selected_positions);

        // Procedure-I: local learning. The implicit backend materializes
        // exactly the round's working set (O(participants)) and trains
        // over identity positions; the materialized backend fans out over
        // the population slice untouched.
        let round_seed = config.fl.seed ^ (round as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let (updates, max_steps) = if self.pool.is_implicit() {
            let round_clients: Vec<Client> = selected_positions
                .iter()
                .map(|&p| self.pool.client_cloned(p))
                .collect();
            let identity: Vec<usize> = (0..round_clients.len()).collect();
            let updates = local_update::run_local_updates_with_attacks(
                &round_clients,
                &identity,
                &attacks,
                config.fl.model,
                &self.global_params,
                self.train,
                &self.local_config,
                round_seed,
            );
            let max_steps =
                local_update::max_local_steps(&round_clients, &identity, &self.local_config);
            (updates, max_steps)
        } else {
            let clients = self.pool.materialized_slice();
            let updates = local_update::run_local_updates_with_attacks(
                clients,
                &selected_positions,
                &attacks,
                config.fl.model,
                &self.global_params,
                self.train,
                &self.local_config,
                round_seed,
            );
            let max_steps =
                local_update::max_local_steps(clients, &selected_positions, &self.local_config);
            (updates, max_steps)
        };

        // Procedure-II: upload + verification. The lazy key chain
        // provisions (or LRU-touches) exactly the selected identities
        // before the signing fan-out.
        if let Some(keys) = self.keys.as_mut() {
            let ids: Vec<u64> = updates.iter().map(|u| u.client_id).collect();
            keys.ensure_selected(&ids).map_err(CoreError::from)?;
        }
        let uploads = upload::upload_gradients(
            &updates,
            &self.topology,
            self.keys.as_ref().map(KeyChain::pairs),
            self.keys.as_ref().map(KeyChain::store),
            &mut self.rng,
        );

        // Procedure-III: miner exchange (skipped in FL-only mode, where
        // the single aggregator already holds every accepted upload).
        // Both paths consume the upload outcome, moving the round's
        // parameter vectors into the merged set instead of cloning.
        let merged = if config.mode.runs(crate::flexibility::Procedure::Exchange) {
            exchange::exchange_gradients(uploads, config.miners).merged
        } else {
            uploads.into_all_accepted()
        };
        if merged.is_empty() {
            return Err(CoreError::EmptyRound { round });
        }

        // Procedure-IV: global update + Algorithm 2, under the scenario's
        // anchor and reward policies.
        let mut global = global_update::compute_global_update(
            &merged,
            &GlobalUpdatePolicy {
                clustering: &config.clustering,
                metric: config.metric,
                strategy: config.strategy,
                fair_aggregation: config.fair_aggregation,
                anchor: config.anchor,
                round,
                reward: reward_policy,
            },
        );
        self.global_params = std::mem::take(&mut global.global_params);
        self.global_model.set_params(&self.global_params);

        // Procedure-V: mining and consensus.
        let block_hash = if let Some(consensus) = self.consensus.as_mut() {
            let outcome = mining::mine_round(
                consensus,
                round as u64,
                &self.global_params,
                &global.report.rewards,
                self.clock.now_millis(),
                &mut self.rng,
            )?;
            Some(outcome.block.hash_hex())
        } else {
            None
        };

        // Discard strategy: dropped clients sit out the next few rounds.
        self.apply_discard_cooldowns(config, &global.dropped);

        // Delay accounting and the clock.
        let breakdown = match config.mode {
            FlexibilityMode::FullBfl => {
                config
                    .delay
                    .fair_round(merged.len(), max_steps, config.miners, &mut self.rng)
            }
            FlexibilityMode::FlOnly => {
                config
                    .delay
                    .federated_round(merged.len(), max_steps, &mut self.rng)
            }
            FlexibilityMode::ChainOnly => unreachable!("handled by ChainOnlyState"),
        };
        self.clock.advance(breakdown.total());

        // Evaluation.
        let test_accuracy = accuracy(
            &self.global_model,
            &self.test.features,
            &self.test.labels,
            None,
        );
        let train_loss = updates
            .iter()
            .map(|u| u.stats.final_epoch_loss)
            .sum::<f64>()
            / updates.len().max(1) as f64;

        let rewards_paid = global.report.rewards.iter().map(|r| r.amount_milli).sum();
        let detection_row = DetectionRow::new(round, &attackers, &global.dropped);
        let outcome = RoundOutcome {
            round,
            breakdown,
            accuracy: test_accuracy,
            train_loss,
            participants: merged.len(),
            stale_included: 0,
            attackers,
            dropped: global.dropped,
            high_contributors: global.report.high_contribution.len(),
            rewards_paid_milli: rewards_paid,
            rewards: global.report.rewards,
            block_hash,
            kpi: KpiRow {
                makespan_s: breakdown.total(),
                ..KpiRow::default()
            },
        };
        Ok((outcome, self.clock.now_seconds(), Some(detection_row)))
    }
}

impl ChainOnlyState {
    /// Chain-only mode: workers submit generic transactions, miners drain
    /// the mempool into blocks — the pure-blockchain baseline.
    fn new(config: &BflConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.fl.seed);
        let miners: Vec<Miner> = (0..config.miners as u64)
            .map(|id| Miner::new(id, config.delay.miner_hash_rate))
            .collect();
        // Real mining uses a light difficulty so wall-clock time stays
        // negligible; the *simulated* delay comes from the delay model.
        let mut consensus = RoundConsensus::new(
            miners,
            bfl_chain::PowConfig::new(64).with_mining_threads(config.mining_threads),
        );
        consensus
            .replicas
            .iter_mut()
            .for_each(|c| c.max_block_bytes = config.delay.max_block_bytes);
        ChainOnlyState {
            rng,
            consensus,
            mempool: Mempool::new(),
            clock: SimClock::new(),
        }
    }

    fn step(&mut self, config: &BflConfig, round: usize) -> Result<SteppedRound, CoreError> {
        // Every worker submits one transaction.
        for worker in 0..config.fl.clients as u64 {
            self.mempool.submit(Transaction::local_gradient(
                worker,
                round as u64,
                vec![0u8; config.delay.baseline_tx_bytes],
            ));
        }
        // Miners clear the backlog, one block at a time.
        while !self.mempool.is_empty() {
            let batch = self.mempool.drain_block(config.delay.max_block_bytes);
            self.consensus
                .seal_round(batch, self.clock.now_millis(), &mut self.rng)
                .map_err(CoreError::from)?;
        }

        let breakdown =
            config
                .delay
                .blockchain_round(config.fl.clients, config.miners, &mut self.rng);
        self.clock.advance(breakdown.total());
        let outcome = RoundOutcome {
            round,
            breakdown,
            accuracy: 0.0,
            train_loss: 0.0,
            participants: config.fl.clients,
            stale_included: 0,
            attackers: Vec::new(),
            dropped: Vec::new(),
            high_contributors: 0,
            rewards_paid_milli: 0,
            rewards: Vec::new(),
            block_hash: Some(self.consensus.canonical_chain().tip().hash_hex()),
            kpi: KpiRow {
                makespan_s: breakdown.total(),
                ..KpiRow::default()
            },
        };
        Ok((outcome, self.clock.now_seconds(), None))
    }
}
