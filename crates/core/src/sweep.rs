//! Parallel scenario sweeps — the grid engine behind the Figure 5–7 and
//! Table 2 experiment families.
//!
//! A sweep is a list of labelled [`Scenario`]s run over one shared
//! train/test split. [`SweepRunner`] fans the grid across cores through
//! [`bfl_ml::par`], whose fork/join map is order-stable: cell `i`'s
//! result always lands at index `i`, and each cell's run is seeded
//! entirely by its own scenario (the datasets are shared immutably), so
//! the produced results are bit-identical regardless of how many worker
//! threads the sweep uses — a property the tests pin.

use crate::error::CoreError;
use crate::scenario::Scenario;
use crate::simulation::SimulationResult;
use bfl_data::Dataset;
use bfl_ml::par;

/// One labelled cell of a sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable cell label (shows up in reports and errors).
    pub label: String,
    /// The scenario to run.
    pub scenario: Scenario,
}

impl SweepPoint {
    /// Creates a labelled sweep cell.
    pub fn new(label: impl Into<String>, scenario: Scenario) -> Self {
        SweepPoint {
            label: label.into(),
            scenario,
        }
    }
}

/// One completed cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The cell's label.
    pub label: String,
    /// Index of the cell in the input grid.
    pub index: usize,
    /// The cell's full simulation result.
    pub result: SimulationResult,
}

/// Fans a grid of scenarios across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

impl SweepRunner {
    /// One worker per available core.
    pub fn new() -> Self {
        SweepRunner { threads: 0 }
    }

    /// An explicit worker budget: `0` = one per core, `1` = serial (the
    /// plain in-order loop), `n` = at most `n` workers.
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner { threads }
    }

    /// The configured worker budget (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell of the grid over the shared split, in grid order.
    /// The first failing cell's error is returned (remaining cells may or
    /// may not have run); results are independent of the worker count.
    pub fn run(
        &self,
        grid: &[SweepPoint],
        train: &Dataset,
        test: &Dataset,
    ) -> Result<Vec<SweepCell>, CoreError> {
        if grid.is_empty() {
            return Ok(Vec::new());
        }
        // Split the grid into exactly one contiguous, balanced chunk per
        // requested worker and fan the *chunks* out (an uneven budget
        // like 2 workers over 13 cells still gets both workers — a
        // per-item `min_per_thread` conversion cannot express that).
        // `par_map` preserves chunk order, so flattening restores grid
        // order regardless of scheduling.
        let workers = match self.threads {
            0 => grid.len(),
            threads => threads.min(grid.len()),
        };
        let base = grid.len() / workers;
        let extra = grid.len() % workers;
        let chunks: Vec<std::ops::Range<usize>> = (0..workers)
            .map(|w| {
                let start = w * base + w.min(extra);
                start..start + base + usize::from(w < extra)
            })
            .collect();
        let cells: Vec<Result<Vec<SweepCell>, CoreError>> = par::par_map(&chunks, 1, |_, range| {
            grid[range.clone()]
                .iter()
                .zip(range.clone())
                .map(|(point, index)| {
                    point.scenario.run(train, test).map(|result| SweepCell {
                        label: point.label.clone(),
                        index,
                        result,
                    })
                })
                .collect()
        });
        let mut out = Vec::with_capacity(grid.len());
        for chunk in cells {
            out.extend(chunk?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flexibility::FlexibilityMode;
    use crate::policy::AggregationAnchor;
    use bfl_data::synth_mnist::{SynthMnist, SynthMnistConfig};
    use bfl_fl::config::PartitionKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_data() -> (Dataset, Dataset) {
        let gen = SynthMnist::new(SynthMnistConfig {
            train_samples: 150,
            test_samples: 40,
            noise_std: 0.05,
            max_translation: 1.0,
        });
        let mut rng = StdRng::seed_from_u64(5);
        gen.generate(&mut rng)
    }

    fn tiny_scenario(seed: u64, mode: FlexibilityMode, anchor: AggregationAnchor) -> Scenario {
        Scenario::builder()
            .clients(6)
            .rounds(2)
            .participation_ratio(1.0)
            .partition(PartitionKind::Iid)
            .local_epochs(1)
            .batch_size(10)
            .mode(mode)
            .anchor(anchor)
            .verify_signatures(false)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn tiny_grid() -> Vec<SweepPoint> {
        vec![
            SweepPoint::new(
                "full/mean",
                tiny_scenario(1, FlexibilityMode::FullBfl, AggregationAnchor::Mean),
            ),
            SweepPoint::new(
                "full/median",
                tiny_scenario(2, FlexibilityMode::FullBfl, AggregationAnchor::Median),
            ),
            SweepPoint::new(
                "fl/mean",
                tiny_scenario(3, FlexibilityMode::FlOnly, AggregationAnchor::Mean),
            ),
            SweepPoint::new(
                "chain/mean",
                tiny_scenario(4, FlexibilityMode::ChainOnly, AggregationAnchor::Mean),
            ),
            SweepPoint::new(
                "full/trimmed",
                tiny_scenario(
                    5,
                    FlexibilityMode::FullBfl,
                    AggregationAnchor::TrimmedMean { trim_ratio: 0.2 },
                ),
            ),
        ]
    }

    #[test]
    fn sweep_results_are_invariant_to_thread_count() {
        let (train, test) = tiny_data();
        // Five cells: every explicit worker budget below splits unevenly.
        let grid = tiny_grid();
        let serial = SweepRunner::with_threads(1)
            .run(&grid, &train, &test)
            .unwrap();
        let auto = SweepRunner::new().run(&grid, &train, &test).unwrap();
        let two = SweepRunner::with_threads(2)
            .run(&grid, &train, &test)
            .unwrap();
        let three = SweepRunner::with_threads(3)
            .run(&grid, &train, &test)
            .unwrap();
        let oversized = SweepRunner::with_threads(64)
            .run(&grid, &train, &test)
            .unwrap();

        assert_eq!(serial.len(), grid.len());
        for cells in [&auto, &two, &three, &oversized] {
            assert_eq!(cells.len(), serial.len());
            for (a, b) in serial.iter().zip(cells.iter()) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.index, b.index);
                assert_eq!(a.result.history, b.result.history);
                assert_eq!(a.result.final_params, b.result.final_params);
                assert_eq!(a.result.reward_totals, b.result.reward_totals);
                assert_eq!(
                    a.result.chain.as_ref().map(|c| c.tip().hash()),
                    b.result.chain.as_ref().map(|c| c.tip().hash())
                );
            }
        }
    }

    #[test]
    fn sweep_cells_are_seed_isolated_and_ordered() {
        let (train, test) = tiny_data();
        // Two cells differing only in seed must produce different runs,
        // and each must match its standalone execution exactly.
        let grid = vec![
            SweepPoint::new(
                "seed-1",
                tiny_scenario(1, FlexibilityMode::FullBfl, AggregationAnchor::Mean),
            ),
            SweepPoint::new(
                "seed-2",
                tiny_scenario(2, FlexibilityMode::FullBfl, AggregationAnchor::Mean),
            ),
        ];
        let cells = SweepRunner::new().run(&grid, &train, &test).unwrap();
        assert_ne!(cells[0].result.final_params, cells[1].result.final_params);
        for (point, cell) in grid.iter().zip(cells.iter()) {
            let standalone = point.scenario.run(&train, &test).unwrap();
            assert_eq!(standalone.history, cell.result.history);
            assert_eq!(standalone.final_params, cell.result.final_params);
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let (train, test) = tiny_data();
        assert!(SweepRunner::new()
            .run(&[], &train, &test)
            .unwrap()
            .is_empty());
    }
}
