//! O(participants) client state for population-scale rounds.
//!
//! [`ClientPool`] is the engine's view of the client population. The
//! materialized backend is the PR 4–6 `Vec<Client>`, built eagerly by
//! `FlTrainer::build_clients`. The implicit backend holds **no** per-client
//! state up front: client `i` is a pure function of the run seed
//! ([`bfl_fl::implicit`]), materialized on first touch into a budgeted LRU
//! cache, so memory scales with the participants a round actually touches
//! rather than the configured population.
//!
//! [`sample_population`] is Procedure I over an implicit population: it
//! draws a sorted set of distinct eligible indices by rejection sampling
//! instead of shuffling a population-sized vector.

use bfl_fl::implicit::implicit_client;
use bfl_fl::Client;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Parameters an implicit population derives clients from.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ImplicitSpec {
    /// Run seed the shard streams key off.
    pub seed: u64,
    /// Configured population size.
    pub population: usize,
    /// Shard size per client (sampled with replacement).
    pub samples_per_client: usize,
    /// Training-set length the shards index into.
    pub train_len: usize,
    /// Maximum clients kept materialized.
    pub cache_budget: usize,
}

/// A lazily-materialized implicit population with an LRU cache.
#[derive(Debug)]
pub(crate) struct ImplicitPool {
    spec: ImplicitSpec,
    cache: BTreeMap<u64, Client>,
    /// LRU bookkeeping mirroring `LazyKeyVault`: monotone touch tick per
    /// cached id plus the inverse map, so eviction is O(log n).
    last_touch: BTreeMap<u64, u64>,
    by_tick: BTreeMap<u64, u64>,
    next_tick: u64,
}

impl ImplicitPool {
    fn new(spec: ImplicitSpec) -> Self {
        ImplicitPool {
            spec,
            cache: BTreeMap::new(),
            last_touch: BTreeMap::new(),
            by_tick: BTreeMap::new(),
            next_tick: 0,
        }
    }

    fn touch(&mut self, id: u64) {
        if let Some(old) = self.last_touch.insert(id, self.next_tick) {
            self.by_tick.remove(&old);
        }
        self.by_tick.insert(self.next_tick, id);
        self.next_tick += 1;
    }

    fn evict_to_budget(&mut self) {
        let budget = self.spec.cache_budget.max(1);
        while self.cache.len() > budget {
            let Some((&tick, &victim)) = self.by_tick.iter().next() else {
                break;
            };
            self.by_tick.remove(&tick);
            self.last_touch.remove(&victim);
            self.cache.remove(&victim);
        }
    }

    fn client(&mut self, index: usize) -> &Client {
        debug_assert!(index < self.spec.population);
        let id = index as u64;
        if !self.cache.contains_key(&id) {
            let client = implicit_client(
                self.spec.seed,
                id,
                self.spec.samples_per_client,
                self.spec.train_len,
            );
            self.cache.insert(id, client);
        }
        self.touch(id);
        self.evict_to_budget();
        self.cache.get(&id).expect("just materialized")
    }
}

/// The engine's client population: materialized (eager `Vec<Client>`) or
/// implicit (derived on demand under an O(active) budget).
#[derive(Debug)]
pub(crate) enum ClientPool {
    /// Every client exists up front (PR 4–6 behaviour).
    Materialized(Vec<Client>),
    /// Clients are derived per index on first touch.
    Implicit(ImplicitPool),
}

impl ClientPool {
    /// Wraps an eagerly-built population.
    pub(crate) fn materialized(clients: Vec<Client>) -> Self {
        ClientPool::Materialized(clients)
    }

    /// Creates an implicit population from its derivation parameters.
    pub(crate) fn implicit(spec: ImplicitSpec) -> Self {
        ClientPool::Implicit(ImplicitPool::new(spec))
    }

    /// Configured population size.
    pub(crate) fn population(&self) -> usize {
        match self {
            ClientPool::Materialized(clients) => clients.len(),
            ClientPool::Implicit(pool) => pool.spec.population,
        }
    }

    /// True for the implicit backend.
    pub(crate) fn is_implicit(&self) -> bool {
        matches!(self, ClientPool::Implicit(_))
    }

    /// The eager population slice; panics on the implicit backend (callers
    /// branch on [`is_implicit`](Self::is_implicit) first).
    pub(crate) fn materialized_slice(&self) -> &[Client] {
        match self {
            ClientPool::Materialized(clients) => clients,
            ClientPool::Implicit(_) => {
                unreachable!("materialized_slice on an implicit population")
            }
        }
    }

    /// Client `index`'s shard size. O(1) for the implicit backend — shard
    /// sizes are uniform by construction, so no materialization happens.
    pub(crate) fn sample_count(&self, index: usize) -> usize {
        match self {
            ClientPool::Materialized(clients) => clients[index].sample_count(),
            ClientPool::Implicit(pool) => pool.spec.samples_per_client,
        }
    }

    /// Borrows client `index`, materializing (and caching) it if implicit.
    pub(crate) fn client(&mut self, index: usize) -> &Client {
        match self {
            ClientPool::Materialized(clients) => &clients[index],
            ClientPool::Implicit(pool) => pool.client(index),
        }
    }

    /// Clones client `index` out of the pool (used to assemble a round's
    /// working set without holding a borrow across the training fan-out).
    pub(crate) fn client_cloned(&mut self, index: usize) -> Client {
        self.client(index).clone()
    }

    /// Number of currently materialized clients (population size for the
    /// eager backend, cache occupancy for the implicit one).
    #[cfg(test)]
    pub(crate) fn resident(&self) -> usize {
        match self {
            ClientPool::Materialized(clients) => clients.len(),
            ClientPool::Implicit(pool) => pool.cache.len(),
        }
    }
}

/// Draws `count` *distinct* eligible indices from `0..population` by
/// rejection sampling, returned sorted ascending — Procedure I without a
/// population-sized allocation.
///
/// Mirrors `bfl_fl::selection::select_clients`'s contract (clamp to at
/// least one, sorted output) but never instantiates the population. If the
/// eligible set is smaller than `count` the sampler returns what it found
/// after a bounded number of attempts; an empty result means effectively
/// nobody was eligible, and the caller falls back exactly like the eager
/// engine's empty-pool branch (re-sample ignoring eligibility).
pub(crate) fn sample_population(
    population: usize,
    count: usize,
    mut eligible: impl FnMut(usize) -> bool,
    rng: &mut StdRng,
) -> Vec<usize> {
    assert!(population > 0, "population must be non-empty");
    let count = count.clamp(1, population);
    let mut picked: BTreeSet<usize> = BTreeSet::new();
    // Bounded rejection sampling: with a healthy eligible fraction this
    // terminates in ~count draws; the cap keeps degenerate rounds (nearly
    // everyone on cooldown or offline) from spinning.
    let max_attempts = (count.saturating_mul(64)).max(1024);
    let mut attempts = 0usize;
    while picked.len() < count && attempts < max_attempts {
        attempts += 1;
        let candidate = rng.gen_range(0..population);
        if picked.contains(&candidate) || !eligible(candidate) {
            continue;
        }
        picked.insert(candidate);
    }
    picked.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec(population: usize, budget: usize) -> ImplicitSpec {
        ImplicitSpec {
            seed: 0xBF1,
            population,
            samples_per_client: 4,
            train_len: 50,
            cache_budget: budget,
        }
    }

    #[test]
    fn implicit_pool_caches_under_budget_and_rederives_identically() {
        let mut pool = ClientPool::implicit(spec(1_000_000, 3));
        let first = pool.client_cloned(999_999);
        assert_eq!(first.id, 999_999);
        // Touch enough other clients to evict it.
        for i in 0..5 {
            pool.client(i);
        }
        assert_eq!(pool.resident(), 3, "budget bounds residency");
        let again = pool.client_cloned(999_999);
        assert_eq!(first, again, "rederivation after eviction is identity");
    }

    #[test]
    fn implicit_matches_eager_build_clients() {
        use bfl_data::{SynthMnist, SynthMnistConfig};
        use bfl_fl::config::PartitionKind;
        use bfl_fl::trainer::{FlAlgorithm, FlTrainer};

        let generator = SynthMnist::new(SynthMnistConfig {
            train_samples: 60,
            test_samples: 10,
            ..SynthMnistConfig::default()
        });
        let (train, _test) = generator.generate(&mut StdRng::seed_from_u64(123));
        let config = bfl_fl::FlConfig {
            clients: 12,
            partition: PartitionKind::ImplicitIid {
                samples_per_client: 4,
            },
            seed: 0xBF1,
            ..bfl_fl::FlConfig::default()
        };
        let trainer = FlTrainer::new(config, FlAlgorithm::FedAvg);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let before = rng.clone().gen_range(0..u64::MAX);
        let eager = trainer.build_clients(&train, &mut rng);
        assert_eq!(
            rng.gen_range(0..u64::MAX),
            before,
            "implicit build consumes zero learning-stream draws"
        );

        let mut lazy = ClientPool::implicit(ImplicitSpec {
            seed: config.seed,
            population: 12,
            samples_per_client: 4,
            train_len: train.len(),
            cache_budget: 12,
        });
        for (i, expected) in eager.iter().enumerate() {
            assert_eq!(lazy.client(i), expected, "client {i}");
        }
    }

    #[test]
    fn rejection_sampler_draws_sorted_distinct_eligible_indices() {
        let mut rng = StdRng::seed_from_u64(9);
        let picked = sample_population(1_000_000, 100, |i| i % 2 == 0, &mut rng);
        assert_eq!(picked.len(), 100);
        assert!(picked.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        assert!(picked.iter().all(|&i| i % 2 == 0), "eligibility respected");
        // Deterministic in the rng.
        let mut rng2 = StdRng::seed_from_u64(9);
        assert_eq!(
            picked,
            sample_population(1_000_000, 100, |i| i % 2 == 0, &mut rng2)
        );
    }

    #[test]
    fn rejection_sampler_returns_partial_sets_when_eligibility_is_scarce() {
        let mut rng = StdRng::seed_from_u64(1);
        let picked = sample_population(10_000, 5, |i| i == 7, &mut rng);
        assert!(picked.len() <= 1, "at most the single eligible index");
        let none = sample_population(64, 4, |_| false, &mut rng);
        assert!(none.is_empty(), "nobody eligible yields an empty draw");
    }
}
