//! Equivalence suites pinning the optimized crypto engine to the
//! retained reference implementations, bit-for-bit.
//!
//! Mirrors `crates/ml/tests/batched_equivalence.rs` from the batched
//! GEMM PR, with one difference: this is integer arithmetic, so every
//! comparison is exact equality — no tolerances.
//!
//! Three pairings are pinned:
//! * Knuth Algorithm D division ≡ the seed binary long division,
//! * Montgomery fixed-window `modpow` ≡ square-and-multiply `modpow`,
//! * CRT signing ≡ plain `(n, d)` signing.

use bfl_crypto::bigint::BigUint;
use bfl_crypto::engine;
use bfl_crypto::montgomery::MontgomeryCtx;
use bfl_crypto::rsa::RsaKeyPair;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// A non-zero value built from random bytes (falls back to `fallback`).
fn nonzero(bytes: &[u8], fallback: u32) -> BigUint {
    let v = BigUint::from_bytes_be(bytes);
    if v.is_zero() {
        BigUint::from_u32(fallback.max(1))
    } else {
        v
    }
}

/// An odd value >= 3 built from random bytes.
fn odd_modulus(bytes: &[u8]) -> BigUint {
    let mut v = BigUint::from_bytes_be(bytes);
    v.set_bit(0);
    if v.is_one() {
        v.set_bit(1);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Knuth division ≡ binary long division over operands up to 2048 bits.
    #[test]
    fn knuth_div_rem_matches_reference(
        a_bytes in proptest::collection::vec(any::<u8>(), 0..256),
        b_bytes in proptest::collection::vec(any::<u8>(), 0..256),
        fallback in 1u32..,
    ) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = nonzero(&b_bytes, fallback);
        let (q_fast, r_fast) = a.div_rem_knuth(&b);
        let (q_ref, r_ref) = a.div_rem_reference(&b);
        prop_assert_eq!(&q_fast, &q_ref);
        prop_assert_eq!(&r_fast, &r_ref);
        // Independent reconstruction check.
        prop_assert_eq!(b.mul(&q_fast).add(&r_fast), a);
        prop_assert!(r_fast < b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Montgomery modpow ≡ reference modpow, moduli up to 1024 bits
    /// (exponents capped at 64 bits: the bit-by-bit reference bounds
    /// what a test budget affords at this width).
    #[test]
    fn montgomery_modpow_matches_reference(
        base_bytes in proptest::collection::vec(any::<u8>(), 0..128),
        exp_bytes in proptest::collection::vec(any::<u8>(), 0..8),
        mod_bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let base = BigUint::from_bytes_be(&base_bytes);
        let exponent = BigUint::from_bytes_be(&exp_bytes);
        let modulus = odd_modulus(&mod_bytes);
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus >= 3");
        let fast = ctx.modpow(&base, &exponent);
        let _guard = engine::mode_lock();
        let reference =
            engine::with_reference_mode(|| base.modpow(&exponent, &modulus));
        prop_assert_eq!(fast, reference);
    }

    /// Full-size exponents on smaller moduli.
    #[test]
    fn montgomery_modpow_full_exponent_matches_reference(
        base_bytes in proptest::collection::vec(any::<u8>(), 0..48),
        exp_bytes in proptest::collection::vec(any::<u8>(), 0..48),
        mod_bytes in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let base = BigUint::from_bytes_be(&base_bytes);
        let exponent = BigUint::from_bytes_be(&exp_bytes);
        let modulus = odd_modulus(&mod_bytes);
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus >= 3");
        let fast = ctx.modpow(&base, &exponent);
        let _guard = engine::mode_lock();
        let reference =
            engine::with_reference_mode(|| base.modpow(&exponent, &modulus));
        prop_assert_eq!(fast, reference);
    }
}

/// A deterministic 2048-bit modulus exercise: the widest operand class
/// the proptest budget cannot afford against the bit-by-bit reference.
#[test]
fn montgomery_modpow_matches_reference_at_2048_bits() {
    let mut seed_bytes = Vec::with_capacity(256);
    for i in 0..256u32 {
        seed_bytes.push((i.wrapping_mul(2_654_435_761) >> 13) as u8);
    }
    let mut modulus = BigUint::from_bytes_be(&seed_bytes);
    modulus.set_bit(0);
    modulus.set_bit(2047);
    let base = BigUint::from_bytes_be(&seed_bytes[3..201]);
    let exponent = BigUint::from_u64(0xF00D_FACE_CAFE_BEEF);

    let ctx = MontgomeryCtx::new(&modulus).expect("odd 2048-bit modulus");
    let fast = ctx.modpow(&base, &exponent);
    let _guard = engine::mode_lock();
    let reference = engine::with_reference_mode(|| base.modpow(&exponent, &modulus));
    assert_eq!(fast, reference);
}

/// Keys generated once and shared across the signing equivalence cases
/// (keygen dominates otherwise).
fn shared_keys() -> &'static Vec<RsaKeyPair> {
    static KEYS: OnceLock<Vec<RsaKeyPair>> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC127_5160);
        [256usize, 320, 384]
            .iter()
            .map(|&bits| RsaKeyPair::generate(&mut rng, bits).expect("keygen"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CRT signing ≡ plain (n, d) signing, across every shared key size.
    #[test]
    fn crt_sign_matches_plain_sign(
        msg_bytes in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let message = BigUint::from_bytes_be(&msg_bytes);
        for pair in shared_keys() {
            prop_assert!(pair.private.crt.is_some());
            let _guard = engine::mode_lock();
            let fast = pair.private.apply(&message);
            let reference = engine::with_reference_mode(|| pair.private.apply(&message));
            prop_assert_eq!(&fast, &reference);
            // The signature round-trips through the public operation.
            let m_reduced = message.rem(&pair.private.modulus);
            prop_assert_eq!(pair.public.apply(&fast), m_reduced);
        }
    }

    /// Verification agrees across engines: a signature produced by the
    /// fast path verifies under the reference public operation.
    #[test]
    fn cross_engine_sign_verify_round_trip(
        msg_bytes in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let message = BigUint::from_bytes_be(&msg_bytes);
        let pair = &shared_keys()[0];
        let _guard = engine::mode_lock();
        let sig_fast = pair.private.apply(&message);
        let recovered_ref = engine::with_reference_mode(|| pair.public.apply(&sig_fast));
        prop_assert_eq!(recovered_ref, message.rem(&pair.private.modulus));
    }
}
