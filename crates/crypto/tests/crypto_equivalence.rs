//! Equivalence suites pinning the optimized crypto engine to the
//! retained reference implementations, bit-for-bit.
//!
//! Mirrors `crates/ml/tests/batched_equivalence.rs` from the batched
//! GEMM PR, with one difference: this is integer arithmetic, so every
//! comparison is exact equality — no tolerances.
//!
//! Four pairings are pinned:
//! * u64-limb carry/borrow arithmetic (`add`/`sub`/`mul`) ≡ an
//!   independent byte-level (base-256) schoolbook implementation kept in
//!   this file, up to 4096-bit operands,
//! * Knuth Algorithm D division ≡ the seed binary long division, up to
//!   4096-bit operands,
//! * Montgomery fixed-window `modpow` ≡ square-and-multiply `modpow`,
//! * CRT signing ≡ plain `(n, d)` signing.
//!
//! A further suite checks that the per-key Montgomery-context caches are
//! pure acceleration state: serialized keys are byte-identical whether
//! the caches are warm or cold, and a round-trip through the wire
//! produces a key that signs/verifies identically.

use bfl_crypto::bigint::BigUint;
use bfl_crypto::engine;
use bfl_crypto::montgomery::MontgomeryCtx;
use bfl_crypto::rsa::{RsaKeyPair, RsaPrivateKey, RsaPublicKey};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// A non-zero value built from random bytes (falls back to `fallback`).
fn nonzero(bytes: &[u8], fallback: u32) -> BigUint {
    let v = BigUint::from_bytes_be(bytes);
    if v.is_zero() {
        BigUint::from_u32(fallback.max(1))
    } else {
        v
    }
}

// ---------------------------------------------------------------------------
// Byte-level (base-256) reference arithmetic, independent of the limb
// representation under test. Operands are little-endian byte vectors.
// ---------------------------------------------------------------------------

fn le_bytes(v: &BigUint) -> Vec<u8> {
    let mut bytes = v.to_bytes_be();
    bytes.reverse();
    bytes
}

fn from_le_bytes(mut bytes: Vec<u8>) -> BigUint {
    bytes.reverse();
    BigUint::from_bytes_be(&bytes)
}

fn byte_add(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(a.len().max(b.len()) + 1);
    let mut carry = 0u16;
    for i in 0..a.len().max(b.len()) {
        let sum = *a.get(i).unwrap_or(&0) as u16 + *b.get(i).unwrap_or(&0) as u16 + carry;
        out.push(sum as u8);
        carry = sum >> 8;
    }
    if carry > 0 {
        out.push(carry as u8);
    }
    out
}

/// `a - b`; requires `a >= b`.
fn byte_sub(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i16;
    for (i, &x) in a.iter().enumerate() {
        let mut diff = x as i16 - *b.get(i).unwrap_or(&0) as i16 - borrow;
        if diff < 0 {
            diff += 256;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.push(diff as u8);
    }
    assert_eq!(borrow, 0, "byte_sub underflow");
    out
}

fn byte_mul(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u8; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        let mut carry = 0u16;
        for (j, &y) in b.iter().enumerate() {
            let cur = out[i + j] as u16 + x as u16 * y as u16 + carry;
            out[i + j] = cur as u8;
            carry = cur >> 8;
        }
        let mut idx = i + b.len();
        while carry > 0 {
            let cur = out[idx] as u16 + carry;
            out[idx] = cur as u8;
            carry = cur >> 8;
            idx += 1;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// u64-limb addition and subtraction ≡ byte-level arithmetic over
    /// operands up to 4096 bits: every carry/borrow across the 64-bit
    /// limb boundaries must agree with the base-256 reference.
    #[test]
    fn add_sub_match_byte_reference(
        a_bytes in proptest::collection::vec(any::<u8>(), 0..512),
        b_bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = BigUint::from_bytes_be(&b_bytes);
        let sum = a.add(&b);
        prop_assert_eq!(&sum, &from_le_bytes(byte_add(&le_bytes(&a), &le_bytes(&b))));
        // sum - b == a and sum - a == b, both against the byte reference.
        prop_assert_eq!(
            sum.sub(&b),
            from_le_bytes(byte_sub(&le_bytes(&sum), &le_bytes(&b)))
        );
        prop_assert_eq!(&sum.sub(&b), &a);
        prop_assert_eq!(&sum.sub(&a), &b);
    }

    /// u64-limb schoolbook multiplication ≡ byte-level schoolbook over
    /// operands up to 4096 bits (products up to 8192 bits).
    #[test]
    fn mul_matches_byte_reference(
        a_bytes in proptest::collection::vec(any::<u8>(), 0..512),
        b_bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = BigUint::from_bytes_be(&b_bytes);
        let product = a.mul(&b);
        prop_assert_eq!(
            &product,
            &from_le_bytes(byte_mul(&le_bytes(&a), &le_bytes(&b)))
        );
        prop_assert_eq!(product, b.mul(&a));
    }
}

/// An odd value >= 3 built from random bytes.
fn odd_modulus(bytes: &[u8]) -> BigUint {
    let mut v = BigUint::from_bytes_be(bytes);
    v.set_bit(0);
    if v.is_one() {
        v.set_bit(1);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Knuth division (64-bit quotient digits) ≡ binary long division
    /// over operands up to 4096 bits.
    #[test]
    fn knuth_div_rem_matches_reference(
        a_bytes in proptest::collection::vec(any::<u8>(), 0..512),
        b_bytes in proptest::collection::vec(any::<u8>(), 0..512),
        fallback in 1u32..,
    ) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = nonzero(&b_bytes, fallback);
        let (q_fast, r_fast) = a.div_rem_knuth(&b);
        let (q_ref, r_ref) = a.div_rem_reference(&b);
        prop_assert_eq!(&q_fast, &q_ref);
        prop_assert_eq!(&r_fast, &r_ref);
        // Independent reconstruction check.
        prop_assert_eq!(b.mul(&q_fast).add(&r_fast), a);
        prop_assert!(r_fast < b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Montgomery modpow ≡ reference modpow, moduli up to 1024 bits
    /// (exponents capped at 64 bits: the bit-by-bit reference bounds
    /// what a test budget affords at this width).
    #[test]
    fn montgomery_modpow_matches_reference(
        base_bytes in proptest::collection::vec(any::<u8>(), 0..128),
        exp_bytes in proptest::collection::vec(any::<u8>(), 0..8),
        mod_bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let base = BigUint::from_bytes_be(&base_bytes);
        let exponent = BigUint::from_bytes_be(&exp_bytes);
        let modulus = odd_modulus(&mod_bytes);
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus >= 3");
        let fast = ctx.modpow(&base, &exponent);
        let _guard = engine::mode_lock();
        let reference =
            engine::with_reference_mode(|| base.modpow(&exponent, &modulus));
        prop_assert_eq!(fast, reference);
    }

    /// Full-size exponents on smaller moduli.
    #[test]
    fn montgomery_modpow_full_exponent_matches_reference(
        base_bytes in proptest::collection::vec(any::<u8>(), 0..48),
        exp_bytes in proptest::collection::vec(any::<u8>(), 0..48),
        mod_bytes in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let base = BigUint::from_bytes_be(&base_bytes);
        let exponent = BigUint::from_bytes_be(&exp_bytes);
        let modulus = odd_modulus(&mod_bytes);
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus >= 3");
        let fast = ctx.modpow(&base, &exponent);
        let _guard = engine::mode_lock();
        let reference =
            engine::with_reference_mode(|| base.modpow(&exponent, &modulus));
        prop_assert_eq!(fast, reference);
    }
}

/// A deterministic 2048-bit modulus exercise: the widest operand class
/// the proptest budget cannot afford against the bit-by-bit reference.
#[test]
fn montgomery_modpow_matches_reference_at_2048_bits() {
    let mut seed_bytes = Vec::with_capacity(256);
    for i in 0..256u32 {
        seed_bytes.push((i.wrapping_mul(2_654_435_761) >> 13) as u8);
    }
    let mut modulus = BigUint::from_bytes_be(&seed_bytes);
    modulus.set_bit(0);
    modulus.set_bit(2047);
    let base = BigUint::from_bytes_be(&seed_bytes[3..201]);
    let exponent = BigUint::from_u64(0xF00D_FACE_CAFE_BEEF);

    let ctx = MontgomeryCtx::new(&modulus).expect("odd 2048-bit modulus");
    let fast = ctx.modpow(&base, &exponent);
    let _guard = engine::mode_lock();
    let reference = engine::with_reference_mode(|| base.modpow(&exponent, &modulus));
    assert_eq!(fast, reference);
}

/// A deterministic 4096-bit modulus exercise for the u64-limb engine:
/// the widest operand class the protocol could plausibly configure. The
/// exponent is kept short because the reference path reduces every
/// intermediate product with bit-by-bit division at 8192-bit dividends.
#[test]
fn montgomery_modpow_matches_reference_at_4096_bits() {
    let mut seed_bytes = Vec::with_capacity(512);
    for i in 0..512u32 {
        seed_bytes.push((i.wrapping_mul(2_246_822_519).wrapping_add(0x9E37) >> 11) as u8);
    }
    let mut modulus = BigUint::from_bytes_be(&seed_bytes);
    modulus.set_bit(0);
    modulus.set_bit(4095);
    let base = BigUint::from_bytes_be(&seed_bytes[5..397]);
    let exponent = BigUint::from_u64(0xB007);

    let ctx = MontgomeryCtx::new(&modulus).expect("odd 4096-bit modulus");
    let fast = ctx.modpow(&base, &exponent);
    let _guard = engine::mode_lock();
    let reference = engine::with_reference_mode(|| base.modpow(&exponent, &modulus));
    assert_eq!(fast, reference);
}

/// Keys generated once and shared across the signing equivalence cases
/// (keygen dominates otherwise).
fn shared_keys() -> &'static Vec<RsaKeyPair> {
    static KEYS: OnceLock<Vec<RsaKeyPair>> = OnceLock::new();
    KEYS.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xC127_5160);
        [256usize, 320, 384]
            .iter()
            .map(|&bits| RsaKeyPair::generate(&mut rng, bits).expect("keygen"))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CRT signing ≡ plain (n, d) signing, across every shared key size.
    #[test]
    fn crt_sign_matches_plain_sign(
        msg_bytes in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let message = BigUint::from_bytes_be(&msg_bytes);
        for pair in shared_keys() {
            prop_assert!(pair.private.crt().is_some());
            let _guard = engine::mode_lock();
            let fast = pair.private.apply(&message);
            let reference = engine::with_reference_mode(|| pair.private.apply(&message));
            prop_assert_eq!(&fast, &reference);
            // The signature round-trips through the public operation.
            let m_reduced = message.rem(pair.private.modulus());
            prop_assert_eq!(pair.public.apply(&fast), m_reduced);
        }
    }

    /// Verification agrees across engines: a signature produced by the
    /// fast path verifies under the reference public operation.
    #[test]
    fn cross_engine_sign_verify_round_trip(
        msg_bytes in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let message = BigUint::from_bytes_be(&msg_bytes);
        let pair = &shared_keys()[0];
        let _guard = engine::mode_lock();
        let sig_fast = pair.private.apply(&message);
        let recovered_ref = engine::with_reference_mode(|| pair.public.apply(&sig_fast));
        prop_assert_eq!(recovered_ref, message.rem(pair.private.modulus()));
    }
}

// ---------------------------------------------------------------------------
// Per-key Montgomery-context caches must never leak into the wire format.
// ---------------------------------------------------------------------------

#[test]
fn warm_context_caches_do_not_change_serialized_keys() {
    let pair = &shared_keys()[0];
    // Cold copies built from the same material, never used for crypto.
    let cold_public = RsaPublicKey::new(
        pair.public.modulus().clone(),
        pair.public.exponent().clone(),
    );
    let cold_private = RsaPrivateKey::with_crt(
        pair.private.modulus().clone(),
        pair.private.exponent().clone(),
        pair.private.crt().cloned(),
    );
    assert!(!cold_public.context_is_warm());
    assert!(!cold_private.context_is_warm());

    // Warm the shared pair's caches (signing touches the CRT contexts,
    // verification the public one).
    let message = BigUint::from_u64(0xCAC4E);
    let sig = pair.private.apply(&message);
    let _ = pair.public.apply(&sig);
    assert!(pair.public.context_is_warm());
    assert!(pair.private.context_is_warm());

    // Byte-identical wire format, warm or cold.
    assert_eq!(
        serde_json::to_string(&pair.public).unwrap(),
        serde_json::to_string(&cold_public).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&pair.private).unwrap(),
        serde_json::to_string(&cold_private).unwrap()
    );
    // And no cache-shaped fields appear at all.
    let private_json = serde_json::to_string(&pair.private).unwrap();
    assert!(!private_json.contains("mont"));
    assert!(!private_json.contains("cache"));
}

#[test]
fn keys_round_trip_through_serde_and_keep_signing_identically() {
    for pair in shared_keys() {
        let message = BigUint::from_u64(0x5E_7DE5);
        let sig = pair.private.apply(&message); // warm the caches
        let json = serde_json::to_string(pair).unwrap();
        let back: RsaKeyPair = serde_json::from_str(&json).unwrap();
        assert_eq!(back.public, pair.public);
        assert_eq!(back.private, pair.private);
        assert!(!back.private.context_is_warm(), "caches must arrive cold");
        assert!(!back.public.context_is_warm(), "caches must arrive cold");
        // The rebuilt key signs and verifies identically.
        assert_eq!(back.private.apply(&message), sig);
        assert_eq!(back.public.apply(&sig), pair.public.apply(&sig));
    }
}
