//! RSA key generation and raw sign/verify.
//!
//! FAIR-BFL assigns each client a unique private key; miners hold the
//! corresponding public keys and verify every gradient upload (paper
//! Figure 2). This module implements the textbook RSA primitive on top of
//! [`crate::bigint`] and [`crate::prime`]: key generation with two random
//! primes, `e = 65537`, and `d = e^{-1} mod (p-1)(q-1)`.
//!
//! Generated private keys carry the CRT factors `(p, q, d_p, d_q,
//! q_inv)`, so [`RsaPrivateKey::apply`] runs two half-size Montgomery
//! exponentiations and recombines by Garner's formula — roughly 4x
//! faster than a full-size exponentiation, on top of the Montgomery
//! speedup itself. Keys built from `(n, d)` alone (deserialized legacy
//! material, external test vectors) still work through the plain path,
//! and [`crate::engine::set_reference_mode`] forces the retained
//! seed-path square-and-multiply for equivalence testing and
//! benchmarking.
//!
//! Both key types carry a lazily-built, shareable [`MontgomeryCtx`]
//! cache ([`MontCache`]): constructing a context costs a full division
//! (`R^2 mod n`), so the first sign/verify through a key builds it once
//! and every later operation — including every verification through a
//! [`crate::keystore::KeyStore`]-held key — reuses it. Private keys
//! additionally cache the CRT `p`/`q` context pair. The caches are pure
//! acceleration state: they are excluded from equality, cloning keeps
//! them warm, and the hand-written serde impls never write them to the
//! wire.
//!
//! The protocol-facing hash-then-sign wrapper lives in [`crate::signature`].

use crate::bigint::BigUint;
use crate::engine;
use crate::error::CryptoError;
use crate::montgomery::MontgomeryCtx;
use crate::prime::{generate_prime, miller_rabin_rounds};
use rand::Rng;
use serde::{Deserialize, Serialize, Value};
use std::sync::OnceLock;

/// The conventional RSA public exponent.
pub const PUBLIC_EXPONENT: u32 = 65537;

/// Minimum supported modulus size. Anything smaller cannot hold a SHA-256
/// digest comfortably after reduction and offers no meaningful structure.
pub const MIN_MODULUS_BITS: usize = 128;

/// Default modulus size used by the protocol when none is specified.
pub const DEFAULT_MODULUS_BITS: usize = 1024;

/// A lazily-built per-modulus [`MontgomeryCtx`] cache.
///
/// The first caller pays the context construction (one division for
/// `R^2 mod n`); every later call through the same key — or a clone of
/// it — reuses the finished context. `None` is cached for even moduli,
/// where Montgomery reduction does not apply. The cache is invisible to
/// equality and serialization: it is rebuilt on demand after
/// deserialization and never enters the wire format.
#[derive(Debug, Default, Clone)]
pub struct MontCache {
    cell: OnceLock<Option<MontgomeryCtx>>,
}

impl MontCache {
    /// An empty (not yet built) cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached context for `modulus`, building it on first use.
    fn get_or_build(&self, modulus: &BigUint) -> Option<&MontgomeryCtx> {
        self.cell
            .get_or_init(|| MontgomeryCtx::new(modulus))
            .as_ref()
    }

    /// Whether the context has been built already (test/diagnostic hook).
    pub fn is_warm(&self) -> bool {
        self.cell.get().is_some()
    }
}

/// An RSA public key `(n, e)`.
///
/// Carries a lazily-built Montgomery context so repeated verifications
/// against the same key (the miner-side hot path) do not rebuild the
/// per-modulus precomputation. Equality and the serialized form cover
/// only `(n, e)`.
#[derive(Debug, Clone, Default)]
pub struct RsaPublicKey {
    /// Modulus `n = p * q`.
    modulus: BigUint,
    /// Public exponent `e`.
    exponent: BigUint,
    /// Cached Montgomery context for `modulus` (see [`MontCache`]).
    mont: MontCache,
}

/// Chinese-remainder factors of an RSA private key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrtFactors {
    /// First prime factor of the modulus.
    pub p: BigUint,
    /// Second prime factor of the modulus.
    pub q: BigUint,
    /// `d mod (p - 1)`.
    pub d_p: BigUint,
    /// `d mod (q - 1)`.
    pub d_q: BigUint,
    /// `q^{-1} mod p` (Garner recombination coefficient).
    pub q_inv: BigUint,
}

/// An RSA private key: `(n, d)` plus optional CRT factors.
///
/// Carries lazily-built Montgomery contexts — one for the modulus, and
/// (when CRT factors are present) one per prime factor — so repeated
/// signing through the same key reuses the per-modulus precomputation.
/// Equality and the serialized form cover only `(n, d, crt)`.
#[derive(Debug, Clone, Default)]
pub struct RsaPrivateKey {
    /// Modulus `n = p * q`.
    modulus: BigUint,
    /// Private exponent `d = e^{-1} mod phi(n)`.
    exponent: BigUint,
    /// CRT factors, present on generated keys; `None` on keys built from
    /// `(n, d)` alone, which fall back to a full-size exponentiation.
    crt: Option<CrtFactors>,
    /// Cached Montgomery context for `modulus` (see [`MontCache`]).
    mont: MontCache,
    /// Cached Montgomery context for the CRT prime `p`.
    crt_p_mont: MontCache,
    /// Cached Montgomery context for the CRT prime `q`.
    crt_q_mont: MontCache,
}

/// A matched RSA key pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RsaKeyPair {
    /// The public half, distributed to miners.
    pub public: RsaPublicKey,
    /// The private half, kept by the client.
    pub private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// Builds a public key from `(n, e)` with a cold context cache.
    pub fn new(modulus: BigUint, exponent: BigUint) -> Self {
        RsaPublicKey {
            modulus,
            exponent,
            mont: MontCache::new(),
        }
    }

    /// Applies the public operation `m^e mod n` (used for verification)
    /// through the cached Montgomery context.
    pub fn apply(&self, message: &BigUint) -> BigUint {
        if !engine::reference_mode() {
            if let Some(ctx) = self.mont.get_or_build(&self.modulus) {
                return ctx.modpow(message, &self.exponent);
            }
        }
        message.modpow(&self.exponent, &self.modulus)
    }

    /// The key's cached Montgomery context, building it on first use.
    /// `None` when the modulus does not admit one (even or trivial).
    ///
    /// This is the entry point for batched verification
    /// ([`crate::signature::BatchVerifier`]): driving the context
    /// directly through a shared prepared workspace skips the per-call
    /// workspace allocations that [`RsaPublicKey::apply`] pays.
    pub fn montgomery_ctx(&self) -> Option<&MontgomeryCtx> {
        self.mont.get_or_build(&self.modulus)
    }

    /// The modulus `n`. Read-only: the cached context is derived from
    /// it, so changing the modulus means building a new key via
    /// [`RsaPublicKey::new`].
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The public exponent `e`.
    pub fn exponent(&self) -> &BigUint {
        &self.exponent
    }

    /// Size of the modulus in bits.
    pub fn modulus_bits(&self) -> usize {
        self.modulus.bit_len()
    }

    /// Whether the Montgomery context has been built (test hook).
    pub fn context_is_warm(&self) -> bool {
        self.mont.is_warm()
    }
}

// Equality ignores the context cache: two keys are the same key if they
// hold the same `(n, e)`, warm or cold.
impl PartialEq for RsaPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.modulus == other.modulus && self.exponent == other.exponent
    }
}

impl Eq for RsaPublicKey {}

// Hand-written serde keeps the context cache out of the wire format.
impl Serialize for RsaPublicKey {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("modulus".to_string(), self.modulus.to_value()),
            ("exponent".to_string(), self.exponent.to_value()),
        ])
    }
}

impl Deserialize for RsaPublicKey {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        Ok(RsaPublicKey::new(
            BigUint::from_value(value.field("modulus")?)?,
            BigUint::from_value(value.field("exponent")?)?,
        ))
    }
}

impl RsaPrivateKey {
    /// Builds a private key from `(n, d)` alone — the compatibility path
    /// for key material without CRT factors. Signing works but runs the
    /// full-size exponentiation.
    pub fn from_components(modulus: BigUint, exponent: BigUint) -> Self {
        Self::with_crt(modulus, exponent, None)
    }

    /// Builds a private key from `(n, d)` plus optional CRT factors,
    /// with cold context caches.
    pub fn with_crt(modulus: BigUint, exponent: BigUint, crt: Option<CrtFactors>) -> Self {
        RsaPrivateKey {
            modulus,
            exponent,
            crt,
            mont: MontCache::new(),
            crt_p_mont: MontCache::new(),
            crt_q_mont: MontCache::new(),
        }
    }

    /// Applies the private operation `m^d mod n` (used for signing).
    ///
    /// With CRT factors present (and the reference mode off) this runs
    /// two half-size Montgomery exponentiations mod `p` and `q` and
    /// recombines with Garner's formula; otherwise a single full-size
    /// exponentiation. All Montgomery contexts come from the per-key
    /// caches.
    pub fn apply(&self, message: &BigUint) -> BigUint {
        if engine::reference_mode() {
            return message.modpow(&self.exponent, &self.modulus);
        }
        if let Some(crt) = &self.crt {
            return self.apply_crt(message, crt);
        }
        match self.mont.get_or_build(&self.modulus) {
            Some(ctx) => ctx.modpow(message, &self.exponent),
            None => message.modpow(&self.exponent, &self.modulus),
        }
    }

    /// CRT signing: `s_p = m^{d_p} mod p`, `s_q = m^{d_q} mod q`,
    /// `s = s_q + q * (q_inv (s_p - s_q) mod p)`.
    fn apply_crt(&self, message: &BigUint, crt: &CrtFactors) -> BigUint {
        let m = if *message < self.modulus {
            message.clone()
        } else {
            message.rem(&self.modulus)
        };
        let (s_p, s_q) = match (
            self.crt_p_mont.get_or_build(&crt.p),
            self.crt_q_mont.get_or_build(&crt.q),
        ) {
            (Some(ctx_p), Some(ctx_q)) => (ctx_p.modpow(&m, &crt.d_p), ctx_q.modpow(&m, &crt.d_q)),
            // Unreachable for generated keys (primes are odd), but keeps
            // hand-built factors correct.
            _ => (
                m.rem(&crt.p).modpow(&crt.d_p, &crt.p),
                m.rem(&crt.q).modpow(&crt.d_q, &crt.q),
            ),
        };
        // Garner: h = q_inv * (s_p - s_q) mod p, lifting s_q by h * q.
        let s_q_mod_p = s_q.rem(&crt.p);
        let diff = if s_p >= s_q_mod_p {
            s_p.sub(&s_q_mod_p)
        } else {
            s_p.add(&crt.p).sub(&s_q_mod_p)
        };
        let h = crt.q_inv.modmul(&diff, &crt.p);
        let mut lift = BigUint::zero();
        h.mul_to(&crt.q, &mut lift);
        lift.add_assign(&s_q);
        lift
    }

    /// The modulus `n`. Read-only: the cached contexts are derived from
    /// the key material, so changed material means a new key via
    /// [`RsaPrivateKey::with_crt`].
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The private exponent `d`.
    pub fn exponent(&self) -> &BigUint {
        &self.exponent
    }

    /// The CRT factors, when the key carries them.
    pub fn crt(&self) -> Option<&CrtFactors> {
        self.crt.as_ref()
    }

    /// Size of the modulus in bits.
    pub fn modulus_bits(&self) -> usize {
        self.modulus.bit_len()
    }

    /// Whether any of the Montgomery contexts have been built (test hook).
    pub fn context_is_warm(&self) -> bool {
        self.mont.is_warm() || self.crt_p_mont.is_warm() || self.crt_q_mont.is_warm()
    }
}

// Equality ignores the context caches (see `RsaPublicKey`).
impl PartialEq for RsaPrivateKey {
    fn eq(&self, other: &Self) -> bool {
        self.modulus == other.modulus && self.exponent == other.exponent && self.crt == other.crt
    }
}

impl Eq for RsaPrivateKey {}

// Hand-written serde keeps deserialization compatible with key material
// serialized before CRT factors existed: a missing or null `crt` field
// reads back as `None` instead of erroring. The context caches never
// enter the wire format.
impl Serialize for RsaPrivateKey {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("modulus".to_string(), self.modulus.to_value()),
            ("exponent".to_string(), self.exponent.to_value()),
            (
                "crt".to_string(),
                match &self.crt {
                    Some(crt) => crt.to_value(),
                    None => Value::Null,
                },
            ),
        ])
    }
}

impl Deserialize for RsaPrivateKey {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let modulus = BigUint::from_value(value.field("modulus")?)?;
        let exponent = BigUint::from_value(value.field("exponent")?)?;
        let crt = match value.field("crt") {
            Err(_) => None,
            Ok(Value::Null) => None,
            Ok(v) => Some(CrtFactors::from_value(v)?),
        };
        Ok(RsaPrivateKey::with_crt(modulus, exponent, crt))
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of exactly
    /// `modulus_bits` bits.
    ///
    /// Prime candidates have their top two bits forced (see
    /// [`crate::prime::generate_prime`]), so the product always reaches
    /// the requested size. `modulus_bits` must be at least
    /// [`MIN_MODULUS_BITS`]. Key sizes used in tests are intentionally
    /// small (128-512 bits) so the simulation remains fast; they are not
    /// secure key sizes.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        modulus_bits: usize,
    ) -> Result<Self, CryptoError> {
        if modulus_bits < MIN_MODULUS_BITS {
            return Err(CryptoError::KeyTooSmall {
                requested_bits: modulus_bits,
                minimum_bits: MIN_MODULUS_BITS,
            });
        }
        let e = BigUint::from_u32(PUBLIC_EXPONENT);
        let half = modulus_bits / 2;
        let one = BigUint::one();

        // Retry until phi(n) is coprime with e and p != q. Candidates are
        // uniformly random, so the round count follows the average-case
        // analysis (see `prime::miller_rabin_rounds`), not the worst case.
        let rounds = miller_rabin_rounds(half);
        for _ in 0..64 {
            let p = generate_prime(rng, half, rounds)?;
            let q = generate_prime(rng, modulus_bits - half, rounds)?;
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let p_minus_one = p.sub(&one);
            let q_minus_one = q.sub(&one);
            let phi = p_minus_one.mul(&q_minus_one);
            // `modinv` returns `None` exactly when gcd(e, phi) != 1, so
            // no separate gcd pass is needed.
            let d = match e.modinv(&phi) {
                Some(d) => d,
                None => continue,
            };
            let q_inv = match q.modinv(&p) {
                Some(inv) => inv,
                None => continue, // p == q is excluded above, but stay safe
            };
            let crt = CrtFactors {
                d_p: d.rem(&p_minus_one),
                d_q: d.rem(&q_minus_one),
                q_inv,
                p,
                q,
            };
            return Ok(RsaKeyPair {
                public: RsaPublicKey::new(n.clone(), e),
                private: RsaPrivateKey::with_crt(n, d, Some(crt)),
            });
        }
        Err(CryptoError::PrimeGenerationFailed)
    }

    /// Generates a key pair with the protocol default modulus size.
    pub fn generate_default<R: Rng + ?Sized>(rng: &mut R) -> Result<Self, CryptoError> {
        Self::generate(rng, DEFAULT_MODULUS_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x0FA1_EBF1)
    }

    #[test]
    fn rejects_tiny_keys() {
        let mut r = rng();
        match RsaKeyPair::generate(&mut r, 64) {
            Err(CryptoError::KeyTooSmall { requested_bits, .. }) => assert_eq!(requested_bits, 64),
            other => panic!("expected KeyTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn generated_key_has_requested_size() {
        let mut r = rng();
        for bits in [256usize, 257, 320] {
            let pair = RsaKeyPair::generate(&mut r, bits).unwrap();
            // Top-two-bit forcing makes the size exact, not approximate.
            assert_eq!(pair.public.modulus_bits(), bits);
            assert_eq!(pair.public.modulus, pair.private.modulus);
            assert_eq!(pair.private.modulus_bits(), pair.public.modulus_bits());
        }
    }

    #[test]
    fn generated_key_carries_consistent_crt_factors() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 256).unwrap();
        let crt = pair.private.crt.as_ref().expect("generated keys carry CRT");
        assert_eq!(crt.p.mul(&crt.q), pair.private.modulus);
        let one = BigUint::one();
        assert_eq!(crt.d_p, pair.private.exponent.rem(&crt.p.sub(&one)),);
        assert_eq!(crt.d_q, pair.private.exponent.rem(&crt.q.sub(&one)),);
        assert_eq!(crt.q_inv.modmul(&crt.q, &crt.p), one);
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 256).unwrap();
        for value in [0u64, 1, 42, 123_456_789, u64::MAX] {
            let m = BigUint::from_u64(value);
            let c = pair.public.apply(&m);
            let back = pair.private.apply(&c);
            assert_eq!(back, m, "round trip failed for {value}");
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 256).unwrap();
        let m = BigUint::from_u64(0xDEAD_BEEF_CAFE);
        let sig = pair.private.apply(&m);
        assert_eq!(pair.public.apply(&sig), m);
        // A different message does not verify against the same signature.
        assert_ne!(pair.public.apply(&sig), BigUint::from_u64(1234));
    }

    #[test]
    fn key_without_crt_signs_identically() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 256).unwrap();
        let plain = RsaPrivateKey::from_components(
            pair.private.modulus.clone(),
            pair.private.exponent.clone(),
        );
        assert!(plain.crt.is_none());
        for value in [0u64, 1, 77, u64::MAX] {
            let m = BigUint::from_u64(value);
            assert_eq!(pair.private.apply(&m), plain.apply(&m));
        }
    }

    #[test]
    fn contexts_warm_up_lazily_and_cloning_keeps_them() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 256).unwrap();
        assert!(!pair.public.context_is_warm());
        assert!(!pair.private.context_is_warm());
        let m = BigUint::from_u64(0xFEED);
        let sig = pair.private.apply(&m);
        let _ = pair.public.apply(&sig);
        assert!(pair.public.context_is_warm());
        assert!(pair.private.context_is_warm());
        // Clones share the already-built contexts.
        assert!(pair.public.clone().context_is_warm());
        assert!(pair.private.clone().context_is_warm());
        // Warm and cold keys compare equal and sign identically.
        let cold = RsaPrivateKey::with_crt(
            pair.private.modulus.clone(),
            pair.private.exponent.clone(),
            pair.private.crt.clone(),
        );
        assert_eq!(cold, pair.private);
        assert_eq!(cold.apply(&m), sig);
    }

    #[test]
    fn distinct_keys_for_distinct_draws() {
        let mut r = rng();
        let a = RsaKeyPair::generate(&mut r, 192).unwrap();
        let b = RsaKeyPair::generate(&mut r, 192).unwrap();
        assert_ne!(a.public.modulus, b.public.modulus);
    }

    #[test]
    fn signature_from_wrong_key_fails() {
        let mut r = rng();
        let a = RsaKeyPair::generate(&mut r, 256).unwrap();
        let b = RsaKeyPair::generate(&mut r, 256).unwrap();
        let m = BigUint::from_u64(999_999);
        let sig_by_a = a.private.apply(&m);
        // Verifying with b's public key should not recover m (except with
        // negligible probability).
        assert_ne!(b.public.apply(&sig_by_a), m);
    }

    #[test]
    fn keypair_generation_is_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = RsaKeyPair::generate(&mut r1, 192).unwrap();
        let b = RsaKeyPair::generate(&mut r2, 192).unwrap();
        assert_eq!(a.public.modulus, b.public.modulus);
        assert_eq!(a.private.exponent, b.private.exponent);
        assert_eq!(a.private.crt, b.private.crt);
    }

    #[test]
    fn keypair_serde_round_trip() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 192).unwrap();
        let json = serde_json::to_string(&pair).unwrap();
        let back: RsaKeyPair = serde_json::from_str(&json).unwrap();
        assert_eq!(back.public, pair.public);
        assert_eq!(back.private, pair.private);
        assert!(back.private.crt.is_some());
    }

    #[test]
    fn legacy_private_key_json_deserializes_without_crt() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 192).unwrap();
        // Key material serialized before CRT factors existed: only (n, d).
        let legacy = format!(
            "{{\"modulus\":\"{}\",\"exponent\":\"{}\"}}",
            pair.private.modulus.to_hex_string(),
            pair.private.exponent.to_hex_string()
        );
        let key: RsaPrivateKey = serde_json::from_str(&legacy).unwrap();
        assert!(key.crt.is_none());
        assert_eq!(key.modulus, pair.private.modulus);
        // And it still signs compatibly with the CRT-bearing original.
        let m = BigUint::from_u64(0xABCD_EF01);
        assert_eq!(key.apply(&m), pair.private.apply(&m));
    }
}
