//! RSA key generation and raw sign/verify.
//!
//! FAIR-BFL assigns each client a unique private key; miners hold the
//! corresponding public keys and verify every gradient upload (paper
//! Figure 2). This module implements the textbook RSA primitive on top of
//! [`crate::bigint`] and [`crate::prime`]: key generation with two random
//! primes, `e = 65537`, and `d = e^{-1} mod (p-1)(q-1)`.
//!
//! The protocol-facing hash-then-sign wrapper lives in [`crate::signature`].

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::prime::{generate_prime, DEFAULT_MILLER_RABIN_ROUNDS};
use rand::Rng;

/// The conventional RSA public exponent.
pub const PUBLIC_EXPONENT: u32 = 65537;

/// Minimum supported modulus size. Anything smaller cannot hold a SHA-256
/// digest comfortably after reduction and offers no meaningful structure.
pub const MIN_MODULUS_BITS: usize = 128;

/// Default modulus size used by the protocol when none is specified.
pub const DEFAULT_MODULUS_BITS: usize = 1024;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPublicKey {
    /// Modulus `n = p * q`.
    pub modulus: BigUint,
    /// Public exponent `e`.
    pub exponent: BigUint,
}

/// An RSA private key `(n, d)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsaPrivateKey {
    /// Modulus `n = p * q`.
    pub modulus: BigUint,
    /// Private exponent `d = e^{-1} mod phi(n)`.
    pub exponent: BigUint,
}

/// A matched RSA key pair.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    /// The public half, distributed to miners.
    pub public: RsaPublicKey,
    /// The private half, kept by the client.
    pub private: RsaPrivateKey,
}

impl RsaPublicKey {
    /// Applies the public operation `m^e mod n` (used for verification).
    pub fn apply(&self, message: &BigUint) -> BigUint {
        message.modpow(&self.exponent, &self.modulus)
    }

    /// Size of the modulus in bits.
    pub fn modulus_bits(&self) -> usize {
        self.modulus.bit_len()
    }
}

impl RsaPrivateKey {
    /// Applies the private operation `m^d mod n` (used for signing).
    pub fn apply(&self, message: &BigUint) -> BigUint {
        message.modpow(&self.exponent, &self.modulus)
    }

    /// Size of the modulus in bits.
    pub fn modulus_bits(&self) -> usize {
        self.modulus.bit_len()
    }
}

impl RsaKeyPair {
    /// Generates a fresh key pair with a modulus of `modulus_bits` bits.
    ///
    /// `modulus_bits` must be at least [`MIN_MODULUS_BITS`]. Key sizes used
    /// in tests are intentionally small (128-512 bits) so the simulation
    /// remains fast; they are not secure key sizes.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        modulus_bits: usize,
    ) -> Result<Self, CryptoError> {
        if modulus_bits < MIN_MODULUS_BITS {
            return Err(CryptoError::KeyTooSmall {
                requested_bits: modulus_bits,
                minimum_bits: MIN_MODULUS_BITS,
            });
        }
        let e = BigUint::from_u32(PUBLIC_EXPONENT);
        let half = modulus_bits / 2;
        let one = BigUint::one();

        // Retry until phi(n) is coprime with e and p != q.
        for _ in 0..64 {
            let p = generate_prime(rng, half, DEFAULT_MILLER_RABIN_ROUNDS)?;
            let q = generate_prime(rng, modulus_bits - half, DEFAULT_MILLER_RABIN_ROUNDS)?;
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&one).mul(&q.sub(&one));
            if !phi.gcd(&e).is_one() {
                continue;
            }
            let d = match e.modinv(&phi) {
                Some(d) => d,
                None => continue,
            };
            return Ok(RsaKeyPair {
                public: RsaPublicKey {
                    modulus: n.clone(),
                    exponent: e,
                },
                private: RsaPrivateKey {
                    modulus: n,
                    exponent: d,
                },
            });
        }
        Err(CryptoError::PrimeGenerationFailed)
    }

    /// Generates a key pair with the protocol default modulus size.
    pub fn generate_default<R: Rng + ?Sized>(rng: &mut R) -> Result<Self, CryptoError> {
        Self::generate(rng, DEFAULT_MODULUS_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x0FA1_EBF1)
    }

    #[test]
    fn rejects_tiny_keys() {
        let mut r = rng();
        match RsaKeyPair::generate(&mut r, 64) {
            Err(CryptoError::KeyTooSmall { requested_bits, .. }) => assert_eq!(requested_bits, 64),
            other => panic!("expected KeyTooSmall, got {other:?}"),
        }
    }

    #[test]
    fn generated_key_has_requested_size() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 256).unwrap();
        // The product of a 128-bit and a 128-bit prime has 255 or 256 bits.
        assert!(pair.public.modulus_bits() >= 255);
        assert!(pair.public.modulus_bits() <= 256);
        assert_eq!(pair.public.modulus, pair.private.modulus);
        assert_eq!(pair.private.modulus_bits(), pair.public.modulus_bits());
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 256).unwrap();
        for value in [0u64, 1, 42, 123_456_789, u64::MAX] {
            let m = BigUint::from_u64(value);
            let c = pair.public.apply(&m);
            let back = pair.private.apply(&c);
            assert_eq!(back, m, "round trip failed for {value}");
        }
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut r = rng();
        let pair = RsaKeyPair::generate(&mut r, 256).unwrap();
        let m = BigUint::from_u64(0xDEAD_BEEF_CAFE);
        let sig = pair.private.apply(&m);
        assert_eq!(pair.public.apply(&sig), m);
        // A different message does not verify against the same signature.
        assert_ne!(pair.public.apply(&sig), BigUint::from_u64(1234));
    }

    #[test]
    fn distinct_keys_for_distinct_draws() {
        let mut r = rng();
        let a = RsaKeyPair::generate(&mut r, 192).unwrap();
        let b = RsaKeyPair::generate(&mut r, 192).unwrap();
        assert_ne!(a.public.modulus, b.public.modulus);
    }

    #[test]
    fn signature_from_wrong_key_fails() {
        let mut r = rng();
        let a = RsaKeyPair::generate(&mut r, 256).unwrap();
        let b = RsaKeyPair::generate(&mut r, 256).unwrap();
        let m = BigUint::from_u64(999_999);
        let sig_by_a = a.private.apply(&m);
        // Verifying with b's public key should not recover m (except with
        // negligible probability).
        assert_ne!(b.public.apply(&sig_by_a), m);
    }

    #[test]
    fn keypair_generation_is_seed_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = RsaKeyPair::generate(&mut r1, 192).unwrap();
        let b = RsaKeyPair::generate(&mut r2, 192).unwrap();
        assert_eq!(a.public.modulus, b.public.modulus);
        assert_eq!(a.private.exponent, b.private.exponent);
    }
}
