//! SHA-256 (FIPS 180-4) implemented from scratch.
//!
//! The blockchain substrate uses SHA-256 for block hashes, Merkle roots and
//! the proof-of-work puzzle (Equation 4 of the paper); the signature module
//! uses it as the message digest of the hash-then-sign scheme.
//!
//! Both a one-shot [`sha256`] helper and an incremental [`Sha256`] hasher
//! are provided. The incremental interface lets the blockchain hash block
//! headers field-by-field without materialising an intermediate buffer.
//!
//! On x86-64 machines with the SHA extensions the compression function
//! dispatches (runtime-detected, cached) to the `sha256rnds2`/`sha256msg`
//! instruction sequence, which hashes a block in a handful of cycles;
//! every other target runs the portable scalar rounds. Both paths
//! produce identical digests — the NIST vectors and the cross-path test
//! below pin them together.

/// The size of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// A SHA-256 digest.
pub type Digest = [u8; DIGEST_LEN];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use bfl_crypto::sha256::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let digest = hasher.finalize();
/// assert_eq!(digest, bfl_crypto::sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in its initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill a partially filled buffer first.
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Process whole blocks directly from the input, in one batch:
        // the hardware path keeps the state in registers for the entire
        // run instead of repacking it per block.
        let whole = input.len() - input.len() % 64;
        if whole > 0 {
            self.compress_many(&input[..whole]);
            input = &input[whole..];
        }

        // Stash the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Consumes the hasher and returns the digest.
    ///
    /// Allocation-free: the padding is staged in a stack buffer, so
    /// per-nonce mining hashes (midstate clone + 8-byte nonce + finalize)
    /// never touch the heap.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);

        // 0x80 terminator, zeros to the next 56 (mod 64) boundary, then
        // the 64-bit message length; at most 72 bytes in total.
        let mut tail = [0u8; 72];
        tail[0] = 0x80;
        let rem = (self.buffer_len + 1) % 64;
        let zeros = if rem <= 56 { 56 - rem } else { 120 - rem };
        let tail_len = 1 + zeros + 8;
        tail[1 + zeros..tail_len].copy_from_slice(&bit_len.to_be_bytes());

        // `update` tracks total_len; neutralise the padding contribution.
        let saved = self.total_len;
        self.update(&tail[..tail_len]);
        self.total_len = saved;
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // Safety: `available` checked the sha/ssse3/sse4.1 features.
            unsafe { shani::compress_blocks(&mut self.state, block) };
            return;
        }
        self.compress_soft(block);
    }

    /// Compresses a run of whole blocks (`data.len()` a multiple of 64).
    fn compress_many(&mut self, data: &[u8]) {
        debug_assert_eq!(data.len() % 64, 0);
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // Safety: `available` checked the sha/ssse3/sse4.1 features.
            unsafe { shani::compress_blocks(&mut self.state, data) };
            return;
        }
        for block in data.chunks_exact(64) {
            self.compress_soft(block.try_into().expect("64-byte chunk"));
        }
    }

    /// Portable scalar compression (the reference the hardware path is
    /// pinned against).
    fn compress_soft(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hardware SHA-256 compression via the x86 SHA extensions.
///
/// The round core is two `sha256rnds2` instructions per four rounds over
/// the `ABEF`/`CDGH` register split, with the message schedule advanced
/// by `sha256msg1`/`sha256msg2` — the standard Intel sequence. Feature
/// availability is detected once and cached.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Whether this machine has the required feature set.
    pub fn available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            is_x86_feature_detected!("sha")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("sse4.1")
        })
    }

    /// Computes the schedule quad `w[i..i+4]` from the previous four quads.
    #[inline(always)]
    unsafe fn schedule(v0: __m128i, v1: __m128i, v2: __m128i, v3: __m128i) -> __m128i {
        let t1 = _mm_sha256msg1_epu32(v0, v1);
        let t2 = _mm_alignr_epi8(v3, v2, 4);
        let t3 = _mm_add_epi32(t1, t2);
        _mm_sha256msg2_epu32(t3, v3)
    }

    /// Runs four rounds: the low two via `rnds2` on `CDGH`, the high two
    /// (shuffled into the low lanes) on `ABEF`.
    macro_rules! rounds4 {
        ($abef:ident, $cdgh:ident, $w:expr, $i:expr) => {{
            let kv = _mm_set_epi32(
                K[4 * $i + 3] as i32,
                K[4 * $i + 2] as i32,
                K[4 * $i + 1] as i32,
                K[4 * $i] as i32,
            );
            let t1 = _mm_add_epi32($w, kv);
            $cdgh = _mm_sha256rnds2_epu32($cdgh, $abef, t1);
            let t2 = _mm_shuffle_epi32(t1, 0x0E);
            $abef = _mm_sha256rnds2_epu32($abef, $cdgh, t2);
        }};
    }

    macro_rules! schedule_rounds4 {
        ($abef:ident, $cdgh:ident, $w0:expr, $w1:expr, $w2:expr, $w3:expr, $w4:expr, $i:expr) => {{
            $w4 = schedule($w0, $w1, $w2, $w3);
            rounds4!($abef, $cdgh, $w4, $i);
        }};
    }

    /// Compresses a run of 64-byte blocks into `state`, keeping the
    /// working state in registers between blocks.
    ///
    /// `data.len()` must be a non-zero multiple of 64.
    ///
    /// # Safety
    /// Requires the `sha`, `ssse3` and `sse4.1` target features (checked
    /// by [`available`]).
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
        debug_assert_eq!(data.len() % 64, 0);
        // Byte shuffle mask turning little-endian loads into the
        // big-endian words FIPS 180-4 specifies.
        let mask = _mm_set_epi64x(
            0x0C0D_0E0F_0809_0A0Bu64 as i64,
            0x0405_0607_0001_0203u64 as i64,
        );

        // Repack [a,b,c,d]/[e,f,g,h] into the ABEF/CDGH layout the
        // rnds2 instruction expects.
        let state_ptr = state.as_ptr() as *const __m128i;
        let dcba = _mm_loadu_si128(state_ptr);
        let hgfe = _mm_loadu_si128(state_ptr.add(1));
        let cdab = _mm_shuffle_epi32(dcba, 0xB1);
        let efgh = _mm_shuffle_epi32(hgfe, 0x1B);
        let mut abef = _mm_alignr_epi8(cdab, efgh, 8);
        let mut cdgh = _mm_blend_epi16(efgh, cdab, 0xF0);

        for block in data.chunks_exact(64) {
            let abef_save = abef;
            let cdgh_save = cdgh;

            let data_ptr = block.as_ptr() as *const __m128i;
            let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(data_ptr), mask);
            let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(data_ptr.add(1)), mask);
            let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(data_ptr.add(2)), mask);
            let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(data_ptr.add(3)), mask);
            let mut w4;

            rounds4!(abef, cdgh, w0, 0);
            rounds4!(abef, cdgh, w1, 1);
            rounds4!(abef, cdgh, w2, 2);
            rounds4!(abef, cdgh, w3, 3);
            schedule_rounds4!(abef, cdgh, w0, w1, w2, w3, w4, 4);
            schedule_rounds4!(abef, cdgh, w1, w2, w3, w4, w0, 5);
            schedule_rounds4!(abef, cdgh, w2, w3, w4, w0, w1, 6);
            schedule_rounds4!(abef, cdgh, w3, w4, w0, w1, w2, 7);
            schedule_rounds4!(abef, cdgh, w4, w0, w1, w2, w3, 8);
            schedule_rounds4!(abef, cdgh, w0, w1, w2, w3, w4, 9);
            schedule_rounds4!(abef, cdgh, w1, w2, w3, w4, w0, 10);
            schedule_rounds4!(abef, cdgh, w2, w3, w4, w0, w1, 11);
            schedule_rounds4!(abef, cdgh, w3, w4, w0, w1, w2, 12);
            schedule_rounds4!(abef, cdgh, w4, w0, w1, w2, w3, 13);
            schedule_rounds4!(abef, cdgh, w0, w1, w2, w3, w4, 14);
            schedule_rounds4!(abef, cdgh, w1, w2, w3, w4, w0, 15);

            abef = _mm_add_epi32(abef, abef_save);
            cdgh = _mm_add_epi32(cdgh, cdgh_save);
        }

        // Unpack ABEF/CDGH back to [a,b,c,d]/[e,f,g,h].
        let feba = _mm_shuffle_epi32(abef, 0x1B);
        let dchg = _mm_shuffle_epi32(cdgh, 0xB1);
        let dcba = _mm_blend_epi16(feba, dchg, 0xF0);
        let hgfe = _mm_alignr_epi8(dchg, feba, 8);

        let out_ptr = state.as_mut_ptr() as *mut __m128i;
        _mm_storeu_si128(out_ptr, dcba);
        _mm_storeu_si128(out_ptr.add(1), hgfe);
    }
}

/// Computes the SHA-256 digest of `data` in one shot.
pub fn sha256(data: &[u8]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Computes SHA-256(SHA-256(data)), the double hash used for block ids.
pub fn sha256d(data: &[u8]) -> Digest {
    sha256(&sha256(data))
}

/// Renders a digest as lowercase hexadecimal.
pub fn to_hex(digest: &Digest) -> String {
    let mut s = String::with_capacity(DIGEST_LEN * 2);
    for byte in digest {
        s.push_str(&format!("{byte:02x}"));
    }
    s
}

/// Parses a lowercase/uppercase hexadecimal string into a digest.
pub fn from_hex(hex: &str) -> Option<Digest> {
    if hex.len() != DIGEST_LEN * 2 {
        return None;
    }
    let mut out = [0u8; DIGEST_LEN];
    for i in 0..DIGEST_LEN {
        out[i] = u8::from_str_radix(&hex[i * 2..i * 2 + 2], 16).ok()?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // FIPS 180-4 / NIST CAVP test vectors.
    #[test]
    fn empty_string_vector() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_input_vector() {
        // One million 'a' characters.
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exactly_64_byte_message() {
        let data = [0x41u8; 64];
        // Cross-checked reference digest for 64 bytes of 'A'.
        assert_eq!(
            to_hex(&sha256(&data)),
            "d53eda7a637c99cc7fb566d96e9fa109bf15c478410a3f5eb4d4c4e26cd081f6"
        );
    }

    #[test]
    fn fifty_five_and_fifty_six_byte_boundary() {
        // 55 bytes: padding fits in one block; 56 bytes: requires a second block.
        let d55 = sha256(&[b'x'; 55]);
        let d56 = sha256(&[b'x'; 56]);
        assert_ne!(d55, d56);
    }

    #[test]
    fn double_hash_differs_from_single() {
        assert_ne!(sha256(b"block"), sha256d(b"block"));
        assert_eq!(sha256d(b"block"), sha256(&sha256(b"block")));
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        let hex = to_hex(&d);
        assert_eq!(from_hex(&hex), Some(d));
        assert_eq!(from_hex("zz"), None);
        assert_eq!(from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn default_equals_new() {
        let a = Sha256::default().finalize();
        let b = Sha256::new().finalize();
        assert_eq!(a, b);
    }

    proptest! {
        /// The dispatching compression (hardware when available) and the
        /// portable scalar rounds must agree on every block and state.
        #[test]
        fn compression_paths_agree(
            block_bytes in proptest::collection::vec(any::<u8>(), 64..65),
            s0 in any::<u64>(),
            s1 in any::<u64>(),
            s2 in any::<u64>(),
            s3 in any::<u64>(),
        ) {
            let block: [u8; 64] = block_bytes.try_into().unwrap();
            let mut state = [0u32; 8];
            for (i, seed) in [s0, s1, s2, s3].iter().enumerate() {
                state[2 * i] = *seed as u32;
                state[2 * i + 1] = (*seed >> 32) as u32;
            }
            let mut dispatched = Sha256::new();
            dispatched.state = state;
            let mut scalar = Sha256::new();
            scalar.state = state;
            dispatched.compress(&block);
            scalar.compress_soft(&block);
            prop_assert_eq!(dispatched.state, scalar.state);
        }

        #[test]
        fn incremental_matches_one_shot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                        split in 0usize..2048) {
            let split = split.min(data.len());
            let mut hasher = Sha256::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            prop_assert_eq!(hasher.finalize(), sha256(&data));
        }

        #[test]
        fn digest_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(sha256(&data), sha256(&data));
        }

        #[test]
        fn different_inputs_rarely_collide(a in proptest::collection::vec(any::<u8>(), 0..128),
                                           b in proptest::collection::vec(any::<u8>(), 0..128)) {
            if a != b {
                prop_assert_ne!(sha256(&a), sha256(&b));
            }
        }

        #[test]
        fn many_small_updates_match(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let mut hasher = Sha256::new();
            for chunk in data.chunks(7) {
                hasher.update(chunk);
            }
            prop_assert_eq!(hasher.finalize(), sha256(&data));
        }
    }
}
