//! Hash-then-sign envelope used for gradient uploads.
//!
//! The paper's Procedure-II (Section 4.2) has every client sign its gradient
//! upload with its private key; the receiving miner verifies the signature
//! with the client's registered public key before accepting the transaction
//! (Figure 2). Because the gradient payload is much larger than the RSA
//! modulus, the payload is first hashed with SHA-256 and the digest, reduced
//! modulo `n`, is what gets exponentiated.

use crate::bigint::BigUint;
use crate::error::CryptoError;
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::sha256::sha256;
use serde::{Deserialize, Serialize};

/// A detached RSA signature over a SHA-256 digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// Big-endian bytes of the signature integer `s = H(m)^d mod n`.
    pub bytes: Vec<u8>,
}

impl Signature {
    /// Interprets the signature as an integer.
    pub fn to_biguint(&self) -> BigUint {
        BigUint::from_bytes_be(&self.bytes)
    }

    /// Signature length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the signature carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// A payload together with its signer id and signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedMessage {
    /// Identifier of the signing client.
    pub signer: u64,
    /// The signed payload (already serialized by the caller).
    pub payload: Vec<u8>,
    /// Detached signature over `signer || payload`.
    pub signature: Signature,
}

/// Reduces the SHA-256 digest of `signer || payload` into the key's modulus.
fn digest_as_integer(signer: u64, payload: &[u8], modulus: &BigUint) -> BigUint {
    let mut preimage = Vec::with_capacity(payload.len() + 8);
    preimage.extend_from_slice(&signer.to_be_bytes());
    preimage.extend_from_slice(payload);
    let digest = sha256(&preimage);
    BigUint::from_bytes_be(&digest).rem(modulus)
}

/// Signs `payload` on behalf of `signer` with `key`.
pub fn sign_message(signer: u64, payload: &[u8], key: &RsaPrivateKey) -> SignedMessage {
    let m = digest_as_integer(signer, payload, key.modulus());
    let s = key.apply(&m);
    SignedMessage {
        signer,
        payload: payload.to_vec(),
        signature: Signature {
            bytes: s.to_bytes_be(),
        },
    }
}

/// Verifies a [`SignedMessage`] against the claimed signer's public key.
pub fn verify_message(message: &SignedMessage, key: &RsaPublicKey) -> Result<(), CryptoError> {
    let expected = digest_as_integer(message.signer, &message.payload, key.modulus());
    let recovered = key.apply(&message.signature.to_biguint());
    if recovered == expected {
        Ok(())
    } else {
        Err(CryptoError::InvalidSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(0x516);
        RsaKeyPair::generate(&mut rng, 256).unwrap()
    }

    #[test]
    fn sign_and_verify_round_trip() {
        let pair = keypair();
        let payload = b"gradient bytes for round 7";
        let msg = sign_message(42, payload, &pair.private);
        assert_eq!(msg.signer, 42);
        assert_eq!(msg.payload, payload);
        assert!(!msg.signature.is_empty());
        assert!(msg.signature.len() <= 32);
        verify_message(&msg, &pair.public).expect("valid signature must verify");
    }

    #[test]
    fn tampered_payload_is_rejected() {
        let pair = keypair();
        let mut msg = sign_message(1, b"honest gradient", &pair.private);
        msg.payload = b"forged gradient".to_vec();
        assert_eq!(
            verify_message(&msg, &pair.public),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn tampered_signer_is_rejected() {
        let pair = keypair();
        let mut msg = sign_message(1, b"honest gradient", &pair.private);
        msg.signer = 2;
        assert_eq!(
            verify_message(&msg, &pair.public),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn tampered_signature_is_rejected() {
        let pair = keypair();
        let mut msg = sign_message(1, b"honest gradient", &pair.private);
        if let Some(first) = msg.signature.bytes.first_mut() {
            *first ^= 0xff;
        }
        assert_eq!(
            verify_message(&msg, &pair.public),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn wrong_key_is_rejected() {
        let pair = keypair();
        let mut other_rng = StdRng::seed_from_u64(0x999);
        let other = RsaKeyPair::generate(&mut other_rng, 256).unwrap();
        let msg = sign_message(1, b"payload", &pair.private);
        assert_eq!(
            verify_message(&msg, &other.public),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn empty_payload_is_signable() {
        let pair = keypair();
        let msg = sign_message(9, b"", &pair.private);
        verify_message(&msg, &pair.public).unwrap();
    }

    #[test]
    fn signed_message_serde_round_trip() {
        let pair = keypair();
        let msg = sign_message(5, b"serialize me", &pair.private);
        let json = serde_json::to_string(&msg).unwrap();
        let back: SignedMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
        verify_message(&back, &pair.public).unwrap();
    }
}
