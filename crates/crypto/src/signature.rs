//! Hash-then-sign envelope used for gradient uploads.
//!
//! The paper's Procedure-II (Section 4.2) has every client sign its gradient
//! upload with its private key; the receiving miner verifies the signature
//! with the client's registered public key before accepting the transaction
//! (Figure 2). Because the gradient payload is much larger than the RSA
//! modulus, the payload is first hashed with SHA-256 and the digest, reduced
//! modulo `n`, is what gets exponentiated.
//!
//! [`verify_message`] is the one-shot entry point; [`BatchVerifier`] is
//! the amortized one. A round's uploads arrive as a batch, and the
//! one-shot path pays roughly a dozen small allocations per call
//! (workspace buffers for the Montgomery convert/pow/recover chain, the
//! digest preimage, the explicit digest reduction). The batch verifier
//! keeps a single prepared [`MontWorkspace`] plus a reusable preimage
//! buffer across the whole batch, compares in the Montgomery domain
//! (skipping the recover multiply), and gets the squaring-specialised
//! reduction that prepared workspaces unlock — same accept/reject
//! decision per upload, measurably less constant overhead per upload.

use crate::bigint::BigUint;
use crate::engine;
use crate::error::CryptoError;
use crate::montgomery::MontWorkspace;
use crate::rsa::{RsaPrivateKey, RsaPublicKey};
use crate::sha256::sha256;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A detached RSA signature over a SHA-256 digest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// Big-endian bytes of the signature integer `s = H(m)^d mod n`.
    pub bytes: Vec<u8>,
}

impl Signature {
    /// Interprets the signature as an integer.
    pub fn to_biguint(&self) -> BigUint {
        BigUint::from_bytes_be(&self.bytes)
    }

    /// Signature length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the signature carries no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// A payload together with its signer id and signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignedMessage {
    /// Identifier of the signing client.
    pub signer: u64,
    /// The signed payload (already serialized by the caller).
    pub payload: Vec<u8>,
    /// Detached signature over `signer || payload`.
    pub signature: Signature,
}

/// Reduces the SHA-256 digest of `signer || payload` into the key's modulus.
fn digest_as_integer(signer: u64, payload: &[u8], modulus: &BigUint) -> BigUint {
    let mut preimage = Vec::with_capacity(payload.len() + 8);
    preimage.extend_from_slice(&signer.to_be_bytes());
    preimage.extend_from_slice(payload);
    let digest = sha256(&preimage);
    BigUint::from_bytes_be(&digest).rem(modulus)
}

/// Signs `payload` on behalf of `signer` with `key`.
pub fn sign_message(signer: u64, payload: &[u8], key: &RsaPrivateKey) -> SignedMessage {
    let m = digest_as_integer(signer, payload, key.modulus());
    let s = key.apply(&m);
    SignedMessage {
        signer,
        payload: payload.to_vec(),
        signature: Signature {
            bytes: s.to_bytes_be(),
        },
    }
}

/// Verifies a [`SignedMessage`] against the claimed signer's public key.
pub fn verify_message(message: &SignedMessage, key: &RsaPublicKey) -> Result<(), CryptoError> {
    let expected = digest_as_integer(message.signer, &message.payload, key.modulus());
    let recovered = key.apply(&message.signature.to_biguint());
    if recovered == expected {
        Ok(())
    } else {
        Err(CryptoError::InvalidSignature)
    }
}

/// Exponent bit length at which the random-linear-combination screen
/// becomes arithmetically profitable. The screen replaces one
/// full-exponent pow per signature with one per *batch* plus two 64-bit
/// coefficient pows per signature (~96 Montgomery multiplies each side);
/// with the fixed public exponent 65537 a direct confirm is only ~19
/// multiplies, so screening a standard-key batch would cost more than it
/// saves. Long-exponent key material (raw-RSA verification against a
/// full-size exponent) clears this threshold comfortably.
const SCREEN_MIN_EXPONENT_BITS: usize = 128;

/// Verifies uploads in batches, amortizing the per-call setup that
/// [`verify_message`] pays: one prepared [`MontWorkspace`] (re-fitted
/// only when the key width changes) and one preimage buffer serve the
/// whole batch, and comparisons happen in the Montgomery domain.
///
/// [`BatchVerifier::verify_batch`] additionally runs a screen-then-confirm
/// pass: signatures sharing a `(modulus, exponent)` pair are screened with
/// a random linear combination — coefficients drawn Fiat–Shamir-style
/// from a SHA-256 transcript of the batch, so they are deterministic for
/// a given batch yet unpredictable to anything that produced the
/// signatures — and only on screen failure does it fall back to
/// per-signature confirmation. A passing screen accepts the group
/// outright (soundness error 2^-64 per forged group against the
/// content-derived coefficients); a failing screen changes nothing about
/// the final decisions, because every member is then confirmed
/// individually. The screen only engages where it is profitable
/// (exponents of at least 128 bits); standard e = 65537 batches always take
/// the amortized per-signature confirm, whose decisions are *exactly*
/// those of [`verify_message`].
///
/// In [`engine::set_reference_mode`] the verifier delegates every
/// message to [`verify_message`] so the retained seed path stays the
/// single source of truth for equivalence runs.
#[derive(Debug, Default)]
pub struct BatchVerifier {
    ws: MontWorkspace,
    preimage: Vec<u8>,
    confirms: u64,
    screen_passes: u64,
    screen_fallbacks: u64,
}

impl BatchVerifier {
    /// A fresh verifier with empty (lazily fitted) buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// SHA-256 digest of `signer || payload` through the reusable
    /// preimage buffer.
    fn digest32(&mut self, signer: u64, payload: &[u8]) -> [u8; 32] {
        self.preimage.clear();
        self.preimage.extend_from_slice(&signer.to_be_bytes());
        self.preimage.extend_from_slice(payload);
        sha256(&self.preimage)
    }

    /// Verifies one message exactly like [`verify_message`], through the
    /// shared workspace. Decisions are identical: both compare
    /// `s^e mod n` against the reduced digest, here via the (bijective)
    /// Montgomery images instead of the recovered residues.
    pub fn confirm(
        &mut self,
        message: &SignedMessage,
        key: &RsaPublicKey,
    ) -> Result<(), CryptoError> {
        self.confirms += 1;
        if engine::reference_mode() {
            return verify_message(message, key);
        }
        let Some(ctx) = key.montgomery_ctx() else {
            // Even/trivial modulus: no Montgomery context exists and the
            // one-shot path's reference exponentiation is the only route.
            return verify_message(message, key);
        };
        let digest = self.digest32(message.signer, &message.payload);
        ctx.prepare(&mut self.ws);
        ctx.load_bytes_be(&message.signature.bytes, &mut self.ws);
        ctx.pow_in_place(key.exponent(), &mut self.ws);
        ctx.stash_value(&mut self.ws);
        ctx.load_bytes_be(&digest, &mut self.ws);
        if ctx.value_equals_stash(&self.ws) {
            Ok(())
        } else {
            Err(CryptoError::InvalidSignature)
        }
    }

    /// Verifies a batch, returning one verdict per message in input
    /// order. Per-message decisions match [`verify_message`] (see the
    /// type-level docs for the screen's soundness bound).
    pub fn verify_batch(
        &mut self,
        batch: &[(&SignedMessage, &RsaPublicKey)],
    ) -> Vec<Result<(), CryptoError>> {
        let mut results: Vec<Option<Result<(), CryptoError>>> =
            batch.iter().map(|_| None).collect();
        if engine::reference_mode() {
            for (slot, (message, key)) in results.iter_mut().zip(batch) {
                self.confirms += 1;
                *slot = Some(verify_message(message, key));
            }
            return results.into_iter().map(|r| r.expect("all set")).collect();
        }
        // Fast path: when no key clears the screen threshold the
        // grouping buys nothing (the screen would never engage), so the
        // per-message slice-keyed map lookups are pure overhead —
        // confirm straight through in input order instead.
        if batch
            .iter()
            .all(|(_, key)| key.exponent().bit_len() < SCREEN_MIN_EXPONENT_BITS)
        {
            return batch
                .iter()
                .map(|(message, key)| self.confirm(message, key))
                .collect();
        }
        // Group by (modulus, exponent): the screen's product identity
        // only holds within one key equation.
        let mut groups: BTreeMap<(&[u64], &[u64]), Vec<usize>> = BTreeMap::new();
        for (i, (_, key)) in batch.iter().enumerate() {
            groups
                .entry((key.modulus().limbs(), key.exponent().limbs()))
                .or_default()
                .push(i);
        }
        let group_lists: Vec<Vec<usize>> = groups.into_values().collect();
        for indices in group_lists {
            let key = batch[indices[0]].1;
            let screenable = indices.len() >= 2
                && key.exponent().bit_len() >= SCREEN_MIN_EXPONENT_BITS
                && key.montgomery_ctx().is_some();
            if screenable && self.screen_group(batch, &indices) {
                self.screen_passes += 1;
                for &i in &indices {
                    results[i] = Some(Ok(()));
                }
                continue;
            }
            if screenable {
                self.screen_fallbacks += 1;
            }
            for &i in &indices {
                let (message, key) = batch[i];
                results[i] = Some(self.confirm(message, key));
            }
        }
        results.into_iter().map(|r| r.expect("all set")).collect()
    }

    /// Random-linear-combination screen over one same-key group: checks
    /// `(∏ s_i^{r_i})^e == ∏ d_i^{r_i} (mod n)` for Fiat–Shamir 64-bit
    /// coefficients `r_i`. `true` means every member verifies (up to the
    /// 2^-64 soundness error against content-derived coefficients);
    /// `false` means at least one member is dubious and the caller must
    /// confirm individually.
    fn screen_group(
        &mut self,
        batch: &[(&SignedMessage, &RsaPublicKey)],
        indices: &[usize],
    ) -> bool {
        let key = batch[indices[0]].1;
        let ctx = key.montgomery_ctx().expect("caller checked");
        let exponent = key.exponent().clone();

        // Transcript: every member's signer, digest, and signature bytes.
        let mut digests = Vec::with_capacity(indices.len());
        let mut transcript = Vec::new();
        for &i in indices {
            let (message, _) = batch[i];
            let digest = self.digest32(message.signer, &message.payload);
            transcript.extend_from_slice(&message.signer.to_be_bytes());
            transcript.extend_from_slice(&digest);
            transcript.extend_from_slice(&(message.signature.bytes.len() as u64).to_be_bytes());
            transcript.extend_from_slice(&message.signature.bytes);
            digests.push(digest);
        }
        let seed = sha256(&transcript);

        let mut sig_acc = ctx.one();
        let mut digest_acc = ctx.one();
        for (slot, &i) in indices.iter().enumerate() {
            let (message, _) = batch[i];
            let mut coeff_input = Vec::with_capacity(40);
            coeff_input.extend_from_slice(&seed);
            coeff_input.extend_from_slice(&(slot as u64).to_be_bytes());
            let coeff_bytes = sha256(&coeff_input);
            let coeff = BigUint::from_bytes_be(&coeff_bytes[..8]);

            let s = ctx.convert(&message.signature.to_biguint());
            sig_acc = ctx.mul(&sig_acc, &ctx.pow(&s, &coeff));
            let d = ctx.convert(&BigUint::from_bytes_be(&digests[slot]));
            digest_acc = ctx.mul(&digest_acc, &ctx.pow(&d, &coeff));
        }
        ctx.pow(&sig_acc, &exponent) == digest_acc
    }

    /// Number of per-signature confirmations run (screened-and-passed
    /// messages never reach a confirm).
    pub fn confirms(&self) -> u64 {
        self.confirms
    }

    /// Number of same-key groups accepted wholesale by the screen.
    pub fn screen_passes(&self) -> u64 {
        self.screen_passes
    }

    /// Number of same-key groups whose screen failed and fell back to
    /// per-signature confirmation.
    pub fn screen_fallbacks(&self) -> u64 {
        self.screen_fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsa::RsaKeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> RsaKeyPair {
        let mut rng = StdRng::seed_from_u64(0x516);
        RsaKeyPair::generate(&mut rng, 256).unwrap()
    }

    #[test]
    fn sign_and_verify_round_trip() {
        let pair = keypair();
        let payload = b"gradient bytes for round 7";
        let msg = sign_message(42, payload, &pair.private);
        assert_eq!(msg.signer, 42);
        assert_eq!(msg.payload, payload);
        assert!(!msg.signature.is_empty());
        assert!(msg.signature.len() <= 32);
        verify_message(&msg, &pair.public).expect("valid signature must verify");
    }

    #[test]
    fn tampered_payload_is_rejected() {
        let pair = keypair();
        let mut msg = sign_message(1, b"honest gradient", &pair.private);
        msg.payload = b"forged gradient".to_vec();
        assert_eq!(
            verify_message(&msg, &pair.public),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn tampered_signer_is_rejected() {
        let pair = keypair();
        let mut msg = sign_message(1, b"honest gradient", &pair.private);
        msg.signer = 2;
        assert_eq!(
            verify_message(&msg, &pair.public),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn tampered_signature_is_rejected() {
        let pair = keypair();
        let mut msg = sign_message(1, b"honest gradient", &pair.private);
        if let Some(first) = msg.signature.bytes.first_mut() {
            *first ^= 0xff;
        }
        assert_eq!(
            verify_message(&msg, &pair.public),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn wrong_key_is_rejected() {
        let pair = keypair();
        let mut other_rng = StdRng::seed_from_u64(0x999);
        let other = RsaKeyPair::generate(&mut other_rng, 256).unwrap();
        let msg = sign_message(1, b"payload", &pair.private);
        assert_eq!(
            verify_message(&msg, &other.public),
            Err(CryptoError::InvalidSignature)
        );
    }

    #[test]
    fn empty_payload_is_signable() {
        let pair = keypair();
        let msg = sign_message(9, b"", &pair.private);
        verify_message(&msg, &pair.public).unwrap();
    }

    /// A "reversed" pair for exercising the screen: signing uses the
    /// short exponent 65537, verification the full-size exponent `d` —
    /// a valid RSA relation with a screenable (long) verify exponent.
    fn long_exponent_pair() -> (RsaPrivateKey, RsaPublicKey) {
        let mut rng = StdRng::seed_from_u64(0xB47C);
        let pair = RsaKeyPair::generate(&mut rng, 256).unwrap();
        let signer = RsaPrivateKey::from_components(
            pair.public.modulus().clone(),
            pair.public.exponent().clone(),
        );
        let verifier = RsaPublicKey::new(
            pair.private.modulus().clone(),
            pair.private.exponent().clone(),
        );
        (signer, verifier)
    }

    #[test]
    fn batch_confirm_matches_one_shot_decisions() {
        let _guard = crate::engine::mode_lock();
        let pair = keypair();
        let other = {
            let mut rng = StdRng::seed_from_u64(0x717);
            RsaKeyPair::generate(&mut rng, 320).unwrap()
        };
        let mut verifier = BatchVerifier::new();
        // Valid, tampered, and cross-width messages — the shared
        // workspace re-fits between the 256- and 320-bit keys.
        let valid = sign_message(1, b"round 9 gradient", &pair.private);
        let mut tampered = sign_message(2, b"honest", &pair.private);
        tampered.payload = b"forged".to_vec();
        let wide = sign_message(3, b"wide key upload", &other.private);
        for (msg, key) in [
            (&valid, &pair.public),
            (&tampered, &pair.public),
            (&wide, &other.public),
            (&valid, &other.public),
        ] {
            assert_eq!(verifier.confirm(msg, key), verify_message(msg, key));
        }
        assert_eq!(verifier.confirms(), 4);
    }

    #[test]
    fn verify_batch_matches_per_upload_in_both_engine_modes() {
        let _guard = crate::engine::mode_lock();
        let pair = keypair();
        let mut msgs: Vec<SignedMessage> = (0..6)
            .map(|i| sign_message(i, format!("upload {i}").as_bytes(), &pair.private))
            .collect();
        // Corrupt two of them (payload byte flip and signature byte flip).
        msgs[1].payload[0] ^= 0x40;
        if let Some(b) = msgs[4].signature.bytes.first_mut() {
            *b ^= 0x01;
        }
        let batch: Vec<(&SignedMessage, &RsaPublicKey)> =
            msgs.iter().map(|m| (m, &pair.public)).collect();
        for reference in [false, true] {
            crate::engine::set_reference_mode(reference);
            let mut verifier = BatchVerifier::new();
            let got = verifier.verify_batch(&batch);
            let expected: Vec<_> = batch.iter().map(|(m, k)| verify_message(m, k)).collect();
            assert_eq!(got, expected, "reference={reference}");
        }
        crate::engine::set_reference_mode(false);
    }

    #[test]
    fn screen_accepts_valid_long_exponent_batches_wholesale() {
        let _guard = crate::engine::mode_lock();
        let (signer, public) = long_exponent_pair();
        assert!(public.exponent().bit_len() >= super::SCREEN_MIN_EXPONENT_BITS);
        let msgs: Vec<SignedMessage> = (0..5)
            .map(|i| sign_message(i, format!("member {i}").as_bytes(), &signer))
            .collect();
        let batch: Vec<(&SignedMessage, &RsaPublicKey)> =
            msgs.iter().map(|m| (m, &public)).collect();
        let mut verifier = BatchVerifier::new();
        let got = verifier.verify_batch(&batch);
        assert!(got.iter().all(Result::is_ok));
        assert_eq!(verifier.screen_passes(), 1);
        assert_eq!(verifier.screen_fallbacks(), 0);
        assert_eq!(verifier.confirms(), 0, "a passing screen skips confirms");
    }

    #[test]
    fn screen_fallback_rejects_swapped_signatures_exactly() {
        let _guard = crate::engine::mode_lock();
        // Swapping two signatures preserves the *product* of the batch,
        // which is exactly the cancellation the random coefficients must
        // catch: the screen fails and the per-signature fallback rejects
        // both swapped members while keeping the honest ones.
        let (signer, public) = long_exponent_pair();
        let mut msgs: Vec<SignedMessage> = (0..4)
            .map(|i| sign_message(i, format!("member {i}").as_bytes(), &signer))
            .collect();
        let swapped = msgs[1].signature.clone();
        msgs[1].signature = msgs[2].signature.clone();
        msgs[2].signature = swapped;
        let batch: Vec<(&SignedMessage, &RsaPublicKey)> =
            msgs.iter().map(|m| (m, &public)).collect();
        let mut verifier = BatchVerifier::new();
        let got = verifier.verify_batch(&batch);
        let expected: Vec<_> = batch.iter().map(|(m, k)| verify_message(m, k)).collect();
        assert_eq!(got, expected);
        assert!(got[0].is_ok() && got[3].is_ok());
        assert!(got[1].is_err() && got[2].is_err());
        assert_eq!(verifier.screen_fallbacks(), 1);
        assert_eq!(verifier.screen_passes(), 0);
    }

    #[test]
    fn standard_exponent_batches_never_screen() {
        let _guard = crate::engine::mode_lock();
        let pair = keypair();
        let msgs: Vec<SignedMessage> = (0..8)
            .map(|i| sign_message(i, b"same key", &pair.private))
            .collect();
        let batch: Vec<(&SignedMessage, &RsaPublicKey)> =
            msgs.iter().map(|m| (m, &pair.public)).collect();
        let mut verifier = BatchVerifier::new();
        let got = verifier.verify_batch(&batch);
        assert!(got.iter().all(Result::is_ok));
        assert_eq!(verifier.screen_passes() + verifier.screen_fallbacks(), 0);
        assert_eq!(verifier.confirms(), 8);
    }

    #[test]
    fn signed_message_serde_round_trip() {
        let pair = keypair();
        let msg = sign_message(5, b"serialize me", &pair.private);
        let json = serde_json::to_string(&msg).unwrap();
        let back: SignedMessage = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
        verify_message(&back, &pair.public).unwrap();
    }

    mod batch_equivalence_properties {
        use super::*;
        use proptest::prelude::*;
        use std::sync::OnceLock;

        /// Two key pairs shared across proptest cases (keygen is the
        /// expensive part): a standard short-exponent pair and a reversed
        /// long-exponent pair that engages the screen.
        fn shared_pairs() -> &'static [(RsaPrivateKey, RsaPublicKey); 2] {
            static PAIRS: OnceLock<[(RsaPrivateKey, RsaPublicKey); 2]> = OnceLock::new();
            PAIRS.get_or_init(|| {
                let standard = {
                    let mut rng = StdRng::seed_from_u64(0xBA7C4);
                    let pair = RsaKeyPair::generate(&mut rng, 256).unwrap();
                    (pair.private, pair.public)
                };
                [standard, long_exponent_pair()]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Batched verification reaches exactly the per-upload
            /// `verify_message` verdicts for arbitrary accept/reject
            /// mixes — corrupted payload bytes and corrupted signature
            /// bytes included — under both engine modes and under both
            /// screening regimes (short- and long-exponent keys).
            #[test]
            fn verify_batch_equals_per_upload_for_arbitrary_mixes(
                payloads in proptest::collection::vec(
                    proptest::collection::vec(any::<u8>(), 1..48), 1..7),
                corrupt_sig in proptest::collection::vec(any::<bool>(), 0..4),
                corrupt_at in proptest::collection::vec(any::<usize>(), 0..4),
                corrupt_flip in proptest::collection::vec(1u8..=255, 0..4),
                key_choice in any::<bool>(),
                reference in any::<bool>(),
            ) {
                let (private, public) = &shared_pairs()[usize::from(key_choice)];
                let mut msgs: Vec<SignedMessage> = payloads
                    .iter()
                    .enumerate()
                    .map(|(i, p)| sign_message(i as u64, p, private))
                    .collect();
                let strikes = corrupt_sig.len().min(corrupt_at.len()).min(corrupt_flip.len());
                for ((&in_signature, &index_seed), &flip) in corrupt_sig
                    .iter()
                    .zip(&corrupt_at)
                    .zip(&corrupt_flip)
                    .take(strikes)
                {
                    let victim = index_seed % msgs.len();
                    let bytes = if in_signature {
                        &mut msgs[victim].signature.bytes
                    } else {
                        &mut msgs[victim].payload
                    };
                    if !bytes.is_empty() {
                        let at = index_seed % bytes.len();
                        bytes[at] ^= flip;
                    }
                }
                let batch: Vec<(&SignedMessage, &RsaPublicKey)> =
                    msgs.iter().map(|m| (m, public)).collect();
                let _guard = crate::engine::mode_lock();
                crate::engine::set_reference_mode(reference);
                let expected: Vec<_> =
                    batch.iter().map(|(m, k)| verify_message(m, k)).collect();
                let got = BatchVerifier::new().verify_batch(&batch);
                crate::engine::set_reference_mode(false);
                prop_assert_eq!(got, expected);
            }
        }
    }
}
