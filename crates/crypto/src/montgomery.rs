//! Montgomery (REDC) modular arithmetic.
//!
//! Every RSA sign/verify and every Miller-Rabin witness is a modular
//! exponentiation, and the seed implementation reduced each intermediate
//! product with a full division. Montgomery multiplication replaces that
//! division with two multiplications and a shift: operands are mapped
//! into the residue representation `aR mod n` (with `R = 2^(32k)` for a
//! `k`-limb modulus), where products reduce by the REDC interleaved
//! multiply-accumulate (CIOS) using only the precomputed single-limb
//! inverse `n' = -n^{-1} mod 2^32`.
//!
//! [`MontgomeryCtx`] carries the per-modulus precomputation (`n'` and
//! `R^2 mod n`) and implements fixed 4-bit-window exponentiation whose
//! inner loop is allocation-free: the window table is built once per
//! exponentiation and every multiply writes through reusable scratch
//! buffers.
//!
//! Montgomery reduction requires an odd modulus; [`MontgomeryCtx::new`]
//! returns `None` otherwise and callers fall back to the reference
//! square-and-multiply path.

use crate::bigint::BigUint;

/// Bits per limb window processed by the fixed-window exponentiation.
const WINDOW_BITS: usize = 4;
/// Size of the window table (`2^WINDOW_BITS`).
const TABLE_LEN: usize = 1 << WINDOW_BITS;
/// Exponents at or below this bit length skip the window table: the
/// table build costs `TABLE_LEN - 2` multiplies, which a short (or
/// sparse, like 65537) exponent never earns back.
const SHORT_EXPONENT_BITS: usize = 64;

/// Per-modulus Montgomery precomputation: the modulus limbs, the negated
/// single-limb inverse `n' = -n^{-1} mod 2^32`, and `R^2 mod n` used to
/// map values into the Montgomery domain.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// Modulus limbs, little-endian, length `k`.
    n: Vec<u32>,
    /// `-n^{-1} mod 2^32`.
    n0_inv: u32,
    /// `R^2 mod n` where `R = 2^(32k)`, as `k` limbs.
    r2: Vec<u32>,
}

/// A residue in the Montgomery domain (`aR mod n`), tied to the
/// [`MontgomeryCtx`] that produced it. Stored as exactly `k` limbs.
///
/// The map `a -> aR mod n` is a bijection on residues, so comparing two
/// `MontElem`s for equality compares the underlying residues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontElem {
    limbs: Vec<u32>,
}

impl MontgomeryCtx {
    /// Builds a context for `modulus`. Returns `None` unless the modulus
    /// is odd and greater than one (REDC requires `gcd(n, 2^32) = 1`).
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();
        // Newton's iteration doubles correct low bits each step: five
        // steps lift the trivially-correct low bit of n^{-1} past 32.
        let mut inv: u32 = n[0];
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R^2 mod n = 2^(64k) mod n; one division at setup time.
        let r2 = BigUint::one().shl(64 * k).div_rem_knuth(modulus).1;
        let mut r2_limbs = r2.limbs().to_vec();
        r2_limbs.resize(k, 0);
        Some(MontgomeryCtx {
            n,
            n0_inv,
            r2: r2_limbs,
        })
    }

    /// Number of limbs in the modulus.
    fn k(&self) -> usize {
        self.n.len()
    }

    /// The modulus as a `BigUint`.
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// Maps `a` into the Montgomery domain (`aR mod n`), reducing `a`
    /// modulo `n` first if needed.
    pub fn convert(&self, a: &BigUint) -> MontElem {
        let modulus = self.modulus();
        let reduced = if *a < modulus {
            a.clone()
        } else {
            a.div_rem_knuth(&modulus).1
        };
        let mut limbs = reduced.limbs().to_vec();
        limbs.resize(self.k(), 0);
        let mut out = vec![0u32; self.k()];
        let mut scratch = vec![0u32; self.k() + 2];
        self.mul_into(&limbs, &self.r2, &mut scratch, &mut out);
        MontElem { limbs: out }
    }

    /// Maps a Montgomery-domain element back to an ordinary residue.
    pub fn recover(&self, a: &MontElem) -> BigUint {
        let one = {
            let mut v = vec![0u32; self.k()];
            v[0] = 1;
            v
        };
        let mut out = vec![0u32; self.k()];
        let mut scratch = vec![0u32; self.k() + 2];
        self.mul_into(&a.limbs, &one, &mut scratch, &mut out);
        BigUint::from_limbs(out)
    }

    /// The multiplicative identity in the Montgomery domain (`R mod n`).
    pub fn one(&self) -> MontElem {
        self.convert(&BigUint::one())
    }

    /// Montgomery product of two domain elements.
    pub fn mul(&self, a: &MontElem, b: &MontElem) -> MontElem {
        let mut out = vec![0u32; self.k()];
        let mut scratch = vec![0u32; self.k() + 2];
        self.mul_into(&a.limbs, &b.limbs, &mut scratch, &mut out);
        MontElem { limbs: out }
    }

    /// Exponentiation in the Montgomery domain.
    ///
    /// Long exponents (private/CRT exponents, Miller-Rabin's `d`) use
    /// fixed 4-bit windows: the table (`base^0 .. base^15`) is built
    /// once, then four squarings and at most one table multiply per
    /// window. Short exponents — above all the RSA public exponent
    /// 65537 on the verify path — cannot amortize the 14-multiply table
    /// build, so they run plain left-to-right square-and-multiply (one
    /// multiply per set bit). Both loops go through preallocated scratch
    /// buffers; no allocation per step.
    pub fn pow(&self, base: &MontElem, exponent: &BigUint) -> MontElem {
        let k = self.k();
        if exponent.is_zero() {
            return self.one();
        }
        let bits = exponent.bit_len();
        let mut scratch = vec![0u32; k + 2];
        let mut tmp = vec![0u32; k];

        if bits <= SHORT_EXPONENT_BITS {
            let mut result = base.limbs.clone();
            for i in (0..bits - 1).rev() {
                self.mul_into(&result, &result, &mut scratch, &mut tmp);
                std::mem::swap(&mut result, &mut tmp);
                if exponent.bit(i) {
                    self.mul_into(&result, &base.limbs, &mut scratch, &mut tmp);
                    std::mem::swap(&mut result, &mut tmp);
                }
            }
            return MontElem { limbs: result };
        }

        // table[i] = base^(i+1) in the Montgomery domain; digit 0 never
        // multiplies, so base^0 needs no entry.
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(TABLE_LEN - 1);
        table.push(base.limbs.clone());
        for i in 1..TABLE_LEN - 1 {
            let mut next = vec![0u32; k];
            self.mul_into(&table[i - 1], &base.limbs, &mut scratch, &mut next);
            table.push(next);
        }

        let windows = bits.div_ceil(WINDOW_BITS);
        // The top window holds the exponent's most significant bit, so
        // its digit is never zero.
        let mut result = table[Self::window(exponent, windows - 1) - 1].clone();
        for w in (0..windows - 1).rev() {
            for _ in 0..WINDOW_BITS {
                self.mul_into(&result, &result, &mut scratch, &mut tmp);
                std::mem::swap(&mut result, &mut tmp);
            }
            let digit = Self::window(exponent, w);
            if digit != 0 {
                self.mul_into(&result, &table[digit - 1], &mut scratch, &mut tmp);
                std::mem::swap(&mut result, &mut tmp);
            }
        }
        MontElem { limbs: result }
    }

    /// Convenience: full modular exponentiation `base^exponent mod n`
    /// through the Montgomery domain.
    pub fn modpow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        self.recover(&self.pow(&self.convert(base), exponent))
    }

    /// Extracts the `w`-th 4-bit window of `exponent` (window 0 holds the
    /// least significant bits). Windows never straddle a limb because 32
    /// is a multiple of [`WINDOW_BITS`].
    fn window(exponent: &BigUint, w: usize) -> usize {
        let bit = w * WINDOW_BITS;
        let limbs = exponent.limbs();
        let limb = limbs.get(bit / 32).copied().unwrap_or(0);
        ((limb >> (bit % 32)) & (TABLE_LEN as u32 - 1)) as usize
    }

    /// CIOS Montgomery multiply-accumulate: `out = a * b * R^{-1} mod n`.
    ///
    /// `a`, `b` and `out` are `k`-limb little-endian buffers holding
    /// values below `n`; `scratch` must hold `k + 2` limbs. No heap
    /// allocation occurs here — this is the innermost loop of every
    /// exponentiation.
    fn mul_into(&self, a: &[u32], b: &[u32], scratch: &mut [u32], out: &mut [u32]) {
        let k = self.k();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        debug_assert_eq!(out.len(), k);
        debug_assert!(scratch.len() >= k + 2);
        let t = &mut scratch[..k + 2];
        t.fill(0);

        for &ai in a.iter().take(k) {
            // t += a[i] * b
            let mut carry: u64 = 0;
            for j in 0..k {
                let s = t[j] as u64 + ai as u64 * b[j] as u64 + carry;
                t[j] = s as u32;
                carry = s >> 32;
            }
            let s = t[k] as u64 + carry;
            t[k] = s as u32;
            t[k + 1] = (s >> 32) as u32;

            // m = t[0] * n' mod 2^32; t = (t + m * n) / 2^32. Adding
            // m * n clears t[0] exactly, so the shift drops no bits.
            let m = t[0].wrapping_mul(self.n0_inv);
            let s = t[0] as u64 + m as u64 * self.n[0] as u64;
            debug_assert_eq!(s as u32, 0);
            let mut carry = s >> 32;
            for j in 1..k {
                let s = t[j] as u64 + m as u64 * self.n[j] as u64 + carry;
                t[j - 1] = s as u32;
                carry = s >> 32;
            }
            let s = t[k] as u64 + carry;
            t[k - 1] = s as u32;
            t[k] = t[k + 1].wrapping_add((s >> 32) as u32);
            t[k + 1] = 0;
        }

        // The CIOS invariant keeps t < 2n; one conditional subtract
        // brings the result into [0, n).
        let needs_sub = t[k] != 0 || !Self::less_than(&t[..k], &self.n);
        if needs_sub {
            let mut borrow: i64 = 0;
            for j in 0..k {
                let diff = t[j] as i64 - self.n[j] as i64 - borrow;
                if diff < 0 {
                    out[j] = (diff + (1 << 32)) as u32;
                    borrow = 1;
                } else {
                    out[j] = diff as u32;
                    borrow = 0;
                }
            }
            debug_assert_eq!(borrow, t[k] as i64);
        } else {
            out.copy_from_slice(&t[..k]);
        }
    }

    /// Limb-slice comparison `a < b` for equal-length buffers.
    fn less_than(a: &[u32], b: &[u32]) -> bool {
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryCtx::new(&big(10)).is_none());
        assert!(MontgomeryCtx::new(&big(1)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&big(9)).is_some());
    }

    #[test]
    fn convert_recover_round_trip() {
        let ctx = MontgomeryCtx::new(&big(1_000_003)).unwrap();
        for v in [0u64, 1, 2, 999_999, 1_000_002, 123_456] {
            assert_eq!(ctx.recover(&ctx.convert(&big(v))), big(v));
        }
        // Values at or above the modulus reduce first.
        assert_eq!(ctx.recover(&ctx.convert(&big(1_000_003))), big(0));
        assert_eq!(ctx.recover(&ctx.convert(&big(2_000_007))), big(1));
    }

    #[test]
    fn mul_matches_modmul() {
        let _guard = engine::mode_lock();
        let m = big(0xffff_fffb); // prime near 2^32
        let ctx = MontgomeryCtx::new(&m).unwrap();
        for (a, b) in [(3u64, 5u64), (0xdead_beef, 0xcafe_babe), (1, 0)] {
            let expected = big(a).modmul(&big(b), &m);
            let got = ctx.recover(&ctx.mul(&ctx.convert(&big(a)), &ctx.convert(&big(b))));
            assert_eq!(got, expected, "a={a} b={b}");
        }
    }

    #[test]
    fn modpow_matches_reference_small() {
        let _guard = engine::mode_lock();
        let m = big(497); // odd composite
        let ctx = MontgomeryCtx::new(&m).unwrap();
        assert_eq!(ctx.modpow(&big(4), &big(13)), big(445));
        assert_eq!(ctx.modpow(&big(7), &BigUint::zero()), BigUint::one());
        let p = big(1_000_000_007);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        assert_eq!(
            ctx.modpow(&big(123456), &big(1_000_000_006)),
            BigUint::one()
        );
    }

    #[test]
    fn equality_in_domain_matches_equality_of_residues() {
        let ctx = MontgomeryCtx::new(&big(1_000_003)).unwrap();
        assert_eq!(ctx.convert(&big(42)), ctx.convert(&big(42)));
        assert_ne!(ctx.convert(&big(42)), ctx.convert(&big(43)));
        assert_eq!(ctx.one(), ctx.convert(&big(1)));
    }

    #[test]
    fn multi_limb_modulus_round_trips() {
        let m = BigUint::from_decimal_str("340282366920938463463374607431768211507").unwrap(); // 2^128 + 51, odd
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let a = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
        assert_eq!(ctx.recover(&ctx.convert(&a)), a);
        let sq = ctx.modpow(&a, &big(2));
        assert_eq!(sq, a.modmul(&a, &m));
    }
}
